"""Cryptocurrency price-band analysis (Example 3 of the paper) with weighted sampling.

A historical cryptocurrency database stores one [low, high] price interval per
time unit.  The analyst asks: "when did the BTC price fall inside the
30,000-40,000 dollar band?"  The exact answer contains an enormous number of
fine-grained records; random samples are enough to see *when* the band was
hit.  If each record additionally carries a traded volume, samples should be
drawn proportionally to volume — the weighted IRS problem solved by the AWIT.

Run with::

    python examples/crypto_price_bands.py
"""

from __future__ import annotations

import numpy as np

from repro import AIT, AWIT
from repro.datasets import attach_random_weights, generate_paper_dataset


def main() -> None:
    # Synthetic analogue of the BTC dataset: [low, high] price intervals.
    prices = generate_paper_dataset("btc", n=100_000, random_state=2)
    # Attach a "traded volume" weight to every record.
    prices = attach_random_weights(prices, low=1, high=100, random_state=3)

    unweighted_index = AIT(prices)
    weighted_index = AWIT(prices)
    print(f"indexed {len(prices)} price intervals; "
          f"AWIT memory {weighted_index.memory_bytes() / 1e6:.1f} MB")

    # Price band of interest (scaled into the synthetic domain).
    domain_lo, domain_hi = prices.domain()
    band = (domain_lo + 0.30 * (domain_hi - domain_lo), domain_lo + 0.40 * (domain_hi - domain_lo))
    print(f"\nprice band query: {band}")

    in_band = unweighted_index.count(band)
    total_volume = weighted_index.total_weight(band)
    print(f"  records whose [low, high] overlaps the band: {in_band}")
    print(f"  total traded volume of those records:        {total_volume:.0f}")

    # Uniform samples answer "when was the band hit" without scanning everything.
    uniform_sample = unweighted_index.sample_intervals(band, 10, random_state=5)
    print("\n10 uniform samples (each record equally likely):")
    for record in uniform_sample:
        print(f"  low={record.left:.0f} high={record.right:.0f}")

    # Volume-weighted samples emphasise the records where most trading happened.
    weighted_ids = weighted_index.sample(band, 10, random_state=6)
    weights = weighted_index.weights_of(weighted_ids)
    print("\n10 volume-weighted samples (heavier records more likely):")
    for interval_id, weight in zip(weighted_ids.tolist(), weights.tolist()):
        record = prices[interval_id]
        print(f"  low={record.left:.0f} high={record.right:.0f} volume={weight:.0f}")

    # Sanity check of the weighting: the mean weight of a large weighted sample
    # exceeds the mean weight of a uniform sample.
    big_weighted = weighted_index.weights_of(weighted_index.sample(band, 5_000, random_state=7))
    big_uniform = weighted_index.weights_of(unweighted_index.sample(band, 5_000, random_state=7))
    print(f"\nmean volume of weighted samples: {float(np.mean(big_weighted)):.1f} "
          f"(uniform samples: {float(np.mean(big_uniform)):.1f})")


if __name__ == "__main__":
    main()
