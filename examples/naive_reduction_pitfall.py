"""Why 1-D independent range sampling does not solve the interval problem.

Section I of the paper explains that the classic sorted-array IRS algorithm
for one-dimensional points cannot be reused by simply indexing interval
endpoints: intervals that *straddle* the query (start before it, end inside
or after it) are missed, so the sample is biased toward short intervals that
start inside the query window.

This script makes that argument executable: it compares the naive
left-endpoint reduction against the AIT on the same query and reports how
many qualifying intervals the naive approach can never return.

Run with::

    python examples/naive_reduction_pitfall.py
"""

from __future__ import annotations

import numpy as np

from repro import AIT
from repro.baselines import EndpointIRS
from repro.datasets import generate_paper_dataset


def main() -> None:
    # Book-like data has long intervals, which makes the straddling effect large.
    dataset = generate_paper_dataset("book", n=60_000, random_state=5)
    correct = AIT(dataset)
    naive = EndpointIRS(dataset)

    domain_lo, domain_hi = dataset.domain()
    extent = 0.08 * (domain_hi - domain_lo)
    query = (domain_lo + 0.4 * (domain_hi - domain_lo), domain_lo + 0.4 * (domain_hi - domain_lo) + extent)
    print(f"query window: {query}")

    truth = correct.count(query)
    naive_visible = naive.report(query).shape[0]
    missed = naive.missed_intervals(query).shape[0]
    print(f"\nintervals actually overlapping the query:   {truth}")
    print(f"intervals the naive reduction can return:   {naive_visible}")
    print(f"intervals it can NEVER return (straddlers): {missed} "
          f"({missed / max(truth, 1):.0%} of the result set)")

    # The bias shows up directly in the sampled interval lengths.
    correct_sample = correct.sample_intervals(query, 2_000, random_state=1)
    naive_sample = naive.sample(query, 2_000, random_state=1)
    naive_lengths = dataset.lengths()[naive_sample]
    correct_lengths = [x.length for x in correct_sample]
    print("\nmean interval length in the sample:")
    print(f"  AIT (correct, uniform over q ∩ X): {float(np.mean(correct_lengths)):.0f}")
    print(f"  naive endpoint reduction:           {float(np.mean(naive_lengths)):.0f}")
    print("\nThe naive sample under-represents long (straddling) intervals, which is "
          "exactly the bias the paper warns leads to wrong conclusions.")


if __name__ == "__main__":
    main()
