"""Kernel backends: selecting and comparing the flat engine's hot-loop tier.

The FlatAIT hot loops (batch traversal, counting, segmented cumsums,
weighted position picks) run behind the pluggable backend interface of
``repro.kernels``.  This example shows every way to pick a backend — the
registry, the ``kernel_backend=`` knob on trees and engines, the
``REPRO_KERNEL_BACKEND`` environment variable — and demonstrates the tier's
core promise: every backend answers **bit-identically**, down to the sample
draws under a fixed seed.  Run with::

    python examples/kernel_backends.py
"""

from __future__ import annotations

import numpy as np

from repro import AIT, ShardedEngine
from repro.datasets import generate_uniform
from repro.kernels import KERNEL_BACKEND_NAMES, get_backend, numba_available


def main() -> None:
    # 1. The registry: one stateless singleton per backend name.
    print(f"registered backends: {KERNEL_BACKEND_NAMES}")
    print(f"numba importable here: {numba_available()}")
    for name in ("numpy", "python"):
        backend = get_backend(name)
        print(f"  get_backend({name!r}) -> {backend.describe()}")

    # 2. Thread a backend through a tree: every snapshot it builds inherits it.
    dataset = generate_uniform(20_000, domain=(0.0, 100_000.0), mean_length=500.0, random_state=0)
    tree = AIT(dataset, kernel_backend="python")
    flat = tree.flat()
    print(f"\nAIT(kernel_backend='python') -> flat snapshot backend: {flat.kernel_backend!r}")

    # 3. The promise: backends are bit-identical, not merely equivalent.
    queries = np.asarray([[1_000.0, 9_000.0], [40_000.0, 41_000.0], [80_000.0, 99_000.0]])
    reference = AIT(dataset, kernel_backend="numpy").flat()
    print("\nper-backend answers on the same snapshot arrays:")
    ref_counts = reference.count_many(queries)
    ref_draws = reference.sample_many(queries, 5, random_state=np.random.default_rng(7))
    print(f"  numpy   counts={ref_counts.tolist()}  draws[0]={ref_draws[0].tolist()}")
    alt_counts = flat.count_many(queries)
    alt_draws = flat.sample_many(queries, 5, random_state=np.random.default_rng(7))
    print(f"  python  counts={alt_counts.tolist()}  draws[0]={alt_draws[0].tolist()}")
    assert np.array_equal(ref_counts, alt_counts)
    assert all(np.array_equal(a, b) for a, b in zip(ref_draws, alt_draws))
    print("  -> identical counts AND identical fixed-seed draws (the hard contract)")

    # 4. Engines thread the knob to every shard, and stats stay truthful.
    with ShardedEngine(dataset, num_shards=2, kernel_backend="python") as engine:
        print(f"\nShardedEngine(kernel_backend='python') -> engine.kernel_backend="
              f"{engine.kernel_backend!r}")
        print(f"  count_many over 2 shards: {engine.count_many(queries).tolist()}")

    # 5. Requesting numba without numba installed falls back loudly + truthfully.
    if not numba_available():
        import warnings

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            fallback = get_backend("numba")
        note = caught[0].message if caught else "(already warned this process)"
        print(f"\nget_backend('numba') without numba -> {fallback.name!r} backend")
        print(f"  warning: {note}")
    else:
        print(f"\nget_backend('numba') -> {get_backend('numba').describe()}")

    # 6. Process-wide default via the environment (read at construction time):
    #    REPRO_KERNEL_BACKEND=numba python your_service.py
    print("\nset REPRO_KERNEL_BACKEND to change the default without code changes")


if __name__ == "__main__":
    main()
