"""Quickstart: independent range sampling on interval data in a few lines.

Builds the three structures from the paper (AIT, AIT-V, AWIT) over a small
synthetic dataset and walks through counting, reporting, uniform sampling and
weighted sampling.  Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import AIT, AITV, AWIT, IntervalDataset
from repro.datasets import attach_random_weights, generate_uniform


def main() -> None:
    # 1. Build a dataset: 50,000 intervals with uniform starts and exponential lengths.
    dataset = generate_uniform(50_000, domain=(0.0, 1_000_000.0), mean_length=2_000.0, random_state=0)
    print(f"dataset: {len(dataset)} intervals over domain {dataset.domain()}")

    # 2. Index it with the AIT (O(n log n) space, O(log^2 n + s) queries).
    tree = AIT(dataset)
    print(f"AIT built: height={tree.height}, nodes={tree.node_count()}, "
          f"memory={tree.memory_bytes() / 1e6:.1f} MB")

    # 3. Range counting and reporting.
    query = (100_000.0, 180_000.0)
    print(f"\nquery {query}")
    print(f"  |q ∩ X| (exact, O(log^2 n))  = {tree.count(query)}")
    print(f"  first 5 overlapping intervals = {tree.report_intervals(query)[:5]}")

    # 4. Independent range sampling: 10 uniform samples from the result set.
    samples = tree.sample_intervals(query, 10, random_state=42)
    print("  10 uniform samples:")
    for interval in samples:
        print(f"    {interval}")

    # 5. AIT-V: same queries with O(n) space (bucketed virtual intervals).
    compact = AITV(dataset)
    print(f"\nAIT-V: buckets={compact.bucket_count}, bucket size={compact.bucket_size}, "
          f"memory={compact.memory_bytes() / 1e6:.1f} MB "
          f"(vs AIT {tree.memory_bytes() / 1e6:.1f} MB)")
    print(f"  sample of 5 ids: {compact.sample(query, 5, random_state=1).tolist()}")

    # 6. AWIT: weighted sampling (probability proportional to interval weight).
    weighted = attach_random_weights(dataset, random_state=3)
    weighted_tree = AWIT(weighted)
    weighted_samples = weighted_tree.sample(query, 5, random_state=4)
    print(f"\nAWIT: total weight of q ∩ X = {weighted_tree.total_weight(query):.0f}")
    print(f"  5 weighted samples (ids): {weighted_samples.tolist()}")
    print(f"  their weights: {weighted_tree.weights_of(weighted_samples).tolist()}")

    # 7. A second dataset built directly from pairs, to show the low-level API.
    tiny = IntervalDataset.from_pairs([(0, 10), (5, 15), (20, 30)])
    tiny_tree = AIT(tiny)
    print(f"\ntiny example: count((4, 12)) = {tiny_tree.count((4, 12))} (expected 2)")


if __name__ == "__main__":
    main()
