"""Serving over the wire: the HTTP front end, overload, and graceful drain.

The same ticketing site as ``gateway_serving.py``, one deployment step
later: the dashboards are no longer threads inside the engine's process —
they are separate services speaking JSON over HTTP.  The
:class:`repro.service.HttpFrontend` is the tier that makes that safe:

* every gateway operation is a POST endpoint (``/count``, ``/sample``,
  ``/insert``, ...), with ``/healthz`` / ``/readyz`` / ``/stats`` for the
  load balancer and the operator;
* an :class:`repro.service.AdmissionController` bounds the in-flight
  window — when a traffic spike exceeds it, excess requests get a *fast*
  ``429`` + ``Retry-After`` instead of queueing without bound;
* every request carries a deadline; on expiry the client gets ``504`` and
  the queued work is cancelled rather than silently completing later;
* ``close()`` drains gracefully: in-flight requests finish, the write-ahead
  log is fsynced, and only then do connections drop — acknowledged writes
  are never lost to a shutdown.

Run with::

    PYTHONPATH=src python examples/http_serving.py
"""

import threading

import numpy as np

from repro import IntervalDataset
from repro.service import (
    AdmissionController,
    HttpFrontend,
    RequestGateway,
    ShardedEngine,
    http_request,
)

DAY = 86_400.0
USERS = 20_000
CLIENTS = 8
QUERIES_PER_CLIENT = 25


def build_sessions(rng: np.random.Generator) -> IntervalDataset:
    """Synthetic login sessions: evening-heavy arrivals, ~25-minute stays."""
    logins = rng.uniform(0.0, DAY - 3_600.0, USERS)
    durations = rng.exponential(1_500.0, USERS)
    return IntervalDataset(logins, logins + durations)


def main() -> None:
    rng = np.random.default_rng(17)
    sessions = build_sessions(rng)
    print(f"serving {len(sessions):,} user sessions over HTTP\n")

    engine = ShardedEngine(sessions, num_shards=2)
    engine.refresh()
    gateway = RequestGateway(engine, max_wait_ms=2.0)
    frontend = HttpFrontend(
        gateway,
        admission=AdmissionController(max_pending=64, retry_after_s=0.25),
        default_deadline_ms=2_000.0,
    )
    host, port = frontend.start_in_thread()
    print(f"listening on http://{host}:{port}  (state: {frontend.state})")

    # --- the load balancer's view -------------------------------------
    status, _, body = http_request(host, port, "GET", "/readyz")
    print(f"GET /readyz -> {status} {body}\n")

    # --- independent HTTP clients, single queries each ----------------
    peaks: dict[int, int] = {}

    def dashboard(worker: int) -> None:
        worker_rng = np.random.default_rng(300 + worker)
        busiest = 0
        for _ in range(QUERIES_PER_CLIENT):
            t = float(worker_rng.uniform(0.0, DAY - 60.0))
            status, _, body = http_request(
                host, port, "POST", "/count", {"query": [t, t + 60.0]}
            )
            assert status == 200, f"count failed with {status}: {body}"
            busiest = max(busiest, int(body["result"]))
        peaks[worker] = busiest

    threads = [
        threading.Thread(target=dashboard, args=(worker,)) for worker in range(CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    print(f"{CLIENTS} HTTP dashboards x {QUERIES_PER_CLIENT} queries each:")
    print(f"  busiest minute seen per client: {sorted(peaks.values())}\n")

    # --- writes over the wire -----------------------------------------
    login = float(rng.uniform(0.0, DAY - 600.0))
    status, _, body = http_request(
        host, port, "POST", "/insert", {"interval": [login, login + 600.0]}
    )
    print(f"POST /insert -> {status} (new session id {body['result']})")
    status, _, body = http_request(
        host, port, "POST", "/sample", {"query": [login, login + 600.0], "sample_size": 3}
    )
    print(f"POST /sample -> {status} ({len(body['result'])} sessions sampled)\n")

    # --- deadlines: a hopeless budget fails fast, not silently --------
    status, _, body = http_request(
        host,
        port,
        "POST",
        "/sample",
        {"query": [0.0, DAY], "sample_size": 10_000, "deadline_ms": 0.001},
    )
    print(f"POST /sample with a 1 microsecond deadline -> {status} ({body['error']})\n")

    # --- telemetry, then graceful drain -------------------------------
    status, _, stats = http_request(host, port, "GET", "/stats")
    served = stats["frontend"]["responses_2xx"]
    print(f"GET /stats -> {status}: served {served} requests, state {stats['state']}")

    frontend.close()
    print(f"after close(): state {frontend.state}")
    try:
        http_request(host, port, "GET", "/healthz", timeout=2.0)
    except OSError:
        print("new connections are refused - drained and gone")
    engine.close()


if __name__ == "__main__":
    main()
