"""Dynamic interval management: insertions and deletions on a live AIT (Section III-D).

A booking system keeps an AIT over active reservations.  New reservations
arrive continuously and old ones are cancelled; the index must stay queryable
throughout.  The script contrasts one-by-one insertion with the pooled batch
insertion the paper recommends, and shows that queries see pooled intervals
immediately (the pool is scanned alongside the tree).

Run with::

    python examples/dynamic_updates.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import AIT
from repro.datasets import generate_uniform

NEW_RESERVATIONS = 400


def main() -> None:
    reservations = generate_uniform(40_000, domain=(0.0, 500_000.0), mean_length=1_500.0, random_state=4)
    index = AIT(reservations)
    print(f"initial index: {index.size} reservations, height {index.height}, "
          f"pool capacity {index.batch_pool_capacity}")

    rng = np.random.default_rng(9)
    arrivals = [(float(left), float(left + rng.exponential(1_500.0)))
                for left in rng.uniform(0.0, 500_000.0, NEW_RESERVATIONS)]

    # One-by-one insertion: every insert re-sorts lists along the path.
    immediate_index = AIT(reservations)
    start = time.perf_counter()
    for left, right in arrivals:
        immediate_index.insert((left, right), immediate=True)
    immediate_ms = (time.perf_counter() - start) / NEW_RESERVATIONS * 1e3

    # Pooled insertion: intervals buffer in an O(log^2 n) pool and are merged in bulk.
    start = time.perf_counter()
    inserted_ids = [index.insert((left, right)) for left, right in arrivals]
    index.flush_pool()
    pooled_ms = (time.perf_counter() - start) / NEW_RESERVATIONS * 1e3

    print("\namortized insertion cost per reservation:")
    print(f"  one-by-one: {immediate_ms:.3f} ms")
    print(f"  pooled:     {pooled_ms:.3f} ms  "
          f"({immediate_ms / max(pooled_ms, 1e-9):.1f}x faster)")

    # Queries see pooled (not yet merged) reservations immediately.
    probe_left, probe_right = arrivals[0]
    probe = (probe_left - 1.0, probe_right + 1.0)
    fresh_index = AIT(reservations)
    new_id = fresh_index.insert(arrivals[0])          # stays in the pool
    assert new_id in set(fresh_index.report(probe).tolist())
    print("\na reservation added seconds ago is already visible to range queries "
          f"(pending pool size: {fresh_index.pending_pool_size})")

    # Cancellations: delete a third of the new reservations again.
    cancelled = inserted_ids[::3]
    start = time.perf_counter()
    for interval_id in cancelled:
        index.delete(interval_id)
    deletion_ms = (time.perf_counter() - start) / len(cancelled) * 1e3
    print(f"\ncancelled {len(cancelled)} reservations at {deletion_ms:.3f} ms per deletion")
    print(f"index size is now {index.size} "
          f"(started at {len(reservations)}, added {NEW_RESERVATIONS}, removed {len(cancelled)})")

    # The structure still answers sampling queries correctly after all updates.
    window = (100_000.0, 140_000.0)
    sample = index.sample(window, 5, random_state=11)
    print(f"\n5 random active reservations in {window}: {sample.tolist()}")
    index.check_invariants()
    print("structural invariants verified after the full update sequence")


if __name__ == "__main__":
    main()
