"""A live fleet-analytics service on the ShardedEngine (the serving layer).

A delivery platform tracks courier shifts as intervals (shift start → shift
end, seconds since midnight).  An analytics dashboard fires *batches* of
range queries — "how many couriers were on shift during [t1, t2]?", "sample
200 of them for a fairness audit" — while dispatch keeps inserting new
shifts and cancelling others.  This is exactly the workload the paper's
independent range sampling is built for, served here by
``repro.service.ShardedEngine``:

* the dataset is partitioned across 4 shards, each holding its own
  ``FlatAIT`` snapshot;
* dashboard batches scatter-gather across the shards (counts merge by
  summation; samples are allocated by a multinomial over per-shard overlap
  counts, so the merged draws are exactly i.i.d. uniform);
* dispatch writes land in per-shard delta logs and become visible at the
  next batch boundary — snapshots refresh lazily and are never swapped
  mid-batch.

Run with::

    PYTHONPATH=src python examples/fleet_service.py
"""

from __future__ import annotations

import numpy as np

from repro import AIT, IntervalDataset
from repro.service import ShardedEngine

DAY = 86_400.0
FLEET = 30_000
NEW_SHIFTS = 500
CANCELLED = 300


def build_fleet(rng: np.random.Generator) -> IntervalDataset:
    """Shifts with morning / evening peaks, 2-8 hours long."""
    peak = rng.choice([8 * 3600.0, 17 * 3600.0], size=FLEET)
    starts = np.clip(rng.normal(peak, 2 * 3600.0), 0.0, DAY - 3600.0)
    lengths = rng.uniform(2 * 3600.0, 8 * 3600.0, FLEET)
    return IntervalDataset(starts, np.minimum(starts + lengths, DAY))


def main() -> None:
    rng = np.random.default_rng(7)
    shifts = build_fleet(rng)

    with ShardedEngine(shifts, num_shards=4, policy="round_robin", executor="threads") as engine:
        print(f"service up: {engine!r}")
        print(f"shard sizes: {engine.shard_sizes()}, snapshot versions {engine.versions()}")

        # --- dashboard batch 1: hourly on-shift counts ------------------- #
        hours = [(h * 3600.0, (h + 1) * 3600.0) for h in range(24)]
        counts = engine.count_many(hours)
        busiest = int(np.argmax(counts))
        print(f"\nhourly on-shift counts (peak at {busiest}:00 with {counts[busiest]} couriers):")
        print("  " + " ".join(f"{int(c) // 1000:2d}k" for c in counts))

        # The sharded answer must equal the unsharded engine exactly.
        reference = AIT(shifts).flat()
        assert np.array_equal(counts, reference.count_many(hours))

        # --- fairness audit: sample working couriers at noon ------------- #
        noon = (12 * 3600.0, 13 * 3600.0)
        audit = engine.sample(noon, 200, random_state=1)
        print(f"\naudit sample at noon: {len(audit)} draws, "
              f"{len(set(audit.tolist()))} distinct couriers")

        # --- live updates: dispatch inserts and cancellations ------------ #
        versions_before = engine.versions()
        new_ids = []
        for _ in range(NEW_SHIFTS):
            start = float(rng.uniform(10 * 3600.0, 14 * 3600.0))
            new_ids.append(engine.insert((start, start + 4 * 3600.0)))
        for victim in rng.choice(FLEET, size=CANCELLED, replace=False):
            engine.delete(int(victim))
        print(f"\ndispatch: +{NEW_SHIFTS} shifts, -{CANCELLED} cancellations "
              f"({engine.pending_ops()} ops buffered, versions still {engine.versions()})")

        # The next batch observes all buffered writes: snapshots refresh at
        # the batch boundary, never mid-batch.
        counts_after = engine.count_many(hours)
        print(f"noon count {counts[12]} -> {counts_after[12]} "
              f"(versions now {engine.versions()}, {engine.pending_ops()} ops pending)")
        assert engine.pending_ops() == 0
        assert any(a > b for a, b in zip(engine.versions(), versions_before))

        # New shifts are sampleable immediately after the boundary.
        audit_after = engine.sample(noon, 5000, random_state=2)
        fresh = set(audit_after.tolist()) & set(new_ids)
        print(f"audit resample: {len(fresh)} of the new shifts already in the draw")
        assert engine.size == FLEET + NEW_SHIFTS - CANCELLED

    print("\nservice shut down cleanly")


if __name__ == "__main__":
    main()
