"""Serving concurrent users through the RequestGateway (micro-batching).

A ticketing site tracks active user sessions as intervals (login → logout,
seconds since midnight).  Ops dashboards, fraud checks and capacity planners
all fire *single* queries — "how many sessions overlap [t, t+60]?", "sample
50 sessions active right now" — from independent threads, none of which can
assemble a batch on its own.  The :class:`repro.service.RequestGateway`
closes the gap between that open-loop traffic and the engine's batch API:

* every caller submits one request and gets a future (or uses the blocking
  wrappers below);
* the gateway coalesces whatever arrives inside its wait window into one
  micro-batch and dispatches it grouped by operation through
  ``ShardedEngine.count_many`` / ``sample_many`` — one vectorised traversal
  for a whole burst of independent callers;
* writes (new logins / logouts) buffer and apply at batch boundaries, so
  every read in a micro-batch sees one consistent snapshot.

Run with::

    PYTHONPATH=src python examples/gateway_serving.py
"""

import threading

import numpy as np

from repro import IntervalDataset
from repro.service import RequestGateway, ShardedEngine

DAY = 86_400.0
USERS = 30_000
DASHBOARD_THREADS = 6
QUERIES_PER_THREAD = 40


def build_sessions(rng: np.random.Generator) -> IntervalDataset:
    """Synthetic login sessions: evening-heavy arrivals, ~25-minute stays."""
    logins = rng.uniform(0.0, DAY - 3_600.0, USERS)
    durations = rng.exponential(1_500.0, USERS)
    return IntervalDataset(logins, logins + durations)


def main() -> None:
    rng = np.random.default_rng(11)
    sessions = build_sessions(rng)
    print(f"serving {len(sessions):,} user sessions across 4 shards\n")

    with ShardedEngine(sessions, num_shards=4) as engine:
        engine.refresh()
        with RequestGateway(engine, max_batch_size=64, max_wait_ms=2.0) as gateway:
            # --- many independent dashboard threads, single queries each ---
            peaks: dict[int, int] = {}

            def dashboard(worker: int) -> None:
                worker_rng = np.random.default_rng(100 + worker)
                busiest = 0
                for _ in range(QUERIES_PER_THREAD):
                    t = float(worker_rng.uniform(0.0, DAY - 60.0))
                    busiest = max(busiest, gateway.count((t, t + 60.0)))
                peaks[worker] = busiest

            threads = [
                threading.Thread(target=dashboard, args=(w,))
                for w in range(DASHBOARD_THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            print("busiest minute seen per dashboard thread:")
            for worker, busiest in sorted(peaks.items()):
                print(f"  thread {worker}: {busiest:,} concurrent sessions")

            # --- a fraud check samples live sessions while logins continue ---
            noon = (12 * 3_600.0, 12 * 3_600.0 + 60.0)
            audit = gateway.sample(noon, 50)
            print(f"\nfraud audit: sampled {len(audit)} of the sessions active at noon")

            new_session = gateway.insert((noon[0] - 10.0, noon[0] + 600.0))
            after = gateway.count(noon)
            print(f"one more login -> noon-minute count is now {after:,}")
            gateway.delete(new_session)

            # --- what the micro-batching actually did ---
            stats = gateway.stats()
            batches = stats["batches"]
            latency = stats["latency_ms"]["count"]
            print(
                f"\ngateway telemetry: {sum(stats['requests'].values())} requests "
                f"coalesced into {batches['dispatched']} micro-batches "
                f"(mean size {batches['mean_size']:.1f})"
            )
            print(f"batch-size histogram: {batches['size_histogram']}")
            print(
                f"count latency: p50 {latency['p50_ms']:.2f} ms, "
                f"p95 {latency['p95_ms']:.2f} ms (window was 2 ms)"
            )


if __name__ == "__main__":
    main()
