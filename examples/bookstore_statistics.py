"""Online bookstore statistics (Example 2 of the paper).

An e-commerce analyst wants monthly statistics of transactions — where each
transaction is an interval from the purchase time to the delivery time — to
look for pattern changes across several years.  Every month contains a huge
number of transactions, so the analyst estimates the statistics from small
independent samples instead of collecting each month's full result set.

The script builds a synthetic analogue of the Book dataset, then for each of
12 consecutive "months" compares the exact mean transaction duration with the
estimate obtained from s = 300 samples, together with the range-counting
result that the AIT provides essentially for free.

Run with::

    python examples/bookstore_statistics.py
"""

from __future__ import annotations

import numpy as np

from repro import AIT
from repro.datasets import generate_paper_dataset
from repro.stats import estimate_result_statistic

MONTHS = 12
SAMPLES_PER_MONTH = 300


def main() -> None:
    transactions = generate_paper_dataset("book", n=120_000, random_state=1)
    index = AIT(transactions)
    domain_lo, domain_hi = transactions.domain()
    month_length = (domain_hi - domain_lo) / MONTHS
    print(f"indexed {len(transactions)} transactions; analysing {MONTHS} months "
          f"of length {month_length:.0f} time units each\n")

    header = f"{'month':>5}  {'transactions':>12}  {'exact mean dur':>14}  {'estimated mean dur':>22}"
    print(header)
    print("-" * len(header))

    for month in range(MONTHS):
        window = (domain_lo + month * month_length, domain_lo + (month + 1) * month_length)

        # Range counting gives the month's transaction volume in O(log^2 n).
        volume = index.count(window)
        if volume == 0:
            print(f"{month + 1:>5}  {0:>12}  {'-':>14}  {'-':>22}")
            continue

        # Exact statistic (requires materialising the result set — expensive).
        exact_ids = index.report(window)
        exact_mean = float(np.mean(transactions.lengths()[exact_ids]))

        # Sample-based estimate: s independent samples, orders of magnitude cheaper.
        sample = index.sample_intervals(window, SAMPLES_PER_MONTH, random_state=1000 + month)
        estimate = estimate_result_statistic(sample, lambda x: x.length)

        print(f"{month + 1:>5}  {volume:>12}  {exact_mean:>14.0f}  {str(estimate):>22}")

    print("\nThe estimates track the exact values; each month's samples are independent "
          "of every other query, so repeated analyses do not reuse a stale subset.")


if __name__ == "__main__":
    main()
