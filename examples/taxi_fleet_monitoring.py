"""Taxi fleet monitoring (Example 1 of the paper).

A taxi management system wants to show the vehicles that were active between
17:00 and 22:00 a week ago.  The full result set can contain hundreds of
thousands of trips, which is too much to visualise; drawing a few hundred
*independent* random samples is enough to see the distribution, and the AIT
answers that in microseconds instead of scanning the result.

The script builds a synthetic analogue of the NYC taxi dataset (pick-up /
drop-off second-of-week as the interval), runs the "evening window" query,
and compares exact statistics with statistics estimated from a small sample.

Run with::

    python examples/taxi_fleet_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import AIT
from repro.datasets import generate_paper_dataset
from repro.stats import estimate_mean, estimate_proportion

SECONDS_PER_HOUR = 3_600.0


def main() -> None:
    # Synthetic analogue of the Taxi dataset (Table II statistics at reduced scale).
    trips = generate_paper_dataset("taxi", n=150_000, random_state=0)
    fleet_index = AIT(trips)
    print(f"indexed {len(trips)} taxi trips "
          f"(height={fleet_index.height}, memory={fleet_index.memory_bytes() / 1e6:.1f} MB)")

    # "Active between 17:00 and 22:00": a 5-hour window placed inside the domain.
    domain_lo, domain_hi = trips.domain()
    window_start = domain_lo + 0.55 * (domain_hi - domain_lo)
    evening_window = (window_start, window_start + 5 * SECONDS_PER_HOUR * 100)

    active_count = fleet_index.count(evening_window)
    print(f"\nevening window {evening_window}")
    print(f"  exact number of active trips (range counting): {active_count}")

    # Visualising every active trip would overwhelm the dashboard; sample 500.
    sample = fleet_index.sample_intervals(evening_window, 500, random_state=7)
    print(f"  sampled {len(sample)} trips for the dashboard scatter plot")

    # Estimate trip statistics from the sample and compare against the truth.
    durations = [trip.length for trip in sample]
    duration_estimate = estimate_mean(durations)
    exact_ids = fleet_index.report(evening_window)
    exact_durations = trips.lengths()[exact_ids]
    print("\ntrip duration (seconds):")
    print(f"  estimated mean from 500 samples: {duration_estimate}")
    print(f"  exact mean over {active_count} trips: {float(np.mean(exact_durations)):.1f}")

    # Estimate the share of long trips (> 30 minutes) without scanning the result.
    long_share = estimate_proportion([d > 30 * 60 for d in durations])
    exact_share = float(np.mean(exact_durations > 30 * 60))
    print("\nshare of trips longer than 30 minutes:")
    print(f"  estimated: {long_share}")
    print(f"  exact:     {exact_share:.3f}")

    # Each dashboard refresh issues a fresh query: samples are independent, so
    # consecutive refreshes do not show the same (possibly unlucky) subset.
    refresh_a = fleet_index.sample(evening_window, 10, random_state=100)
    refresh_b = fleet_index.sample(evening_window, 10, random_state=101)
    print(f"\ntwo consecutive dashboard refreshes: {refresh_a.tolist()} vs {refresh_b.tolist()}")


if __name__ == "__main__":
    main()
