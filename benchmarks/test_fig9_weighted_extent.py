"""Benchmark for Fig. 9: running time vs query extent (weighted case)."""

from __future__ import annotations

import pytest

# Wall-clock-shape assertions: excluded from the CI tier-1 job and
# auto-rerun on failure (see benchmarks/conftest.py) because a loaded
# runner can invert any timing comparison.
pytestmark = pytest.mark.timing

from bench_utils import print_result, series_flat, series_grows
from repro.experiments import run_experiment


def test_fig9_weighted_extent_sweep(benchmark, bench_config, bench_awit, bench_weighted_dataset):
    """Regenerate Fig. 9 and benchmark an AWIT query at the largest extent."""
    result = run_experiment("fig9", bench_config)
    print_result(result)

    for dataset_name in bench_config.datasets:
        rows = sorted(
            (row for row in result.rows if row["dataset"] == dataset_name),
            key=lambda row: row["extent_pct"],
        )
        # Search-based weighted sampling grows with the extent (alias over q ∩ X);
        # the AWIT stays nearly flat.
        assert series_grows([row["interval_tree"] for row in rows], factor=1.5)
        assert series_flat([row["awit"] for row in rows], factor=10.0)
        assert rows[-1]["awit"] < rows[-1]["interval_tree"]

    lo, hi = bench_weighted_dataset.domain()
    wide_query = (lo, lo + 0.32 * (hi - lo))
    benchmark(lambda: bench_awit.sample(wide_query, bench_config.sample_size, random_state=0))
