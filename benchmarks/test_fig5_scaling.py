"""Benchmark for Fig. 5: AIT / AIT-V build time and memory vs dataset size."""

from __future__ import annotations

from bench_utils import print_result
from repro import AITV
from repro.experiments import run_experiment


def test_fig5_build_and_memory_scaling(benchmark, bench_config, bench_dataset):
    """Regenerate Fig. 5 and benchmark the AIT-V build."""
    result = run_experiment("fig5", bench_config)
    print_result(result)

    for dataset_name in bench_config.datasets:
        rows = [row for row in result.rows if row["dataset"] == dataset_name]
        rows.sort(key=lambda row: row["n"])
        smallest, largest = rows[0], rows[-1]
        # Memory and build time must grow with n (roughly linearly; we only
        # check monotonicity to stay robust against timer noise).
        assert largest["ait_memory_mb"] > smallest["ait_memory_mb"]
        assert largest["ait_v_memory_mb"] > smallest["ait_v_memory_mb"]
        # AIT-V stays well below AIT at the largest size (O(n) vs O(n log n)).
        assert largest["ait_v_memory_mb"] < largest["ait_memory_mb"]

    benchmark(lambda: AITV(bench_dataset))
