"""Benchmark for Fig. 6: running time vs query extent (non-weighted case)."""

from __future__ import annotations

import pytest

# Wall-clock-shape assertions: excluded from the CI tier-1 job and
# auto-rerun on failure (see benchmarks/conftest.py) because a loaded
# runner can invert any timing comparison.
pytestmark = pytest.mark.timing

from bench_utils import print_result, series_flat, series_grows
from repro.experiments import run_experiment


def test_fig6_query_extent_sweep(benchmark, bench_config, bench_ait, bench_dataset):
    """Regenerate Fig. 6 and benchmark an AIT query at the largest extent."""
    result = run_experiment("fig6", bench_config)
    print_result(result)

    for dataset_name in bench_config.datasets:
        rows = sorted(
            (row for row in result.rows if row["dataset"] == dataset_name),
            key=lambda row: row["extent_pct"],
        )
        # Search-based total time grows with the extent (HINT^m enumerates the
        # result set element by element); the AIT stays flat and beats HINT^m
        # outright at the widest query.
        assert series_grows([row["hint"] for row in rows], factor=1.5)
        assert series_flat([row["ait"] for row in rows], factor=10.0)
        assert rows[-1]["ait"] < rows[-1]["hint"]

    lo, hi = bench_dataset.domain()
    wide_query = (lo, lo + 0.32 * (hi - lo))
    benchmark(lambda: bench_ait.sample(wide_query, bench_config.sample_size, random_state=0))
