"""Benchmark for Fig. 10: running time vs dataset size (weighted case)."""

from __future__ import annotations

import pytest

# Wall-clock-shape assertions: excluded from the CI tier-1 job and
# auto-rerun on failure (see benchmarks/conftest.py) because a loaded
# runner can invert any timing comparison.
pytestmark = pytest.mark.timing

from bench_utils import print_result, series_flat
from repro.experiments import run_experiment


def test_fig10_weighted_dataset_size_sweep(benchmark, bench_config, bench_awit, bench_queries):
    """Regenerate Fig. 10 and benchmark the AWIT weighted-counting primitive."""
    result = run_experiment("fig10", bench_config)
    print_result(result)

    for dataset_name in bench_config.datasets:
        rows = sorted(
            (row for row in result.rows if row["dataset"] == dataset_name),
            key=lambda row: row["n"],
        )
        # AWIT is insensitive to n and beats the search-based algorithms at the top size.
        assert series_flat([row["awit"] for row in rows], factor=10.0)
        assert rows[-1]["awit"] < rows[-1]["interval_tree"]
        assert rows[-1]["awit"] < rows[-1]["hint"]

    query = bench_queries[0]
    benchmark(lambda: bench_awit.total_weight(query))
