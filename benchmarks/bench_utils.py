"""Small helpers shared by the benchmark modules."""

from __future__ import annotations

__all__ = ["print_result", "series_grows", "series_flat"]


def print_result(result) -> None:
    """Print a paper-vs-measured table from an ExperimentResult."""
    print()
    print(result.to_text())


def series_grows(values, factor: float = 1.5) -> bool:
    """True when the last value exceeds the cheapest earlier value by ``factor``.

    Comparing against the minimum of the earlier points (rather than just the
    first point) makes the check robust to one-off timer noise on the first
    measurement while still requiring a genuine upward trend.
    """
    values = [float(v) for v in values]
    baseline = max(min(values[:-1]), 1e-9)
    return values[-1] >= baseline * factor


def series_flat(values, factor: float = 5.0) -> bool:
    """True when the series stays within ``factor`` of its cheapest value."""
    values = [float(v) for v in values]
    baseline = max(min(values), 1e-9)
    return max(values) <= baseline * factor
