"""Benchmark for Table III: index construction time (non-weighted case)."""

from __future__ import annotations

import pytest

# Wall-clock-shape assertions: excluded from the CI tier-1 job and
# auto-rerun on failure (see benchmarks/conftest.py) because a loaded
# runner can invert any timing comparison.
pytestmark = pytest.mark.timing

from bench_utils import print_result
from repro import AIT
from repro.experiments import run_experiment


def test_table3_preprocessing(benchmark, bench_config, bench_dataset):
    """Regenerate Table III and benchmark the AIT build."""
    result = run_experiment("table3", bench_config)
    print_result(result)

    for dataset_name in bench_config.datasets:
        ait_build = result.row_by(algorithm="ait")[dataset_name]
        ait_v_build = result.row_by(algorithm="ait_v")[dataset_name]
        columnar_build = result.row_by(algorithm="ait_columnar")[dataset_name]
        # AIT-V builds over n/log n virtual intervals and must be cheaper than the full AIT.
        assert ait_v_build < ait_build
        # The treeless columnar builder must beat the recursive node build
        # wherever the tree has real node fan-out.  The book analogue builds
        # only a few hundred nodes (long overlapping intervals), where the
        # two routes are within noise of each other at smoke sizes, so it is
        # exempt from the strict ordering.
        if dataset_name != "book":
            assert columnar_build < ait_build

    benchmark(lambda: AIT(bench_dataset, build_backend="tree"))
