"""Benchmark for the kernel_throughput experiment: backend sweep over FlatAIT.

The hard property — every backend's answers bit-identical to the numpy
reference on the same snapshot arrays — is asserted unconditionally.  The
wall-clock assertions are deliberately loose (the ``python`` backend is a
portable loop mirror and *expected* to be slow; the floor only catches a
pathological collapse such as a backend silently re-resolving or re-warming
per call) and ride the ``timing`` rerun policy of ``benchmarks/conftest.py``.
JIT warm-up is excluded by construction: ``measure_flat`` runs every
operation un-timed once before the timed passes.
"""

from __future__ import annotations

import pytest

# Wall-clock-shape assertions: excluded from the CI tier-1 job and
# auto-rerun on failure (see benchmarks/conftest.py) because a loaded
# runner can invert any timing comparison.
pytestmark = pytest.mark.timing

from bench_utils import print_result
from repro.experiments import run_experiment


def test_kernel_throughput_bit_identity_and_floor(bench_config):
    """Regenerate the kernel-backend table; gate on backend bit-identity."""
    config = bench_config.with_overrides(
        datasets=("btc",), query_count=64, sample_size=50, repeats=1
    )
    result = run_experiment("kernel_throughput", config)
    print_result(result)

    assert result.rows, "kernel_throughput produced no rows"
    # Hard invariant, independent of load: every backend row answered
    # bit-identically to the numpy reference on the same snapshot arrays.
    assert all(bool(row["identical"]) for row in result.rows)
    assert all(row["qps"] > 0 for row in result.rows)
    # Loose wall-clock floor: no backend may collapse more than 100x below
    # the numpy reference on the traversal-bound operations.  The python
    # loop mirror really runs ~2-20x slower at smoke scale; 100x means a
    # pathological regression (per-call re-resolution, lost vectorisation in
    # the reference, a backend re-warming every batch).
    for row in result.rows:
        if row["operation"] in ("report", "sample"):
            assert row["vs_numpy"] > 1.0 / 100.0, row


def test_kernel_count_benchmark(benchmark, bench_dataset, bench_queries):
    """Micro-benchmark the counting kernel under the default backend."""
    import numpy as np

    from repro import AIT

    flat = AIT(bench_dataset).flat()
    query_array = np.asarray(list(bench_queries), dtype=np.float64)
    ql, qr = flat.coerce_queries(query_array)
    flat._count_many(ql, qr)  # warm-up outside the timed region
    benchmark(lambda: flat._count_many(ql, qr))
