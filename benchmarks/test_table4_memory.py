"""Benchmark for Table IV: index memory usage (non-weighted case)."""

from __future__ import annotations

from bench_utils import print_result
from repro.experiments import run_experiment, structure_memory_bytes


def test_table4_memory(benchmark, bench_config, bench_ait):
    """Regenerate Table IV and benchmark the memory measurement itself."""
    result = run_experiment("table4", bench_config)
    print_result(result)

    for dataset_name in bench_config.datasets:
        ait_memory = result.row_by(algorithm="ait")[dataset_name]
        ait_v_memory = result.row_by(algorithm="ait_v")[dataset_name]
        interval_tree_memory = result.row_by(algorithm="interval_tree")[dataset_name]
        # The paper's shape: AIT is the largest structure, AIT-V far smaller,
        # the plain interval tree sits below the AIT.
        assert ait_v_memory < ait_memory
        assert interval_tree_memory < ait_memory

    benchmark(lambda: structure_memory_bytes(bench_ait))
