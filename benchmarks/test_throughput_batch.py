"""Benchmark for the throughput experiment: batch (FlatAIT) vs scalar queries."""

from __future__ import annotations

import pytest

# Wall-clock-shape assertions: excluded from the CI tier-1 job and
# auto-rerun on failure (see benchmarks/conftest.py) because a loaded
# runner can invert any timing comparison.
pytestmark = pytest.mark.timing

import numpy as np

from bench_utils import print_result
from repro.experiments import run_experiment


def test_throughput_batch_vs_scalar(benchmark, bench_config, bench_ait, bench_queries):
    """Regenerate the throughput table and benchmark a full count_many batch."""
    # The level-synchronous engine has a fixed cost per tree level, so its
    # advantage needs real batch sizes; the smoke config's 8 queries per
    # batch would measure constant overhead, not throughput.
    config = bench_config.with_overrides(query_count=256, sample_size=200)
    result = run_experiment("throughput", config)
    print_result(result)

    for row in result.rows:
        assert row["scalar_qps"] > 0 and row["batch_qps"] > 0
    # Counting is pure traversal, where vectorised dispatch helps most (the
    # committed BENCH_throughput.json shows ~35x at full scale).  The bound
    # here is deliberately loose — it only catches a catastrophic regression
    # (batch several times slower than scalar), not a merely-degraded one,
    # because a scheduler stall on a loaded CI runner can land inside the
    # single batch timing window and wall-clock asserts must not flake.
    count_rows = [row for row in result.rows if row["operation"] == "count"]
    assert count_rows and all(row["speedup"] > 0.25 for row in count_rows)

    query_array = np.asarray(list(bench_queries), dtype=np.float64)
    bench_ait.flat()  # snapshot outside the timed region
    benchmark(lambda: bench_ait.count_many(query_array))
