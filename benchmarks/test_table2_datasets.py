"""Benchmark for Table II: synthetic dataset generation matching the published statistics."""

from __future__ import annotations

from bench_utils import print_result
from repro.datasets import PAPER_DATASETS, generate_paper_dataset
from repro.experiments import run_experiment


def test_table2_dataset_statistics(benchmark, bench_config):
    """Regenerate Table II and benchmark dataset generation."""
    result = run_experiment("table2", bench_config)
    print_result(result)

    for dataset_name in bench_config.datasets:
        spec = PAPER_DATASETS[dataset_name]
        row = result.row_by(dataset=dataset_name)
        assert row["cardinality"] == bench_config.dataset_size
        assert row["domain_size"] <= spec.domain_size
        assert 0.3 * spec.median_length <= row["median_length"] <= 3.0 * spec.median_length

    benchmark(lambda: generate_paper_dataset("btc", n=bench_config.dataset_size, random_state=0))
