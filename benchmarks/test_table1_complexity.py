"""Benchmark for Table I: the empirical growth-rate check behind the complexity table."""

from __future__ import annotations

import pytest

# Wall-clock-shape assertions: excluded from the CI tier-1 job and
# auto-rerun on failure (see benchmarks/conftest.py) because a loaded
# runner can invert any timing comparison.
pytestmark = pytest.mark.timing

from bench_utils import print_result
from repro.experiments import run_experiment


def test_table1_complexity(benchmark, bench_config, bench_ait, bench_queries):
    """Regenerate Table I's empirical check and benchmark one AIT query."""
    result = run_experiment("table1", bench_config)
    print_result(result)

    size_growth = result.rows[0]["size_growth_x"]
    ait_growth = result.row_by(algorithm="ait")["growth_x"]
    ait_v_growth = result.row_by(algorithm="ait_v")["growth_x"]
    hint_growth = result.row_by(algorithm="hint")["growth_x"]
    # The AIT family must grow more slowly than the dataset (Table I's
    # polylogarithmic bound), while HINT^m tracks the growing result set.
    assert ait_growth < size_growth
    assert ait_v_growth < size_growth
    assert hint_growth > 1.2

    query = bench_queries[0]
    benchmark(lambda: bench_ait.sample(query, bench_config.sample_size, random_state=0))
