"""Benchmark for the recovery experiment: cold start and WAL replay."""

from __future__ import annotations

import tempfile
import time

import pytest

# Wall-clock-shape assertions: excluded from the CI tier-1 job and
# auto-rerun on failure (see benchmarks/conftest.py) because a loaded
# runner can invert any timing comparison.
pytestmark = pytest.mark.timing

from bench_utils import print_result
from repro import ShardedEngine
from repro.experiments import run_experiment


def test_recovery_cold_start_and_replay(benchmark, bench_config, bench_dataset, tmp_path):
    """Regenerate the recovery table and benchmark the snapshot reopen."""
    result = run_experiment("recovery", bench_config)
    print_result(result)

    for row in result.rows:
        # hard invariant at any size: recovery reproduces the engine exactly
        assert row["consistent"] is True
        # replay throughput is finite and positive whenever ops were journaled
        assert row["wal_ops_per_sec"] > 0

    # The experiment's open_s includes a 2000-op WAL replay + refresh, which
    # dominates at smoke sizes — the cold-start claim is about the *pure*
    # snapshot path, so measure that directly: reopening an epoch with an
    # empty WAL must beat rebuilding the engine from the raw arrays.
    with tempfile.TemporaryDirectory(prefix="repro-bench-reopen-") as directory:
        start = time.perf_counter()
        engine = ShardedEngine(bench_dataset, num_shards=4)
        engine.refresh()
        engine.count((0.0, 1.0))
        rebuild_s = time.perf_counter() - start
        engine.save_snapshot(directory)
        engine.close()

        def reopen():
            restored = ShardedEngine.open(directory)
            restored.count((0.0, 1.0))
            restored.close()

        start = time.perf_counter()
        reopen()
        open_s = time.perf_counter() - start
        assert open_s < rebuild_s, (open_s, rebuild_s)

        benchmark(reopen)
