"""Benchmark for Table VIII: AWIT pre-processing time and memory (weighted case)."""

from __future__ import annotations

from bench_utils import print_result
from repro import AWIT
from repro.experiments import run_experiment


def test_table8_awit_build(benchmark, bench_config, bench_weighted_dataset):
    """Regenerate Table VIII and benchmark the AWIT build."""
    result = run_experiment("table8", bench_config)
    print_result(result)

    build_row = result.row_by(metric="Pre-processing time [sec]")
    memory_row = result.row_by(metric="Memory usage [MB]")
    for dataset_name in bench_config.datasets:
        assert build_row[dataset_name] > 0.0
        assert memory_row[dataset_name] > 0.0

    benchmark(lambda: AWIT(bench_weighted_dataset, build_backend="tree"))
