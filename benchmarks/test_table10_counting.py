"""Benchmark for Table X: range counting time (AIT vs HINT^m vs kd-tree)."""

from __future__ import annotations

import pytest

# Wall-clock-shape assertions: excluded from the CI tier-1 job and
# auto-rerun on failure (see benchmarks/conftest.py) because a loaded
# runner can invert any timing comparison.
pytestmark = pytest.mark.timing

from bench_utils import print_result
from repro.experiments import run_experiment


def test_table10_range_counting(benchmark, bench_config, bench_ait, bench_queries):
    """Regenerate Table X and benchmark one AIT counting query."""
    result = run_experiment("table10", bench_config)
    print_result(result)

    for dataset_name in bench_config.datasets:
        ait = result.row_by(algorithm="ait")[dataset_name]
        hint = result.row_by(algorithm="hint")[dataset_name]
        # Paper shape: AIT counting (O(log^2 n)) is far below HINT^m, which
        # enumerates the result set to count it.
        assert ait < hint

    query = bench_queries[0]
    benchmark(lambda: bench_ait.count(query))
