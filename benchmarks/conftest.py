"""Shared configuration and fixtures for the benchmark suite.

Every benchmark file regenerates one table or figure of the paper via the
experiment harness (printed as a paper-vs-measured comparison and checked for
the expected qualitative shape), and additionally micro-benchmarks the
headline operation of that table with pytest-benchmark.

The workload is deliberately small (two datasets, ~12k intervals, a handful of
queries) so that ``pytest benchmarks/ --benchmark-only`` finishes in minutes;
the same harness scales up via ``repro-experiments --preset default|paper``.
"""

from __future__ import annotations

import pytest

from repro import AIT, AITV, AWIT
from repro.baselines import HINT, KDS, IntervalTree, KDTreeIndex
from repro.datasets import generate_queries
from repro.experiments import ExperimentConfig, build_dataset

#: Benchmark-scale configuration shared by every benchmark module.
BENCH_CONFIG = ExperimentConfig.smoke().with_overrides(
    datasets=("book", "btc"),
    dataset_size=30_000,
    query_count=8,
    sample_size=500,
    update_count=150,
    extent_sweep=(0.02, 0.08, 0.32),
    sample_size_sweep=(100, 2_000, 20_000),
    dataset_size_fractions=(0.5, 1.0),
)


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The shared benchmark configuration."""
    return BENCH_CONFIG


@pytest.fixture(scope="session")
def bench_dataset():
    """A single synthetic dataset used by the micro-benchmarks."""
    return build_dataset(BENCH_CONFIG, "btc")


@pytest.fixture(scope="session")
def bench_weighted_dataset():
    """The weighted variant of the micro-benchmark dataset."""
    return build_dataset(BENCH_CONFIG, "btc", weighted=True)


@pytest.fixture(scope="session")
def bench_queries(bench_dataset):
    """Query workload (8% extent) over the micro-benchmark dataset."""
    return generate_queries(
        bench_dataset, count=BENCH_CONFIG.query_count,
        extent_fraction=BENCH_CONFIG.extent_fraction, random_state=1,
    )


@pytest.fixture(scope="session")
def bench_ait(bench_dataset):
    """A prebuilt AIT over the micro-benchmark dataset."""
    return AIT(bench_dataset)


@pytest.fixture(scope="session")
def bench_ait_v(bench_dataset):
    """A prebuilt AIT-V over the micro-benchmark dataset."""
    return AITV(bench_dataset)


@pytest.fixture(scope="session")
def bench_awit(bench_weighted_dataset):
    """A prebuilt AWIT over the weighted micro-benchmark dataset."""
    return AWIT(bench_weighted_dataset)


@pytest.fixture(scope="session")
def bench_interval_tree(bench_dataset):
    """A prebuilt classic interval tree."""
    return IntervalTree(bench_dataset)


@pytest.fixture(scope="session")
def bench_hint(bench_dataset):
    """A prebuilt HINT^m index."""
    return HINT(bench_dataset)


@pytest.fixture(scope="session")
def bench_kds(bench_dataset):
    """A prebuilt KDS index."""
    return KDS(bench_dataset)


@pytest.fixture(scope="session")
def bench_kdtree(bench_dataset):
    """A prebuilt kd-tree index."""
    return KDTreeIndex(bench_dataset)


def print_result(result) -> None:
    """Print a paper-vs-measured table from an ExperimentResult."""
    print()
    print(result.to_text())
