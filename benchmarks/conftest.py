"""Shared configuration and fixtures for the benchmark suite.

Every benchmark file regenerates one table or figure of the paper via the
experiment harness (printed as a paper-vs-measured comparison and checked for
the expected qualitative shape), and additionally micro-benchmarks the
headline operation of that table with pytest-benchmark.

The workload is deliberately small (two datasets, ~12k intervals, a handful of
queries) so that ``pytest benchmarks/ --benchmark-only`` finishes in minutes;
the same harness scales up via ``repro-experiments --preset default|paper``.
"""

from __future__ import annotations

import pytest
from _pytest.runner import runtestprotocol

from repro import AIT, AITV, AWIT
from repro.baselines import HINT, KDS, IntervalTree, KDTreeIndex
from repro.datasets import generate_queries
from repro.experiments import ExperimentConfig, build_dataset

#: Extra attempts granted to a failing ``timing``-marked test before its
#: failure is reported.  Timing-shape assertions (growth curves, "A faster
#: than B") are qualitative, but one scheduler stall on a loaded machine can
#: invert any single measurement; an independent re-measurement is the
#: correct response, not a wider tolerance that would also mask real
#: regressions.  See ROADMAP.md ("rerun in isolation before treating a
#: failure as real") — this hook automates exactly that advice.
TIMING_RERUNS = 2


def pytest_runtest_protocol(item, nextitem):
    """Re-run ``timing``-marked tests on call failure, up to TIMING_RERUNS times."""
    if item.get_closest_marker("timing") is None:
        return None  # default protocol
    for attempt in range(TIMING_RERUNS + 1):
        item.ihook.pytest_runtest_logstart(nodeid=item.nodeid, location=item.location)
        reports = runtestprotocol(item, nextitem=nextitem, log=False)
        call_failed = any(report.when == "call" and report.failed for report in reports)
        if not call_failed or attempt == TIMING_RERUNS:
            for report in reports:
                item.ihook.pytest_runtest_logreport(report=report)
            item.ihook.pytest_runtest_logfinish(nodeid=item.nodeid, location=item.location)
            return True
        item.ihook.pytest_runtest_logfinish(nodeid=item.nodeid, location=item.location)
        print(
            f"\n[timing] {item.nodeid} failed its wall-clock assertion "
            f"(attempt {attempt + 1}/{TIMING_RERUNS + 1}); re-measuring ..."
        )
    return True


#: Benchmark-scale configuration shared by every benchmark module.
BENCH_CONFIG = ExperimentConfig.smoke().with_overrides(
    datasets=("book", "btc"),
    dataset_size=30_000,
    query_count=8,
    sample_size=500,
    update_count=150,
    extent_sweep=(0.02, 0.08, 0.32),
    sample_size_sweep=(100, 2_000, 20_000),
    dataset_size_fractions=(0.5, 1.0),
)


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The shared benchmark configuration."""
    return BENCH_CONFIG


@pytest.fixture(scope="session")
def bench_dataset():
    """A single synthetic dataset used by the micro-benchmarks."""
    return build_dataset(BENCH_CONFIG, "btc")


@pytest.fixture(scope="session")
def bench_weighted_dataset():
    """The weighted variant of the micro-benchmark dataset."""
    return build_dataset(BENCH_CONFIG, "btc", weighted=True)


@pytest.fixture(scope="session")
def bench_queries(bench_dataset):
    """Query workload (8% extent) over the micro-benchmark dataset."""
    return generate_queries(
        bench_dataset, count=BENCH_CONFIG.query_count,
        extent_fraction=BENCH_CONFIG.extent_fraction, random_state=1,
    )


@pytest.fixture(scope="session")
def bench_ait(bench_dataset):
    """A prebuilt AIT over the micro-benchmark dataset."""
    return AIT(bench_dataset)


@pytest.fixture(scope="session")
def bench_ait_v(bench_dataset):
    """A prebuilt AIT-V over the micro-benchmark dataset."""
    return AITV(bench_dataset)


@pytest.fixture(scope="session")
def bench_awit(bench_weighted_dataset):
    """A prebuilt AWIT over the weighted micro-benchmark dataset."""
    return AWIT(bench_weighted_dataset)


@pytest.fixture(scope="session")
def bench_interval_tree(bench_dataset):
    """A prebuilt classic interval tree."""
    return IntervalTree(bench_dataset)


@pytest.fixture(scope="session")
def bench_hint(bench_dataset):
    """A prebuilt HINT^m index."""
    return HINT(bench_dataset)


@pytest.fixture(scope="session")
def bench_kds(bench_dataset):
    """A prebuilt KDS index."""
    return KDS(bench_dataset)


@pytest.fixture(scope="session")
def bench_kdtree(bench_dataset):
    """A prebuilt kd-tree index."""
    return KDTreeIndex(bench_dataset)


def print_result(result) -> None:
    """Print a paper-vs-measured table from an ExperimentResult."""
    print()
    print(result.to_text())
