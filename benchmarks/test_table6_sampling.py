"""Benchmark for Table VI: sampling time (non-weighted case, alias building included)."""

from __future__ import annotations

import pytest

# Wall-clock-shape assertions: excluded from the CI tier-1 job and
# auto-rerun on failure (see benchmarks/conftest.py) because a loaded
# runner can invert any timing comparison.
pytestmark = pytest.mark.timing

from bench_utils import print_result
from repro.experiments import run_experiment


def test_table6_sampling_time(benchmark, bench_config, bench_ait, bench_queries):
    """Regenerate Table VI and benchmark the AIT end-to-end sampling call."""
    result = run_experiment("table6", bench_config)
    print_result(result)

    for dataset_name in bench_config.datasets:
        ait = result.row_by(algorithm="ait")[dataset_name]
        kds = result.row_by(algorithm="kds")[dataset_name]
        # Paper shape: KDS has the largest sampling phase of the s-sensitive
        # algorithms; the AIT sampling phase stays below it.
        assert ait <= kds * 1.5

    query = bench_queries[0]
    benchmark(lambda: bench_ait.sample(query, bench_config.sample_size, random_state=0))
