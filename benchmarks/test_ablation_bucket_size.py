"""Ablation: AIT-V bucket size — the space / sampling-time trade-off of Section III-C.

The paper fixes the bucket size at Θ(log n): larger buckets shrink the
virtual AIT (less memory) but make each bucket's virtual interval looser and
each accepted sample more expensive; a bucket size of 1 degenerates to the
plain AIT's memory footprint.
"""

from __future__ import annotations

from bench_utils import print_result
from repro import AITV
from repro.datasets import generate_queries
from repro.experiments import ExperimentResult


def test_ablation_bucket_size_tradeoff(benchmark, bench_config, bench_dataset):
    """Memory shrinks monotonically as the bucket size grows; sampling stays correct."""
    queries = generate_queries(bench_dataset, count=4,
                               extent_fraction=bench_config.extent_fraction, random_state=6)
    result = ExperimentResult(
        experiment_id="ablation_bucket_size",
        title="AIT-V bucket size ablation (memory vs candidate-draw overhead)",
        columns=["bucket_size", "buckets", "memory_mb", "draws_per_sample"],
    )

    memory_by_size: list[float] = []
    for bucket_size in (1, 4, 16, 64):
        index = AITV(bench_dataset, bucket_size=bucket_size)
        draws = 0
        for query in queries:
            index.sample(query, bench_config.sample_size, random_state=1)
            draws += index.last_candidate_draws
        memory_mb = index.memory_bytes() / 1e6
        memory_by_size.append(memory_mb)
        result.add_row(
            bucket_size=bucket_size,
            buckets=index.bucket_count,
            memory_mb=memory_mb,
            draws_per_sample=draws / (bench_config.sample_size * len(queries)),
        )
    print_result(result)

    # Larger buckets must never need more memory than smaller ones.
    assert all(memory_by_size[i + 1] <= memory_by_size[i] * 1.05 for i in range(len(memory_by_size) - 1))

    index = AITV(bench_dataset)
    benchmark(lambda: index.sample(queries[0], bench_config.sample_size, random_state=0))
