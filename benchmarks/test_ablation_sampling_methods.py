"""Ablation: per-record weighted sampling — cumulative-sum method vs per-query alias.

Section IV-B argues that replacing the cumulative-sum method with Walker's
alias method *inside a node record* would require building an alias table
over the record's intervals for every query, costing O(|X(R_i)|) = O(n); the
cumulative-sum method reuses the prefix arrays precomputed offline and pays
only O(log n) per draw.  This benchmark makes that design choice measurable.
"""

from __future__ import annotations

import pytest

# Wall-clock-shape assertions: excluded from the CI tier-1 job and
# auto-rerun on failure (see benchmarks/conftest.py) because a loaded
# runner can invert any timing comparison.
pytestmark = pytest.mark.timing

import time


from repro.sampling import AliasTable, prefix_sums, resolve_rng, sample_from_prefix_range


def test_ablation_cumulative_sum_vs_per_query_alias(benchmark):
    """Prefix-sum draws beat rebuilding an alias table per query for large records."""
    rng = resolve_rng(0)
    record_size = 200_000        # a case-3 record can cover a constant fraction of X
    sample_size = 1_000
    weights = rng.integers(1, 101, record_size).astype(float)

    # Offline part of the AWIT: the prefix array exists before any query arrives.
    prefix = prefix_sums(weights)

    start = time.perf_counter()
    draws_prefix = [sample_from_prefix_range(prefix, 0, record_size - 1, rng) for _ in range(sample_size)]
    prefix_seconds = time.perf_counter() - start

    # The rejected design: build an alias table over the record at query time.
    start = time.perf_counter()
    table = AliasTable(weights)
    draws_alias = table.sample_many(sample_size, rng).tolist()
    alias_seconds = time.perf_counter() - start

    print(f"\nweighted draws from a record of {record_size} intervals (s = {sample_size}):")
    print(f"  cumulative-sum method (prefix precomputed): {prefix_seconds * 1e3:.2f} ms")
    print(f"  per-query alias build + O(1) draws:         {alias_seconds * 1e3:.2f} ms")

    assert len(draws_prefix) == len(draws_alias) == sample_size
    # The O(n) alias build dominates and must lose against O(s log n) prefix draws.
    assert prefix_seconds < alias_seconds

    benchmark(lambda: sample_from_prefix_range(prefix, 0, record_size - 1, rng))
