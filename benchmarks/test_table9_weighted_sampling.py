"""Benchmark for Table IX: sampling time in the weighted case."""

from __future__ import annotations

import pytest

# Wall-clock-shape assertions: excluded from the CI tier-1 job and
# auto-rerun on failure (see benchmarks/conftest.py) because a loaded
# runner can invert any timing comparison.
pytestmark = pytest.mark.timing

from bench_utils import print_result
from repro.experiments import run_experiment


def test_table9_weighted_sampling(benchmark, bench_config, bench_awit, bench_queries):
    """Regenerate Table IX and benchmark the AWIT end-to-end weighted sampling call."""
    result = run_experiment("table9", bench_config)
    print_result(result)

    for dataset_name in bench_config.datasets:
        awit = result.row_by(algorithm="awit")[dataset_name]
        interval_tree = result.row_by(algorithm="interval_tree")[dataset_name]
        hint = result.row_by(algorithm="hint")[dataset_name]
        # Paper shape: the search-based algorithms must now build a per-query
        # alias table over q ∩ X, so AWIT's sampling phase is clearly cheaper.
        assert awit < interval_tree
        assert awit < hint

    query = bench_queries[0]
    benchmark(lambda: bench_awit.sample(query, bench_config.sample_size, random_state=0))
