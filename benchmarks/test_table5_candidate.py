"""Benchmark for Table V: candidate computation time (non-weighted case)."""

from __future__ import annotations

import pytest

# Wall-clock-shape assertions: excluded from the CI tier-1 job and
# auto-rerun on failure (see benchmarks/conftest.py) because a loaded
# runner can invert any timing comparison.
pytestmark = pytest.mark.timing

from bench_utils import print_result
from repro.experiments import run_experiment


def test_table5_candidate_computation(benchmark, bench_config, bench_ait, bench_queries):
    """Regenerate Table V and benchmark the AIT candidate phase (collect_records)."""
    result = run_experiment("table5", bench_config)
    print_result(result)

    for dataset_name in bench_config.datasets:
        ait = result.row_by(algorithm="ait")[dataset_name]
        ait_v = result.row_by(algorithm="ait_v")[dataset_name]
        interval_tree = result.row_by(algorithm="interval_tree")[dataset_name]
        hint = result.row_by(algorithm="hint")[dataset_name]
        # Paper shape: the AIT family computes its candidate (the record set R)
        # far faster than the search-based algorithms compute q ∩ X.  The
        # comparison against HINT^m is clear-cut; the numpy interval tree emits
        # the result as a handful of array slices, so it is only required not
        # to beat the AIT by more than vectorisation noise.
        assert ait < hint
        assert ait_v < hint
        assert ait <= interval_tree * 1.5

    query = bench_queries[0]
    benchmark(lambda: bench_ait.collect_records(query))
