"""Benchmark for Fig. 8: running time vs dataset size (non-weighted case)."""

from __future__ import annotations

import pytest

# Wall-clock-shape assertions: excluded from the CI tier-1 job and
# auto-rerun on failure (see benchmarks/conftest.py) because a loaded
# runner can invert any timing comparison.
pytestmark = pytest.mark.timing

from bench_utils import print_result, series_flat, series_grows
from repro.experiments import run_experiment


def test_fig8_dataset_size_sweep(benchmark, bench_config, bench_ait_v, bench_queries):
    """Regenerate Fig. 8 and benchmark an AIT-V query at full size."""
    result = run_experiment("fig8", bench_config)
    print_result(result)

    for dataset_name in bench_config.datasets:
        rows = sorted(
            (row for row in result.rows if row["dataset"] == dataset_name),
            key=lambda row: row["n"],
        )
        # The AIT family must be insensitive to the dataset size, while
        # HINT^m's per-query cost tracks the growing result set; at the
        # largest n the AIT beats HINT^m outright.
        assert series_flat([row["ait"] for row in rows], factor=10.0)
        assert series_grows([row["hint"] for row in rows], factor=1.3)
        assert rows[-1]["ait"] < rows[-1]["hint"]

    query = bench_queries[0]
    benchmark(lambda: bench_ait_v.sample(query, bench_config.sample_size, random_state=0))
