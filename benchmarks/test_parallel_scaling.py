"""Benchmark for the parallel_scaling experiment: process vs serial scatter.

The hard property — process answers bit-identical to the serial executor at
every measured K — is asserted unconditionally.  The wall-clock assertions
are deliberately loose (they catch an order-of-magnitude collapse such as a
republish-every-batch bug, not single-core IPC overhead, which the committed
``BENCH_parallel.json`` records honestly via ``config.cpu_count``) and ride
the ``timing`` rerun policy of ``benchmarks/conftest.py``.
"""

from __future__ import annotations

import pytest

# Wall-clock-shape assertions: excluded from the CI tier-1 job and
# auto-rerun on failure (see benchmarks/conftest.py) because a loaded
# runner can invert any timing comparison.
pytestmark = pytest.mark.timing

from bench_utils import print_result
from repro.experiments import run_experiment


def test_parallel_scaling_bit_identity_and_floor(bench_config):
    """Regenerate the parallel-scaling table; gate on executor bit-identity."""
    config = bench_config.with_overrides(
        datasets=("btc",), query_count=64, sample_size=50, repeats=1
    )
    result = run_experiment("parallel_scaling", config)
    print_result(result)

    assert result.rows, "parallel_scaling produced no rows"
    # Hard invariant, independent of load: every row's answers matched the
    # serial executor at the same shard count, bit for bit.
    assert all(bool(row["identical"]) for row in result.rows)
    assert all(row["qps"] > 0 for row in result.rows)
    # Loose wall-clock floor: a warm process scatter must stay within 50x of
    # the serial loop.  Real overhead at smoke scale is ~2-10x on one core;
    # only a pathological regression (e.g. respawning or republishing every
    # batch) can breach 50x.
    by_key = {
        (row["operation"], row["shards"], row["executor"]): row["qps"]
        for row in result.rows
    }
    for operation in ("count", "sample"):
        for shards in (1, 2, 4):
            serial = by_key[(operation, shards, "serial")]
            process = by_key[(operation, shards, "process")]
            assert process > serial / 50.0


def test_parallel_scaling_benchmark(benchmark, bench_dataset, bench_queries):
    """Micro-benchmark one warm process-executor count_many batch."""
    import numpy as np

    from repro import ShardedEngine
    from repro.service import ProcessExecutor

    query_array = np.asarray(list(bench_queries), dtype=np.float64)
    executor = ProcessExecutor(max_workers=2)
    try:
        with ShardedEngine(bench_dataset, num_shards=2, executor=executor) as engine:
            engine.count_many(query_array)  # spawn + publish outside the timed region
            benchmark(lambda: engine.count_many(query_array))
    finally:
        executor.shutdown()
