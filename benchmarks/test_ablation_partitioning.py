"""Ablation: AIT-V bucketing strategy (pair sort vs random), Section III-C.

The paper argues that *any* disjoint partitioning keeps AIT-V correct, but a
locality-preserving pair sort keeps the virtual intervals tight, so almost
every candidate draw is accepted (the paper reports ~1.02-1.09 draws per
accepted sample).  A random partition produces loose virtual intervals whose
members often do not overlap the query, inflating the rejection rate.
"""

from __future__ import annotations


from repro import AITV
from repro.datasets import generate_queries


def _total_candidate_draws(index: AITV, queries, sample_size: int) -> int:
    total = 0
    for query in queries:
        index.sample(query, sample_size, random_state=3)
        total += index.last_candidate_draws
    return total


def test_ablation_pair_sort_vs_random_partitioning(benchmark, bench_config, bench_dataset):
    """Pair-sort bucketing needs far fewer candidate draws than random bucketing."""
    pair_sorted = AITV(bench_dataset, partition="pair_sort")
    randomised = AITV(bench_dataset, partition="random", partition_random_state=0)
    queries = generate_queries(bench_dataset, count=bench_config.query_count,
                               extent_fraction=bench_config.extent_fraction, random_state=5)

    sample_size = bench_config.sample_size
    pair_draws = _total_candidate_draws(pair_sorted, queries, sample_size)
    random_draws = _total_candidate_draws(randomised, queries, sample_size)
    requested = sample_size * len(queries)

    print(f"\nAIT-V candidate draws for {requested} requested samples:")
    print(f"  pair-sort partitioning: {pair_draws} ({pair_draws / requested:.2f} draws per sample)")
    print(f"  random partitioning:    {random_draws} ({random_draws / requested:.2f} draws per sample)")

    # Both remain correct; the pair sort needs (often much) less rejection work,
    # and stays within a small constant factor of the ideal 1 draw per sample.
    assert pair_draws <= random_draws
    assert pair_draws <= 4 * requested

    query = queries[0]
    benchmark(lambda: pair_sorted.sample(query, sample_size, random_state=0))
