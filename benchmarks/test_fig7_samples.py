"""Benchmark for Fig. 7: running time vs sample size (non-weighted case)."""

from __future__ import annotations

import pytest

# Wall-clock-shape assertions: excluded from the CI tier-1 job and
# auto-rerun on failure (see benchmarks/conftest.py) because a loaded
# runner can invert any timing comparison.
pytestmark = pytest.mark.timing

from bench_utils import print_result, series_flat, series_grows
from repro.experiments import run_experiment


def test_fig7_sample_size_sweep(benchmark, bench_config, bench_ait, bench_queries):
    """Regenerate Fig. 7 and benchmark an AIT query at the largest sample size."""
    result = run_experiment("fig7", bench_config)
    print_result(result)

    for dataset_name in bench_config.datasets:
        rows = sorted(
            (row for row in result.rows if row["dataset"] == dataset_name),
            key=lambda row: row["sample_size"],
        )
        # The s-sensitive algorithms (AIT, KDS) cost clearly more at the
        # largest sample size, the search-based HINT^m barely moves, and KDS
        # ends up at least as expensive as the search-based interval tree —
        # the crossover the paper points out for large s.
        assert series_grows([row["ait"] for row in rows], factor=1.5)
        assert series_grows([row["kds"] for row in rows], factor=1.5)
        assert series_flat([row["hint"] for row in rows], factor=2.5)
        assert rows[-1]["kds"] >= rows[-1]["interval_tree"]

    query = bench_queries[0]
    largest_s = max(bench_config.sample_size_sweep)
    benchmark(lambda: bench_ait.sample(query, largest_s, random_state=0))
