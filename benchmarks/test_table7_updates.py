"""Benchmark for Table VII: amortized AIT update time (insert, batch insert, delete)."""

from __future__ import annotations

import pytest

# Wall-clock-shape assertions: excluded from the CI tier-1 job and
# auto-rerun on failure (see benchmarks/conftest.py) because a loaded
# runner can invert any timing comparison.
pytestmark = pytest.mark.timing


from bench_utils import print_result
from repro import AIT
from repro.experiments import run_experiment


def test_table7_update_time(benchmark, bench_config, bench_dataset):
    """Regenerate Table VII and benchmark one pooled insertion."""
    result = run_experiment("table7", bench_config)
    print_result(result)

    for dataset_name in bench_config.datasets:
        insertion = result.row_by(operation="Insertion")[dataset_name]
        batch = result.row_by(operation="Batch insertion")[dataset_name]
        deletion = result.row_by(operation="Deletion")[dataset_name]
        # Paper shape: batch insertion is far cheaper than one-by-one insertion,
        # and deletions are also much cheaper than one-by-one insertion.
        assert batch < insertion
        assert deletion < insertion

    tree = AIT(bench_dataset)

    def insert_one():
        tree.insert((1000.0, 1500.0))

    benchmark(insert_one)
