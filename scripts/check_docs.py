#!/usr/bin/env python
"""Documentation gate: doctests, markdown link integrity, snippet execution.

Usage::

    PYTHONPATH=src python scripts/check_docs.py             # run every check
    PYTHONPATH=src python scripts/check_docs.py doctests    # docstring examples
    PYTHONPATH=src python scripts/check_docs.py links       # docs/*.md + README links
    PYTHONPATH=src python scripts/check_docs.py snippets    # ```python blocks execute

Three checks keep the documentation subsystem from rotting:

* **doctests** — every ``>>>`` example in the public-API docstrings
  (:data:`DOCTEST_MODULES`) runs via :mod:`doctest` and must reproduce its
  output;
* **links** — every relative markdown link in ``README.md`` and ``docs/*.md``
  must point at a file that exists in the repo (external http(s) links are
  not fetched);
* **snippets** — every fenced ```python`` block in ``README.md`` and
  ``docs/*.md`` must execute without raising (run under ``PYTHONPATH=src``,
  sharing one namespace per file, in file order).

``tests/test_docs.py`` runs the same three checks inside the tier-1 suite;
this script is the standalone/CI entry point.
"""

from __future__ import annotations

import argparse
import doctest
import importlib
import io
import re
import sys
from contextlib import redirect_stdout
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Public-API modules whose docstring examples are executable documentation.
DOCTEST_MODULES: tuple[str, ...] = (
    "repro",
    "repro.core.ait",
    "repro.core.ait_v",
    "repro.core.awit",
    "repro.core.base",
    "repro.core.dataset",
    "repro.core.flat",
    "repro.core.interval",
    "repro.kernels",
    "repro.service.engine",
    "repro.service.shard",
    "repro.service.executor",
    "repro.service.gateway",
    "repro.service.metrics",
    "repro.persist.faults",
)

#: Markdown files whose links and python snippets are checked.
DOC_FILES: tuple[str, ...] = ("README.md",) + tuple(
    str(path.relative_to(REPO_ROOT)) for path in sorted((REPO_ROOT / "docs").glob("*.md"))
)

_LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_PYTHON_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def run_doctests() -> list[str]:
    """Run all docstring examples; return a list of failure descriptions."""
    failures: list[str] = []
    for module_name in DOCTEST_MODULES:
        module = importlib.import_module(module_name)
        result = doctest.testmod(module, verbose=False, report=True)
        if result.failed:
            failures.append(f"{module_name}: {result.failed}/{result.attempted} examples failed")
        else:
            print(f"doctests ok: {module_name} ({result.attempted} examples)")
    return failures


def check_links(docs: tuple[str, ...] = DOC_FILES) -> list[str]:
    """Verify every relative markdown link target exists; return failures."""
    failures: list[str] = []
    for doc in docs:
        doc_path = REPO_ROOT / doc
        text = doc_path.read_text()
        checked = 0
        broken = 0
        for match in _LINK_PATTERN.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (doc_path.parent / relative).resolve()
            if not resolved.exists():
                failures.append(f"{doc}: broken link -> {target}")
                broken += 1
            checked += 1
        if broken:
            print(f"links FAILED: {doc} ({broken}/{checked} relative links broken)")
        else:
            print(f"links ok: {doc} ({checked} relative links)")
    return failures


def run_snippets(docs: tuple[str, ...] = DOC_FILES) -> list[str]:
    """Execute every ```python block in the doc files; return failures."""
    failures: list[str] = []
    for doc in docs:
        text = (REPO_ROOT / doc).read_text()
        blocks = _PYTHON_FENCE.findall(text)
        namespace: dict = {}
        failed = 0
        for index, block in enumerate(blocks):
            try:
                with redirect_stdout(io.StringIO()):
                    exec(compile(block, f"<{doc} block {index}>", "exec"), namespace)
            except Exception as exc:  # noqa: BLE001 - report and continue
                failures.append(f"{doc} python block {index}: {type(exc).__name__}: {exc}")
                failed += 1
        if failed:
            print(f"snippets FAILED: {doc} ({failed}/{len(blocks)} python blocks failed)")
        else:
            print(f"snippets ok: {doc} ({len(blocks)} python blocks)")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "checks",
        nargs="*",
        choices=["doctests", "links", "snippets", []],
        help="which checks to run (default: all)",
    )
    args = parser.parse_args(argv)

    runners = {"doctests": run_doctests, "links": check_links, "snippets": run_snippets}
    failures: list[str] = []
    for check in args.checks or ["doctests", "links", "snippets"]:
        failures.extend(runners[check]())
    if failures:
        print("\nFAILURES:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("\nall documentation checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
