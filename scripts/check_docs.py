#!/usr/bin/env python
"""Documentation gate: doctests, markdown link integrity, snippet execution.

Usage::

    PYTHONPATH=src python scripts/check_docs.py             # run every check
    PYTHONPATH=src python scripts/check_docs.py doctests    # docstring examples
    PYTHONPATH=src python scripts/check_docs.py links       # docs/*.md + README links
    PYTHONPATH=src python scripts/check_docs.py snippets    # ```python blocks execute
    PYTHONPATH=src python scripts/check_docs.py knobs       # TUNING.md knobs resolve
    PYTHONPATH=src python scripts/check_docs.py experiments # REPRODUCING index in sync

Five checks keep the documentation subsystem from rotting:

* **doctests** — every ``>>>`` example in the public-API docstrings
  (:data:`DOCTEST_MODULES`) runs via :mod:`doctest` and must reproduce its
  output;
* **links** — every relative markdown link in ``README.md`` and ``docs/*.md``
  must point at a file that exists in the repo (external http(s) links are
  not fetched);
* **snippets** — every fenced ```python`` block in ``README.md`` and
  ``docs/*.md`` must execute without raising (run under ``PYTHONPATH=src``,
  sharing one namespace per file, in file order);
* **knobs** — every knob named in a ``docs/TUNING.md`` table row (the
  backticked token leading the row) must resolve against the live code: a
  keyword parameter of the public constructors/entry points, or a registered
  value name (executor / scatter / kernel-backend / fsync registries).  A
  renamed or removed knob fails here instead of leaving the tuning guide
  describing settings that no longer exist;
* **experiments** — the experiments index block in ``docs/REPRODUCING.md``
  (between the ``experiments-index`` markers) must equal
  ``render_experiments_index()`` from
  ``scripts/generate_experiments_md.py``, so the documented index cannot
  drift from ``repro.experiments.registry``.

``tests/test_docs.py`` runs the same checks inside the tier-1 suite; this
script is the standalone/CI entry point.
"""

from __future__ import annotations

import argparse
import doctest
import importlib
import io
import re
import sys
from contextlib import redirect_stdout
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Public-API modules whose docstring examples are executable documentation.
DOCTEST_MODULES: tuple[str, ...] = (
    "repro",
    "repro.core.ait",
    "repro.core.ait_v",
    "repro.core.awit",
    "repro.core.base",
    "repro.core.dataset",
    "repro.core.flat",
    "repro.core.interval",
    "repro.kernels",
    "repro.service.engine",
    "repro.service.shard",
    "repro.service.executor",
    "repro.service.gateway",
    "repro.service.metrics",
    "repro.service.admission",
    "repro.service.server",
    "repro.persist.faults",
)

#: Markdown files whose links and python snippets are checked.
DOC_FILES: tuple[str, ...] = ("README.md",) + tuple(
    str(path.relative_to(REPO_ROOT)) for path in sorted((REPO_ROOT / "docs").glob("*.md"))
)

_LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_PYTHON_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def run_doctests() -> list[str]:
    """Run all docstring examples; return a list of failure descriptions."""
    failures: list[str] = []
    for module_name in DOCTEST_MODULES:
        module = importlib.import_module(module_name)
        result = doctest.testmod(module, verbose=False, report=True)
        if result.failed:
            failures.append(f"{module_name}: {result.failed}/{result.attempted} examples failed")
        else:
            print(f"doctests ok: {module_name} ({result.attempted} examples)")
    return failures


def check_links(docs: tuple[str, ...] = DOC_FILES) -> list[str]:
    """Verify every relative markdown link target exists; return failures."""
    failures: list[str] = []
    for doc in docs:
        doc_path = REPO_ROOT / doc
        text = doc_path.read_text()
        checked = 0
        broken = 0
        for match in _LINK_PATTERN.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (doc_path.parent / relative).resolve()
            if not resolved.exists():
                failures.append(f"{doc}: broken link -> {target}")
                broken += 1
            checked += 1
        if broken:
            print(f"links FAILED: {doc} ({broken}/{checked} relative links broken)")
        else:
            print(f"links ok: {doc} ({checked} relative links)")
    return failures


def run_snippets(docs: tuple[str, ...] = DOC_FILES) -> list[str]:
    """Execute every ```python block in the doc files; return failures."""
    failures: list[str] = []
    for doc in docs:
        text = (REPO_ROOT / doc).read_text()
        blocks = _PYTHON_FENCE.findall(text)
        namespace: dict = {}
        failed = 0
        for index, block in enumerate(blocks):
            try:
                with redirect_stdout(io.StringIO()):
                    exec(compile(block, f"<{doc} block {index}>", "exec"), namespace)
            except Exception as exc:  # noqa: BLE001 - report and continue
                failures.append(f"{doc} python block {index}: {type(exc).__name__}: {exc}")
                failed += 1
        if failed:
            print(f"snippets FAILED: {doc} ({failed}/{len(blocks)} python blocks failed)")
        else:
            print(f"snippets ok: {doc} ({len(blocks)} python blocks)")
    return failures


#: Leading backticked token of a TUNING.md table row: the knob name, with or
#: without an ``=value`` / call-signature tail inside the same code span.
_KNOB_ROW = re.compile(r"^\|\s*`([A-Za-z_][A-Za-z0-9_]*)[^`]*`")


def _resolvable_knobs() -> set[str]:
    """Every name a TUNING.md knob row may legitimately lead with.

    Keyword parameters of the public constructors / entry points that carry
    tuning knobs, plus every registered value name (executor kinds, scatter
    modes, kernel backends, fsync policies) so rows may also be keyed by a
    concrete setting.
    """
    import inspect

    from repro.kernels import KERNEL_BACKEND_NAMES
    from repro.persist import FSYNC_POLICIES
    from repro.service import (
        EXECUTOR_NAMES,
        SCATTER_NAMES,
        AdmissionController,
        CircuitBreaker,
        HttpFrontend,
        ProcessExecutor,
        RequestGateway,
        RetryPolicy,
        ShardedEngine,
        ThreadedExecutor,
    )

    names: set[str] = set()
    for target in (
        ShardedEngine.__init__,
        ShardedEngine.open,
        ShardedEngine.save_snapshot,
        ProcessExecutor.__init__,
        ThreadedExecutor.__init__,
        RequestGateway.__init__,
        HttpFrontend.__init__,
        AdmissionController.__init__,
        CircuitBreaker.__init__,
        RetryPolicy.__init__,
    ):
        names.update(inspect.signature(target).parameters)
    names.discard("self")
    names.update(EXECUTOR_NAMES)
    names.update(SCATTER_NAMES)
    names.update(KERNEL_BACKEND_NAMES)
    names.update(FSYNC_POLICIES)
    return names


def check_knobs() -> list[str]:
    """Verify every knob row in docs/TUNING.md resolves against the code."""
    path = REPO_ROOT / "docs" / "TUNING.md"
    if not path.exists():
        return ["docs/TUNING.md: missing (the tuning guide is a documented deliverable)"]
    known = _resolvable_knobs()
    failures: list[str] = []
    checked = 0
    for line in path.read_text().splitlines():
        match = _KNOB_ROW.match(line)
        if match is None:
            continue
        checked += 1
        token = match.group(1)
        if token not in known:
            failures.append(
                f"docs/TUNING.md: knob `{token}` does not resolve against the code "
                "(not a public tuning parameter or registered value name)"
            )
    if checked == 0:
        failures.append("docs/TUNING.md: no knob table rows found (backticked first column)")
    if failures:
        print(f"knobs FAILED: docs/TUNING.md ({len(failures)}/{checked} rows unresolved)")
    else:
        print(f"knobs ok: docs/TUNING.md ({checked} knob rows resolve)")
    return failures


def check_experiments_index() -> list[str]:
    """Verify the REPRODUCING.md experiments index equals the registry rendering."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "generate_experiments_md", REPO_ROOT / "scripts" / "generate_experiments_md.py"
    )
    generator = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(generator)

    doc = "docs/REPRODUCING.md"
    text = (REPO_ROOT / doc).read_text()
    begin, end = generator.INDEX_BEGIN, generator.INDEX_END
    if begin not in text or end not in text:
        print(f"experiments FAILED: {doc} (markers missing)")
        return [f"{doc}: experiments-index markers missing ({begin} ... {end})"]
    block = text.split(begin, 1)[1].split(end, 1)[0].strip()
    expected = generator.render_experiments_index().strip()
    if block != expected:
        print(f"experiments FAILED: {doc} (index out of sync with the registry)")
        return [
            f"{doc}: experiments index is stale — replace the block between the "
            "experiments-index markers with render_experiments_index() from "
            "scripts/generate_experiments_md.py"
        ]
    print(f"experiments ok: {doc} (index matches {len(expected.splitlines()) - 2} registry entries)")
    return []


ALL_CHECKS = ["doctests", "links", "snippets", "knobs", "experiments"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "checks",
        nargs="*",
        choices=ALL_CHECKS + [[]],
        help="which checks to run (default: all)",
    )
    args = parser.parse_args(argv)

    runners = {
        "doctests": run_doctests,
        "links": check_links,
        "snippets": run_snippets,
        "knobs": check_knobs,
        "experiments": check_experiments_index,
    }
    failures: list[str] = []
    for check in args.checks or ALL_CHECKS:
        failures.extend(runners[check]())
    if failures:
        print("\nFAILURES:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("\nall documentation checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
