#!/usr/bin/env python
"""Measure process-executor scaling and emit BENCH_parallel.json.

Usage::

    PYTHONPATH=src python scripts/bench_parallel.py [--out BENCH_parallel.json]

For each dataset size the script sweeps shard counts K with the serial
scatter loop and the :class:`~repro.service.ProcessExecutor` under both
scatter strategies — ``scatter="data"`` (one worker per shard, the PR 7
behaviour) and ``scatter="query"`` (shard x query-block tiles over all
workers) — times ``count_many`` and ``sample_many`` on the same workload,
and records queries/second per (n, operation, shards, executor, scatter)
plus two derived columns:

* ``vs_serial_k1``      — throughput relative to the serial K=1 engine
  (the scaling curve this PR exists to move);
* ``results_identical`` — **hard invariant**: the process executor's
  answers are bit-identical (exact array equality on counts and on
  fixed-seed sample draws) to the serial executor's at the same K.

Numbers are hardware-honest: ``config.cpu_count`` records the cores the
sweep actually had.  ``count_many`` per shard is two ``searchsorted``
passes — data sharding splits the data, not the O(Q·log n) work, so the
data scatter's count speedup is bounded by log n / log(n/K) even on a
many-core box; the query scatter divides the batch itself and is the row
that can exceed 1x on count given real cores.  On a single-core runner
every process row pays IPC with no parallel gain, which is why the
regression gate treats the scaling ratios as advisory (wide tolerance) and
gates hard only on ``results_identical``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import ShardedEngine, __version__  # noqa: E402
from repro.datasets import generate_paper_dataset, generate_queries  # noqa: E402
from repro.experiments.exp_parallel_scaling import (  # noqa: E402
    measure_engine,
    results_identical,
)
from repro.service import ProcessExecutor  # noqa: E402


def bench_one(
    n: int, query_count: int, sample_size: int, shard_counts: list[int], repeats: int
) -> list[dict]:
    dataset = generate_paper_dataset("btc", n=n, random_state=1)
    workload = generate_queries(dataset, count=query_count, extent_fraction=0.08, random_state=2)
    query_array = np.asarray(list(workload), dtype=np.float64)

    rows = []
    baselines: dict[str, float] = {}
    for shards in shard_counts:
        with ShardedEngine(dataset, num_shards=shards, executor="serial") as engine:
            serial_count, serial_sample, counts, draws = measure_engine(
                engine, query_array, sample_size, repeats
            )
        reference = (counts, draws)
        if not baselines:
            baselines = {"count": serial_count, "sample": serial_sample}

        measured = [("serial", None, serial_count, serial_sample, True)]
        # Same worker budget for both scatter strategies; the data scatter
        # additionally caps itself at K (extra workers could never be busy),
        # so K=1 shows exactly what query tiling buys over data sharding.
        for scatter in ("data", "query"):
            executor = ProcessExecutor(max_workers=max(shards, 2), scatter=scatter)
            try:
                with ShardedEngine(dataset, num_shards=shards, executor=executor) as engine:
                    process_count, process_sample, counts, draws = measure_engine(
                        engine, query_array, sample_size, repeats
                    )
            finally:
                executor.shutdown()
            identical = results_identical(reference, (counts, draws))
            measured.append(("process", scatter, process_count, process_sample, identical))

        for executor_name, scatter, count_qps, sample_qps, identical in measured:
            for operation, qps in (("count", count_qps), ("sample", sample_qps)):
                ratio = qps / baselines[operation] if baselines[operation] > 0 else float("inf")
                rows.append(
                    {
                        "n": n,
                        "operation": operation,
                        "shards": shards,
                        "executor": executor_name,
                        "scatter": scatter,
                        "qps": round(qps, 1),
                        "vs_serial_k1": round(ratio, 3),
                        "results_identical": bool(identical),
                    }
                )
                label = executor_name if scatter is None else f"{executor_name}/{scatter}"
                print(
                    f"n={n:>7} {operation:<7} K={shards} {label:<14}"
                    f" {qps:>12.0f} q/s   {ratio:5.2f}x serial-K1"
                    f"   identical={identical}"
                )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_parallel.json",
        help="output JSON path (default: repo-root BENCH_parallel.json)",
    )
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[100_000], help="dataset sizes"
    )
    parser.add_argument("--queries", type=int, default=1_000, help="queries per measurement")
    parser.add_argument("--samples", type=int, default=100, help="samples per query")
    parser.add_argument(
        "--shards", type=int, nargs="+", default=[1, 2, 4], help="shard counts to sweep"
    )
    parser.add_argument("--repeats", type=int, default=3, help="best-of-N timing repetitions")
    args = parser.parse_args(argv)

    results = []
    for n in args.sizes:
        results.extend(bench_one(n, args.queries, args.samples, args.shards, args.repeats))

    payload = {
        "config": {
            "dataset": "btc (synthetic analogue)",
            "sizes": args.sizes,
            "query_count": args.queries,
            "extent_fraction": 0.08,
            "sample_size": args.samples,
            "shard_counts": args.shards,
            "repeats": args.repeats,
            "cpu_count": os.cpu_count(),
            "repro_version": __version__,
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "results": results,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
