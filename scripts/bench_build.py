#!/usr/bin/env python
"""Measure full-build performance end-to-end and emit BENCH_build.json.

Usage::

    PYTHONPATH=src python scripts/bench_build.py [--out BENCH_build.json]

Three measurements:

* **full_build** — producing a queryable ``FlatAIT`` over n intervals via the
  two full-build routes: *tree* (``AIT(build_backend="tree")`` + the
  ``from_tree`` flatten — the legacy pipeline) vs *columnar*
  (``FlatAIT.from_arrays`` straight from the endpoint arrays, no Python node
  tree).  Runs on every paper-analogue dataset at every ``--sizes`` point;
  the two engines are verified bit-identical per cell (``arrays_equal``).
  The headline acceptance number is the *max* speedup at the largest size —
  the tree route pays Python-level work per node, so datasets building many
  nodes (taxi) gain the most;
* **weighted_build** — the same comparison for the weighted AWIT layout
  (weight-prefix pools included), at ``--weighted-sizes``;
* **engine_build** — ``ShardedEngine`` construction over K shards with
  ``build_backend`` "tree" vs "columnar": the service-layer view of the same
  win (treeless shard snapshots).

The emitted payload is shape-validated before it is written, so a CI smoke
invocation at tiny sizes doubles as a schema regression test:

    {"config": {...}, "results": {"full_build": [...], "weighted_build": [...],
      "engine_build": [...]}}
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import AIT, AWIT, ShardedEngine, __version__  # noqa: E402
from repro.core.flat import FlatAIT  # noqa: E402
from repro.datasets import generate_paper_dataset  # noqa: E402

#: Datasets swept by the full_build section (paper Table III order).
DATASETS = ("book", "btc", "renfe", "taxi")


def _best(fn, repeats: int) -> tuple[float, object]:
    """Best-of-N timing with one untimed warm-up run.

    The warm-up absorbs first-touch page-allocation cost (pool-sized arrays
    are hundreds of MB at 1M intervals), which otherwise dominates whichever
    route happens to run first and makes cells order-dependent.
    """
    result = fn()
    best = float("inf")
    for _ in range(max(1, repeats)):
        del result
        gc.collect()
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _snapshots_equal(columnar: FlatAIT, tree: FlatAIT) -> bool:
    return columnar.arrays_equal(tree)


def bench_full_build(dataset_name: str, n: int, repeats: int) -> dict:
    """Tree-route vs columnar-route full build of one FlatAIT."""
    dataset = generate_paper_dataset(dataset_name, n=n, random_state=1)

    def tree_route():
        return AIT(dataset, build_backend="tree").flat()

    def columnar_route():
        return FlatAIT.from_arrays(dataset.lefts, dataset.rights)

    columnar_seconds, columnar_flat = _best(columnar_route, repeats)
    tree_seconds, tree_flat = _best(tree_route, repeats)
    equal = _snapshots_equal(columnar_flat, tree_flat)
    if not equal:
        raise AssertionError(
            f"from_arrays diverged from from_tree on {dataset_name} n={n}"
        )
    speedup = tree_seconds / columnar_seconds if columnar_seconds > 0 else float("inf")
    print(
        f"{dataset_name:>6} n={n:>8} full_build    tree {tree_seconds:8.2f} s   "
        f"columnar {columnar_seconds:8.2f} s   {speedup:6.1f}x"
    )
    return {
        "dataset": dataset_name,
        "n": n,
        "tree_seconds": round(tree_seconds, 4),
        "columnar_seconds": round(columnar_seconds, 4),
        "speedup": round(speedup, 2),
        "arrays_equal": bool(equal),
    }


def bench_weighted_build(n: int, repeats: int) -> dict:
    """Tree vs columnar full build of the weighted (AWIT) layout."""
    dataset = generate_paper_dataset("btc", n=n, weighted=True, random_state=1)

    def tree_route():
        return AWIT(dataset, build_backend="tree").flat()

    def columnar_route():
        return FlatAIT.from_arrays(dataset.lefts, dataset.rights, weights=dataset.weights)

    columnar_seconds, columnar_flat = _best(columnar_route, repeats)
    tree_seconds, tree_flat = _best(tree_route, repeats)
    if not _snapshots_equal(columnar_flat, tree_flat):
        raise AssertionError(f"weighted from_arrays diverged from from_tree at n={n}")
    speedup = tree_seconds / columnar_seconds if columnar_seconds > 0 else float("inf")
    print(
        f"   btc n={n:>8} weighted      tree {tree_seconds:8.2f} s   "
        f"columnar {columnar_seconds:8.2f} s   {speedup:6.1f}x"
    )
    return {
        "n": n,
        "tree_seconds": round(tree_seconds, 4),
        "columnar_seconds": round(columnar_seconds, 4),
        "speedup": round(speedup, 2),
    }


def bench_engine_build(n: int, shards: int, repeats: int) -> dict:
    """ShardedEngine construction with tree vs columnar shard backends."""
    dataset = generate_paper_dataset("btc", n=n, random_state=1)

    def build(backend: str) -> ShardedEngine:
        engine = ShardedEngine(dataset, num_shards=shards, build_backend=backend)
        engine.close()
        return engine

    columnar_seconds, _ = _best(lambda: build("columnar"), repeats)
    tree_seconds, _ = _best(lambda: build("tree"), repeats)
    # Equivalence of served results across backends is covered by the test
    # suite (tests/test_build_columnar.py); here we only time construction.
    speedup = tree_seconds / columnar_seconds if columnar_seconds > 0 else float("inf")
    print(
        f"   btc n={n:>8} engine K={shards}   tree {tree_seconds:8.2f} s   "
        f"columnar {columnar_seconds:8.2f} s   {speedup:6.1f}x"
    )
    return {
        "n": n,
        "shards": shards,
        "tree_seconds": round(tree_seconds, 4),
        "columnar_seconds": round(columnar_seconds, 4),
        "speedup": round(speedup, 2),
    }


def validate_payload(payload: dict) -> None:
    """Assert the emitted JSON has the committed schema; raise on drift."""
    assert set(payload) == {"config", "results"}, "payload must have config + results"
    results = payload["results"]
    assert set(results) == {"full_build", "weighted_build", "engine_build"}, (
        "unexpected result sections"
    )
    for row in results["full_build"]:
        assert {
            "dataset",
            "n",
            "tree_seconds",
            "columnar_seconds",
            "speedup",
            "arrays_equal",
        } <= set(row)
    for row in results["weighted_build"]:
        assert {"n", "tree_seconds", "columnar_seconds", "speedup"} <= set(row)
    for row in results["engine_build"]:
        assert {"n", "shards", "tree_seconds", "columnar_seconds", "speedup"} <= set(row)
    assert results["full_build"] and results["weighted_build"] and results["engine_build"], (
        "every section must carry at least one row"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_build.json",
        help="output JSON path (default: repo-root BENCH_build.json)",
    )
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[1_000_000], help="full_build dataset sizes"
    )
    parser.add_argument(
        "--weighted-sizes",
        type=int,
        nargs="+",
        default=[200_000],
        help="weighted_build dataset sizes",
    )
    parser.add_argument(
        "--shards", type=int, nargs="+", default=[4], help="engine_build shard counts"
    )
    parser.add_argument(
        "--engine-size",
        type=int,
        default=None,
        help="engine_build dataset size (default: smallest of --sizes)",
    )
    parser.add_argument("--repeats", type=int, default=2, help="best-of-N per cell")
    args = parser.parse_args(argv)

    full_rows = []
    for n in args.sizes:
        for dataset_name in DATASETS:
            full_rows.append(bench_full_build(dataset_name, n, args.repeats))
    weighted_rows = [bench_weighted_build(n, args.repeats) for n in args.weighted_sizes]
    engine_n = args.engine_size if args.engine_size is not None else min(args.sizes)
    engine_rows = [bench_engine_build(engine_n, k, args.repeats) for k in args.shards]

    payload = {
        "config": {
            "datasets": list(DATASETS),
            "sizes": args.sizes,
            "weighted_sizes": args.weighted_sizes,
            "engine_size": engine_n,
            "shard_counts": args.shards,
            "repeats": args.repeats,
            "repro_version": __version__,
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "results": {
            "full_build": full_rows,
            "weighted_build": weighted_rows,
            "engine_build": engine_rows,
        },
    }
    validate_payload(payload)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
