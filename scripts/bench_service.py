#!/usr/bin/env python
"""Measure ShardedEngine shard-count scaling and emit BENCH_service.json.

Usage::

    PYTHONPATH=src python scripts/bench_service.py [--out BENCH_service.json]

For each dataset size the script builds the unsharded ``FlatAIT`` baseline
and a :class:`~repro.service.ShardedEngine` at every requested shard count
(serial and threaded executors), then times the three batch operations
(``count_many`` / ``report_many`` / ``sample_many``) over the same query
workload.  The JSON output records queries/second per (n, operation, shards,
executor) so successive PRs have shard-scaling curves to compare against:

    {"config": {...}, "results": [{"n": ..., "operation": "sample",
      "shards": 4, "executor": "threads", "qps": ..., "vs_unsharded": ...}, ...]}

``shards = 0`` rows are the unsharded baseline.  Expect the curves to sit
*below* the baseline and fall as K grows: scatter-gather re-pays the batch's
fixed vectorisation overhead once per shard, every shard classifies every
query, and the thread pool only claws part of that back (the per-shard
kernels release the GIL but the merge is serial Python).  That is the
honest trade: on one node the sharded engine buys update isolation (a write
re-snapshots one shard, not the world) and a scale-out architecture, not
batch throughput — the curves quantify the price, and a PR that narrows the
gap has improved the serving layer.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import AIT, ShardedEngine, __version__  # noqa: E402
from repro.datasets import generate_paper_dataset, generate_queries  # noqa: E402
from repro.experiments.exp_service_throughput import measure_qps  # noqa: E402


def bench_one(
    n: int, query_count: int, sample_size: int, shard_counts: list[int], repeats: int
) -> list[dict]:
    dataset = generate_paper_dataset("btc", n=n, random_state=1)
    workload = generate_queries(dataset, count=query_count, extent_fraction=0.08, random_state=2)
    query_array = np.asarray(list(workload), dtype=np.float64)

    flat = AIT(dataset).flat()
    operations = {
        "count": lambda engine: engine.count_many(query_array),
        "report": lambda engine: engine.report_many(query_array),
        "sample": lambda engine: engine.sample_many(query_array, sample_size, random_state=0),
    }

    rows = []
    baselines = {}
    for operation, run_batch in operations.items():
        qps = measure_qps(lambda: run_batch(flat), query_count, repeats)
        baselines[operation] = qps
        rows.append(
            {
                "n": n,
                "operation": operation,
                "shards": 0,
                "executor": "none",
                "qps": round(qps, 1),
                "vs_unsharded": 1.0,
            }
        )
        print(f"n={n:>7} {operation:<7} unsharded            {qps:>12.0f} q/s")

    for shards in shard_counts:
        for executor in ("serial", "threads"):
            with ShardedEngine(dataset, num_shards=shards, executor=executor) as engine:
                engine.refresh()
                for operation, run_batch in operations.items():
                    qps = measure_qps(lambda: run_batch(engine), query_count, repeats)
                    ratio = qps / baselines[operation] if baselines[operation] > 0 else float("inf")
                    rows.append(
                        {
                            "n": n,
                            "operation": operation,
                            "shards": shards,
                            "executor": executor,
                            "qps": round(qps, 1),
                            "vs_unsharded": round(ratio, 3),
                        }
                    )
                    print(
                        f"n={n:>7} {operation:<7} K={shards} {executor:<8}"
                        f"   {qps:>12.0f} q/s   {ratio:5.2f}x baseline"
                    )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_service.json",
        help="output JSON path (default: repo-root BENCH_service.json)",
    )
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[100_000], help="dataset sizes"
    )
    parser.add_argument("--queries", type=int, default=1_000, help="queries per measurement")
    parser.add_argument("--samples", type=int, default=100, help="samples per query")
    parser.add_argument(
        "--shards", type=int, nargs="+", default=[1, 2, 4, 8], help="shard counts to sweep"
    )
    parser.add_argument("--repeats", type=int, default=3, help="best-of-N timing repetitions")
    args = parser.parse_args(argv)

    results = []
    for n in args.sizes:
        results.extend(bench_one(n, args.queries, args.samples, args.shards, args.repeats))

    payload = {
        "config": {
            "dataset": "btc (synthetic analogue)",
            "sizes": args.sizes,
            "query_count": args.queries,
            "extent_fraction": 0.08,
            "sample_size": args.samples,
            "shard_counts": args.shards,
            "repeats": args.repeats,
            "repro_version": __version__,
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "results": results,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
