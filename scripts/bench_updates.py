#!/usr/bin/env python
"""Measure the write path end-to-end and emit BENCH_updates.json.

Usage::

    PYTHONPATH=src python scripts/bench_updates.py [--out BENCH_updates.json]

Three measurements per dataset size:

* **bulk_insert** — ``AIT.insert_many`` of n intervals into an empty tree vs
  a loop of scalar pooled inserts (the paper's Section III-D amortised path,
  one Python round-trip per interval).  The speedup column is the headline
  number of the write-path overhaul;
* **refresh** — replay a delta log of ``--ops`` balanced writes on an
  n-interval single-shard engine and check, via the tree's snapshot
  counters, that the re-snapshot ran through the *incremental* dirty-node
  patch path rather than a full ``FlatAIT.from_tree`` re-flatten (the script
  errors if a full rebuild was triggered while the log is small relative to
  the tree).  The full-rebuild time is measured next to it for scale;
* **mixed** — the ``update_throughput`` experiment's mixed read/write rounds
  (write ratio x shard count), reusing the same measurement helper.

The emitted payload is shape-validated before it is written, so a CI smoke
invocation at tiny sizes doubles as a schema regression test:

    {"config": {...}, "results": {"bulk_insert": [...], "refresh": [...],
      "mixed": [...]}}
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import AIT, IntervalDataset, ShardedEngine, __version__  # noqa: E402
from repro.core.flat import FlatAIT  # noqa: E402
from repro.datasets import generate_paper_dataset, generate_queries  # noqa: E402
from repro.experiments.exp_update_throughput import (  # noqa: E402
    WRITE_RATIOS,
    measure_mixed_round,
)


def _empty_tree() -> AIT:
    """An AIT with zero active intervals (built from a one-row seed)."""
    tree = AIT(IntervalDataset.from_pairs([(0.0, 1.0)]))
    tree.delete(0)
    return tree


def bench_bulk_insert(n: int, repeats: int) -> dict:
    """insert_many of n intervals into an empty AIT vs a scalar pooled loop."""
    rng = np.random.default_rng(7)
    lefts = rng.uniform(0.0, 1000.0, n)
    rights = lefts + rng.exponential(20.0, n)

    bulk_best = float("inf")
    for _ in range(max(1, repeats)):
        tree = _empty_tree()
        start = time.perf_counter()
        tree.insert_many(lefts, rights)
        bulk_best = min(bulk_best, time.perf_counter() - start)
        assert tree.size == n

    pairs = list(zip(lefts.tolist(), rights.tolist()))
    scalar_best = float("inf")
    for _ in range(max(1, repeats)):
        tree = _empty_tree()
        start = time.perf_counter()
        for pair in pairs:
            tree.insert(pair)
        tree.flush_pool()
        scalar_best = min(scalar_best, time.perf_counter() - start)
        assert tree.size == n

    speedup = scalar_best / bulk_best if bulk_best > 0 else float("inf")
    print(
        f"n={n:>7} bulk_insert   insert_many {bulk_best * 1e3:9.1f} ms   "
        f"scalar loop {scalar_best * 1e3:9.1f} ms   {speedup:6.1f}x"
    )
    return {
        "n": n,
        "bulk_seconds": round(bulk_best, 4),
        "scalar_seconds": round(scalar_best, 4),
        "speedup": round(speedup, 2),
    }


def bench_refresh(n: int, ops: int) -> dict:
    """Replay an ops-long delta log on an n-interval shard; verify no full rebuild."""
    dataset = generate_paper_dataset("btc", n=n, random_state=1)
    engine = ShardedEngine(dataset, num_shards=1)
    engine.refresh()
    tree = engine.shards[0].tree
    full_before = tree.snapshot_full_builds
    incremental_before = tree.snapshot_incremental_refreshes

    rng = np.random.default_rng(11)
    half = max(1, ops // 2)
    lo, hi = dataset.domain()
    lefts = rng.uniform(lo, hi, half)
    rights = lefts + rng.exponential((hi - lo) * 0.02, half)
    engine.insert_many(lefts, rights)
    engine.delete_many(rng.choice(n, size=half, replace=False))
    start = time.perf_counter()
    engine.refresh()
    refresh_seconds = time.perf_counter() - start

    full_delta = tree.snapshot_full_builds - full_before
    incremental_delta = tree.snapshot_incremental_refreshes - incremental_before
    # A delta log this small relative to the shard must NOT trigger a full
    # re-flatten — the rebuild counter is the acceptance check.
    if n >= 20 * ops and full_delta != 0:
        raise AssertionError(
            f"refresh of a {ops}-op delta log on a {n}-interval shard triggered "
            f"{full_delta} full FlatAIT rebuild(s); expected the incremental path"
        )

    start = time.perf_counter()
    FlatAIT.from_tree(tree)
    full_rebuild_seconds = time.perf_counter() - start
    engine.close()
    print(
        f"n={n:>7} refresh       {ops} ops replayed in {refresh_seconds * 1e3:9.1f} ms   "
        f"(full re-flatten alone: {full_rebuild_seconds * 1e3:.1f} ms, "
        f"full_builds_delta={full_delta})"
    )
    return {
        "n": n,
        "ops": ops,
        "full_builds_delta": int(full_delta),
        "incremental_refreshes_delta": int(incremental_delta),
        "refresh_seconds": round(refresh_seconds, 4),
        "full_rebuild_seconds": round(full_rebuild_seconds, 4),
    }


def bench_mixed(n: int, query_count: int, shard_counts: list[int], rounds: int) -> list[dict]:
    """Mixed read/write rounds per (shards, write_ratio), like update_throughput."""
    dataset = generate_paper_dataset("btc", n=n, random_state=1)
    workload = generate_queries(dataset, count=query_count, extent_fraction=0.08, random_state=2)
    query_array = np.asarray(list(workload), dtype=np.float64)
    domain = dataset.domain()
    rows = []
    for shards in shard_counts:
        engine = ShardedEngine(dataset, num_shards=shards)
        engine.refresh()
        rng = np.random.default_rng(13 + shards)
        for write_ratio in WRITE_RATIOS:
            write_count = int(round(write_ratio * query_count))
            elapsed = 0.0
            writes = 0
            for _ in range(max(1, rounds)):
                round_elapsed, round_writes = measure_mixed_round(
                    engine, query_array, write_count, rng, domain
                )
                elapsed += round_elapsed
                writes += round_writes
            reads = max(1, rounds) * query_count
            row = {
                "n": n,
                "shards": shards,
                "write_ratio": write_ratio,
                "reads_per_sec": round(reads / elapsed, 1) if elapsed > 0 else 0.0,
                "writes_per_sec": round(writes / elapsed, 1) if elapsed > 0 and writes else 0.0,
                "ops_per_sec": round((reads + writes) / elapsed, 1) if elapsed > 0 else 0.0,
            }
            rows.append(row)
            print(
                f"n={n:>7} mixed         K={shards} ratio={write_ratio:<5}"
                f"  {row['reads_per_sec']:>10.0f} reads/s  {row['writes_per_sec']:>10.0f} writes/s"
            )
        engine.close()
    return rows


def validate_payload(payload: dict) -> None:
    """Assert the emitted JSON has the committed schema; raise on drift."""
    assert set(payload) == {"config", "results"}, "payload must have config + results"
    results = payload["results"]
    assert set(results) == {"bulk_insert", "refresh", "mixed"}, "unexpected result sections"
    for row in results["bulk_insert"]:
        assert {"n", "bulk_seconds", "scalar_seconds", "speedup"} <= set(row)
    for row in results["refresh"]:
        assert {
            "n",
            "ops",
            "full_builds_delta",
            "incremental_refreshes_delta",
            "refresh_seconds",
            "full_rebuild_seconds",
        } <= set(row)
    for row in results["mixed"]:
        assert {"n", "shards", "write_ratio", "reads_per_sec", "ops_per_sec"} <= set(row)
    assert results["bulk_insert"] and results["refresh"] and results["mixed"], (
        "every section must carry at least one row"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_updates.json",
        help="output JSON path (default: repo-root BENCH_updates.json)",
    )
    parser.add_argument("--sizes", type=int, nargs="+", default=[100_000], help="dataset sizes")
    parser.add_argument("--ops", type=int, default=1_000, help="delta-log length for refresh")
    parser.add_argument("--queries", type=int, default=1_000, help="queries per mixed round")
    parser.add_argument(
        "--shards", type=int, nargs="+", default=[1, 2, 4], help="shard counts for mixed rounds"
    )
    parser.add_argument("--rounds", type=int, default=3, help="mixed rounds per point")
    parser.add_argument("--repeats", type=int, default=2, help="best-of-N for bulk_insert")
    args = parser.parse_args(argv)

    bulk_rows = []
    refresh_rows = []
    mixed_rows = []
    for n in args.sizes:
        bulk_rows.append(bench_bulk_insert(n, args.repeats))
        refresh_rows.append(bench_refresh(n, args.ops))
        mixed_rows.extend(bench_mixed(n, args.queries, args.shards, args.rounds))

    payload = {
        "config": {
            "dataset": "btc (synthetic analogue)",
            "sizes": args.sizes,
            "ops": args.ops,
            "query_count": args.queries,
            "shard_counts": args.shards,
            "rounds": args.rounds,
            "repeats": args.repeats,
            "write_ratios": list(WRITE_RATIOS),
            "repro_version": __version__,
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "results": {
            "bulk_insert": bulk_rows,
            "refresh": refresh_rows,
            "mixed": mixed_rows,
        },
    }
    validate_payload(payload)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
