#!/usr/bin/env python
"""Measure gateway micro-batching latency under load; emit BENCH_gateway.json.

Usage::

    PYTHONPATH=src python scripts/bench_gateway.py [--out BENCH_gateway.json]

For each dataset size the script builds a 2-shard
:class:`~repro.service.ShardedEngine` and drives it with ``C`` concurrent
closed-loop client threads issuing single ``count`` and ``sample`` requests,
in two dispatch modes:

* **scalar** — the naive one-query-per-call baseline, lock-serialised (the
  engine's write path makes unsynchronised sharing unsafe);
* **gateway** — a :class:`~repro.service.RequestGateway` coalescing the
  concurrent requests into micro-batches, swept over the wait window.

Every request's end-to-end latency is recorded client-side; the JSON output
carries p50/p95/p99 per (n, operation, mode, clients, window) plus a
``summary`` section with the headline number — the p95 ratio of scalar over
the best gateway window at the highest client count.  The expected shape:
scalar p95 grows ~linearly with C (per-call fixed cost serialises), gateway
p95 flattens (one micro-batch pays the fixed cost once for the whole
window's worth of callers), so the ratio rises with offered load.

The payload is shape-validated before it is written, so a CI smoke
invocation at tiny sizes doubles as a schema regression test.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import ShardedEngine, __version__  # noqa: E402
from repro.datasets import generate_paper_dataset, generate_queries  # noqa: E402
from repro.experiments.exp_gateway_latency import (  # noqa: E402
    ENGINE_SHARDS,
    measure_modes,
)


def bench_one(
    n: int,
    requests: int,
    sample_size: int,
    client_counts: list[int],
    windows_ms: list[float],
    max_batch_size: int,
) -> list[dict]:
    dataset = generate_paper_dataset("btc", n=n, random_state=1)
    workload = generate_queries(dataset, count=requests, extent_fraction=0.08, random_state=2)
    queries = np.asarray(list(workload), dtype=np.float64)

    rows: list[dict] = []
    with ShardedEngine(dataset, num_shards=ENGINE_SHARDS) as engine:
        engine.refresh()
        for clients in client_counts:
            # The drive loop is shared with the registered gateway_latency
            # experiment, so the committed baseline measures the same thing.
            for operation, mode, window_ms, profile in measure_modes(
                engine, queries, clients, sample_size, windows_ms, max_batch_size
            ):
                rows.append(_row(n, operation, mode, clients, window_ms, profile))
    return rows


def _row(n: int, operation: str, mode: str, clients: int, window_ms: float, profile: dict) -> dict:
    row = {
        "n": n,
        "operation": operation,
        "mode": mode,
        "clients": clients,
        "window_ms": window_ms,
        "requests": profile["requests"],
        "rps": round(profile["rps"], 1),
        "p50_ms": round(profile["p50_ms"], 3),
        "p95_ms": round(profile["p95_ms"], 3),
        "p99_ms": round(profile["p99_ms"], 3),
    }
    print(
        f"n={n:>7} {operation:<7} {mode:<8} C={clients:<3} w={window_ms:<4}"
        f"  p50={row['p50_ms']:>8.3f}ms  p95={row['p95_ms']:>8.3f}ms  "
        f"rps={row['rps']:>10.0f}"
    )
    return row


def summarise(rows: list[dict]) -> list[dict]:
    """Per (n, operation): scalar p95 over best-gateway p95 at the peak client count."""
    summary: list[dict] = []
    for n in sorted({row["n"] for row in rows}):
        peak = max(row["clients"] for row in rows if row["n"] == n)
        for operation in sorted({row["operation"] for row in rows}):
            at_peak = [
                row
                for row in rows
                if row["n"] == n and row["operation"] == operation and row["clients"] == peak
            ]
            scalar_p95 = min(row["p95_ms"] for row in at_peak if row["mode"] == "scalar")
            gateway_p95 = min(row["p95_ms"] for row in at_peak if row["mode"] == "gateway")
            ratio = scalar_p95 / gateway_p95 if gateway_p95 > 0 else float("inf")
            summary.append(
                {
                    "n": n,
                    "operation": operation,
                    "clients": peak,
                    "scalar_p95_ms": scalar_p95,
                    "gateway_p95_ms": gateway_p95,
                    "p95_speedup": round(ratio, 3),
                }
            )
            print(
                f"n={n:>7} {operation:<7} @C={peak}: scalar p95 {scalar_p95:.3f}ms "
                f"vs gateway p95 {gateway_p95:.3f}ms -> {ratio:.2f}x"
            )
    return summary


def validate_payload(payload: dict) -> None:
    """Assert the emitted JSON has the committed schema; raise on drift."""
    assert set(payload) == {"config", "results", "summary"}, (
        "payload must have config + results + summary"
    )
    assert payload["results"], "results must carry at least one row"
    for row in payload["results"]:
        assert {
            "n",
            "operation",
            "mode",
            "clients",
            "window_ms",
            "requests",
            "rps",
            "p50_ms",
            "p95_ms",
            "p99_ms",
        } <= set(row)
        assert row["mode"] in ("scalar", "gateway")
        assert row["operation"] in ("count", "sample")
    assert payload["summary"], "summary must carry at least one row"
    for row in payload["summary"]:
        assert {
            "n",
            "operation",
            "clients",
            "scalar_p95_ms",
            "gateway_p95_ms",
            "p95_speedup",
        } <= set(row)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_gateway.json",
        help="output JSON path (default: repo-root BENCH_gateway.json)",
    )
    parser.add_argument("--sizes", type=int, nargs="+", default=[100_000], help="dataset sizes")
    parser.add_argument(
        "--requests", type=int, default=512, help="requests per measurement point"
    )
    parser.add_argument("--samples", type=int, default=100, help="samples per sample request")
    parser.add_argument(
        "--clients", type=int, nargs="+", default=[1, 4, 16, 64], help="client counts to sweep"
    )
    parser.add_argument(
        "--windows-ms",
        type=float,
        nargs="+",
        default=[1.0, 2.0, 8.0],
        help="gateway wait windows (milliseconds) to sweep",
    )
    parser.add_argument(
        "--batch", type=int, default=128, help="gateway max_batch_size"
    )
    args = parser.parse_args(argv)

    results: list[dict] = []
    for n in args.sizes:
        results.extend(
            bench_one(n, args.requests, args.samples, args.clients, args.windows_ms, args.batch)
        )
    print()
    summary = summarise(results)

    payload = {
        "config": {
            "dataset": "btc (synthetic analogue)",
            "sizes": args.sizes,
            "requests": args.requests,
            "extent_fraction": 0.08,
            "sample_size": args.samples,
            "client_counts": args.clients,
            "windows_ms": args.windows_ms,
            "max_batch_size": args.batch,
            "engine_shards": ENGINE_SHARDS,
            "repro_version": __version__,
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "results": results,
        "summary": summary,
    }
    validate_payload(payload)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
