#!/usr/bin/env python
"""Bench-regression gate: schema-validate BENCH_*.json and compare runs.

Usage::

    python scripts/check_bench.py validate [FILES...]
    python scripts/check_bench.py compare --baseline BENCH_x.json --candidate /tmp/bench_x.json
    python scripts/check_bench.py compare-all --candidate-dir /tmp [--tolerance 10]

``validate`` checks every committed benchmark payload (all ``BENCH_*.json``
at the repo root by default) against the schema its emitting script commits
to — top-level shape, required row fields, non-empty sections.  A bench
script that drifts its payload shape fails CI here instead of silently
rotting the committed baselines.

``compare`` guards against *order-of-magnitude* performance regressions
without flaking on CI noise.  Raw throughput numbers are not comparable
between a laptop full-scale run and a CI smoke run at tiny sizes, so the
comparison only looks at **dimensionless indicators** — speedup ratios that
measure a *design property* rather than the hardware:

* ``BENCH_throughput.json`` — batch-vs-scalar speedup per operation;
* ``BENCH_service.json``    — sharded-vs-unsharded throughput ratio per operation;
* ``BENCH_updates.json``    — bulk-insert speedup over the scalar loop, and
  the hard invariant that a small delta log never triggers a full re-flatten;
* ``BENCH_gateway.json``    — the gateway's p95 latency advantage over scalar
  dispatch for ``sample`` traffic at the peak client count (the ``count``
  indicator is reported but not gated: at smoke scale a count call is so
  cheap that the coalescing window dominates, which is expected, not a
  regression);
* ``BENCH_build.json``      — the treeless columnar builder's speedup over the
  tree-walk full build, and the hard invariant that both builders emit
  bit-identical snapshot arrays;
* ``BENCH_parallel.json``   — the hard invariant that the process executor's
  answers are bit-identical to the serial executor's at the same shard count
  under *both* scatter strategies (``data`` and ``query``), plus advisory
  process-vs-serial throughput ratios per (operation, scatter) — parallel
  speedup is a property of the runner's core count, recorded in
  ``config.cpu_count``;
* ``BENCH_serving.json``    — the hard invariants that every request shed by
  the HTTP front end's admission controller receives an explicit 429-class
  response (never a hang or a reset) and that a graceful drain under fire —
  concurrent writers plus a SIGKILLed shard worker — loses no acknowledged
  write and refuses post-close traffic, plus the advisory shed rate past
  saturation;
* ``BENCH_kernels.json``    — the hard invariant that every kernel backend's
  answers are bit-identical to the numpy reference backend's, plus advisory
  per-backend throughput ratios (JIT speedup is a property of the runner —
  ``config.numba_available`` records whether numba was importable at all).

A candidate fails only when an indicator falls below ``baseline /
tolerance`` (default tolerance 10x — generous by design; the gate exists to
catch "the vectorised path silently stopped batching", not a 30% wobble).
Indicators present in the baseline but absent from the candidate sweep are
reported and skipped.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Required payload shape per benchmark family (keyed by committed basename).
#: ``sections`` maps section name -> required row fields; a ``None`` section
#: key means ``results`` is a flat list of rows.
SCHEMAS: dict[str, dict] = {
    "BENCH_throughput.json": {
        "top": {"config", "results"},
        "rows": {
            None: {"n", "operation", "scalar_qps", "batch_qps", "speedup"},
        },
    },
    "BENCH_service.json": {
        "top": {"config", "results"},
        "rows": {
            None: {"n", "operation", "shards", "executor", "qps", "vs_unsharded"},
        },
    },
    "BENCH_updates.json": {
        "top": {"config", "results"},
        "rows": {
            "bulk_insert": {"n", "bulk_seconds", "scalar_seconds", "speedup"},
            "refresh": {
                "n",
                "ops",
                "full_builds_delta",
                "incremental_refreshes_delta",
                "refresh_seconds",
                "full_rebuild_seconds",
            },
            "mixed": {"n", "shards", "write_ratio", "reads_per_sec", "ops_per_sec"},
        },
    },
    "BENCH_build.json": {
        "top": {"config", "results"},
        "rows": {
            "full_build": {
                "dataset",
                "n",
                "tree_seconds",
                "columnar_seconds",
                "speedup",
                "arrays_equal",
            },
            "weighted_build": {"n", "tree_seconds", "columnar_seconds", "speedup"},
            "engine_build": {"n", "shards", "tree_seconds", "columnar_seconds", "speedup"},
        },
    },
    "BENCH_gateway.json": {
        "top": {"config", "results", "summary"},
        "rows": {
            None: {
                "n",
                "operation",
                "mode",
                "clients",
                "window_ms",
                "requests",
                "rps",
                "p50_ms",
                "p95_ms",
                "p99_ms",
            },
        },
        "summary_rows": {
            "n",
            "operation",
            "clients",
            "scalar_p95_ms",
            "gateway_p95_ms",
            "p95_speedup",
        },
    },
    "BENCH_parallel.json": {
        "top": {"config", "results"},
        "rows": {
            None: {
                "n",
                "operation",
                "shards",
                "executor",
                "scatter",
                "qps",
                "vs_serial_k1",
                "results_identical",
            },
        },
    },
    "BENCH_kernels.json": {
        "top": {"config", "results"},
        "rows": {
            None: {
                "n",
                "operation",
                "backend",
                "qps",
                "vs_numpy",
                "counts_bit_identical",
                "samples_bit_identical",
            },
        },
    },
    "BENCH_serving.json": {
        "top": {"config", "results"},
        "rows": {
            "load": {
                "n",
                "multiplier",
                "offered_rps",
                "sent",
                "ok",
                "shed",
                "shed_rate",
                "p50_ms",
                "p99_ms",
                "all_shed_429",
            },
            "drain": {
                "n",
                "writes_acked",
                "worker_killed",
                "no_acked_loss",
                "post_close_rejected",
            },
        },
    },
    "BENCH_recovery.json": {
        "top": {"config", "results"},
        "rows": {
            "cold_start": {
                "n",
                "shards",
                "rebuild_seconds",
                "save_seconds",
                "open_seconds",
                "speedup",
                "mmap",
                "verify",
            },
            "wal_replay": {"n", "ops", "replay_seconds", "ops_per_sec", "recovered_ok"},
            "kill_recover": {"n", "acknowledged", "recovered", "ok"},
        },
    },
}


def validate_file(path: Path) -> list[str]:
    """Validate one payload against its family schema; return failure strings."""
    schema = SCHEMAS.get(path.name)
    if schema is None:
        return [f"{path.name}: no schema registered (add it to scripts/check_bench.py)"]
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path.name}: unreadable payload ({exc})"]

    failures: list[str] = []
    if set(payload) != schema["top"]:
        failures.append(
            f"{path.name}: top-level keys {sorted(payload)} != {sorted(schema['top'])}"
        )
        return failures

    for section, required in schema["rows"].items():
        rows = payload["results"] if section is None else payload["results"].get(section)
        label = path.name if section is None else f"{path.name}[{section}]"
        if not isinstance(rows, list) or not rows:
            failures.append(f"{label}: must carry a non-empty row list")
            continue
        for index, row in enumerate(rows):
            missing = required - set(row)
            if missing:
                failures.append(f"{label} row {index}: missing fields {sorted(missing)}")
                break
    summary_required = schema.get("summary_rows")
    if summary_required is not None:
        rows = payload.get("summary")
        if not isinstance(rows, list) or not rows:
            failures.append(f"{path.name}[summary]: must carry a non-empty row list")
        else:
            for index, row in enumerate(rows):
                missing = summary_required - set(row)
                if missing:
                    failures.append(
                        f"{path.name}[summary] row {index}: missing fields {sorted(missing)}"
                    )
                    break
    return failures


# --------------------------------------------------------------------- #
# dimensionless regression indicators
# --------------------------------------------------------------------- #
def _throughput_indicators(payload: dict) -> dict[str, float]:
    out: dict[str, float] = {}
    for row in payload["results"]:
        key = f"batch_speedup[{row['operation']}]"
        out[key] = max(out.get(key, 0.0), float(row["speedup"]))
    return out


def _service_indicators(payload: dict) -> dict[str, float]:
    out: dict[str, float] = {}
    for row in payload["results"]:
        if row["shards"] == 0:
            continue
        key = f"vs_unsharded[{row['operation']}]"
        out[key] = max(out.get(key, 0.0), float(row["vs_unsharded"]))
    return out


def _updates_indicators(payload: dict) -> dict[str, float]:
    out = {
        "bulk_insert_speedup": max(
            float(row["speedup"]) for row in payload["results"]["bulk_insert"]
        )
    }
    # Hard invariant rather than a ratio: a delta log that is small relative
    # to the shard must refresh incrementally (no full re-flatten).
    for row in payload["results"]["refresh"]:
        if row["n"] >= 20 * row["ops"]:
            out["refresh_incremental"] = 1.0 if row["full_builds_delta"] == 0 else 0.0
    return out


def _build_indicators(payload: dict) -> dict[str, float]:
    out = {
        "columnar_build_speedup": max(
            float(row["speedup"]) for row in payload["results"]["full_build"]
        ),
        # Hard invariant rather than a ratio: the two build routes must stay
        # bit-identical on every measured cell.
        "builders_bit_identical": 1.0
        if all(bool(row["arrays_equal"]) for row in payload["results"]["full_build"])
        else 0.0,
    }
    weighted = payload["results"].get("weighted_build") or []
    if weighted:
        out["columnar_weighted_speedup"] = max(float(row["speedup"]) for row in weighted)
    return out


def _gateway_indicators(payload: dict) -> dict[str, float]:
    out: dict[str, float] = {}
    for row in payload["summary"]:
        # Only the sample op gates: micro-batching must keep beating scalar
        # dispatch on p95 wherever per-request work is non-trivial.
        if row["operation"] == "sample":
            key = "gateway_p95_speedup[sample]"
            out[key] = max(out.get(key, 0.0), float(row["p95_speedup"]))
    return out


def _serving_indicators(payload: dict) -> dict[str, float]:
    out = {
        # Hard invariants rather than ratios.  Overload must surface as
        # explicit 429-class responses on every shed request (never a hang
        # or a reset), and a graceful drain under fire — including a
        # SIGKILLed shard worker — must keep every acknowledged write and
        # refuse post-close traffic.  1.0 or bust.
        "serving_shed_429": 1.0
        if all(bool(row["all_shed_429"]) for row in payload["results"]["load"])
        else 0.0,
        "serving_drain_no_loss": 1.0
        if all(
            bool(row["no_acked_loss"]) and bool(row["post_close_rejected"])
            for row in payload["results"]["drain"]
        )
        else 0.0,
    }
    # Advisory (wide-tolerance compare): the admission controller must
    # actually shed past saturation.  The exact rate depends on how far the
    # open-loop sweep lands past this runner's capacity, so it gates only
    # against an order-of-magnitude collapse (e.g. shedding silently
    # disabled while the offered load still exceeds capacity).
    out["serving_shed_rate"] = max(
        float(row["shed_rate"]) for row in payload["results"]["load"]
    )
    return out


def _recovery_indicators(payload: dict) -> dict[str, float]:
    out = {
        "cold_start_speedup": max(
            float(row["speedup"]) for row in payload["results"]["cold_start"]
        ),
        # Hard invariants rather than ratios: recovery must reproduce the
        # pre-shutdown engine exactly, and a SIGKILLed ingest must keep
        # every acknowledged batch.
        "recovery_consistent": 1.0
        if (
            all(bool(row["recovered_ok"]) for row in payload["results"]["wal_replay"])
            and all(bool(row["ok"]) for row in payload["results"]["kill_recover"])
        )
        else 0.0,
    }
    return out


def _parallel_indicators(payload: dict) -> dict[str, float]:
    out = {
        # Hard invariant rather than a ratio: every process-executor row must
        # be bit-identical to the serial executor at the same K.  1.0 or bust.
        "process_bit_identical": 1.0
        if all(bool(row["results_identical"]) for row in payload["results"])
        else 0.0,
    }
    # Advisory scaling indicators (wide-tolerance compare): best relative
    # throughput of the process executor per (operation, scatter strategy).
    # Raw parallel speedup is a property of the runner's core count
    # (config.cpu_count), so these gate only against order-of-magnitude
    # collapses such as a republish-every-batch bug, not against hardware
    # differences.
    for row in payload["results"]:
        if row["executor"] != "process":
            continue
        scatter = row.get("scatter") or "data"
        key = f"process_vs_serial_k1[{row['operation']}:{scatter}]"
        out[key] = max(out.get(key, 0.0), float(row["vs_serial_k1"]))
    return out


def _kernels_indicators(payload: dict) -> dict[str, float]:
    out = {
        # Hard invariant rather than a ratio: every backend row must answer
        # bit-identically to the numpy reference backend.  1.0 or bust.
        "kernels_bit_identical": 1.0
        if all(
            bool(row["counts_bit_identical"]) and bool(row["samples_bit_identical"])
            for row in payload["results"]
        )
        else 0.0,
    }
    # Advisory speedup indicators (wide-tolerance compare): best relative
    # throughput per (backend, operation).  A compiled backend should sit
    # well above the python loop mirror, but raw JIT speedup is a property
    # of the runner (config.numba_available / config.cpu_count), so these
    # gate only against order-of-magnitude collapses.
    for row in payload["results"]:
        if row["backend"] == "numpy":
            continue
        key = f"kernel_vs_numpy[{row['backend']}:{row['operation']}]"
        out[key] = max(out.get(key, 0.0), float(row["vs_numpy"]))
    return out


INDICATORS = {
    "BENCH_throughput.json": _throughput_indicators,
    "BENCH_kernels.json": _kernels_indicators,
    "BENCH_parallel.json": _parallel_indicators,
    "BENCH_service.json": _service_indicators,
    "BENCH_updates.json": _updates_indicators,
    "BENCH_gateway.json": _gateway_indicators,
    "BENCH_serving.json": _serving_indicators,
    "BENCH_build.json": _build_indicators,
    "BENCH_recovery.json": _recovery_indicators,
}


def compare_files(baseline: Path, candidate: Path, tolerance: float) -> list[str]:
    """Compare candidate indicators to the baseline's; return failure strings."""
    family = baseline.name
    extract = INDICATORS.get(family)
    if extract is None:
        return [f"{family}: no indicator extractor registered"]
    failures: list[str] = []
    base = extract(json.loads(baseline.read_text()))
    cand = extract(json.loads(candidate.read_text()))
    for key in sorted(base):
        if key not in cand:
            print(f"  {family} :: {key}: absent from candidate sweep, skipped")
            continue
        floor = base[key] / tolerance
        status = "ok" if cand[key] >= floor else "REGRESSION"
        print(
            f"  {family} :: {key}: baseline {base[key]:.3f}, candidate "
            f"{cand[key]:.3f} (floor {floor:.3f}) -> {status}"
        )
        if cand[key] < floor:
            failures.append(
                f"{family}: {key} regressed by more than {tolerance:g}x "
                f"({base[key]:.3f} -> {cand[key]:.3f})"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    p_validate = sub.add_parser("validate", help="schema-validate committed BENCH_*.json")
    p_validate.add_argument(
        "files",
        nargs="*",
        type=Path,
        help="payloads to validate (default: all BENCH_*.json at the repo root)",
    )

    p_compare = sub.add_parser("compare", help="compare one candidate run to its baseline")
    p_compare.add_argument("--baseline", type=Path, required=True)
    p_compare.add_argument("--candidate", type=Path, required=True)
    p_compare.add_argument("--tolerance", type=float, default=10.0)

    p_all = sub.add_parser(
        "compare-all", help="compare every committed baseline to <dir>/bench_<family>.json"
    )
    p_all.add_argument("--candidate-dir", type=Path, required=True)
    p_all.add_argument("--tolerance", type=float, default=10.0)
    args = parser.parse_args(argv)

    failures: list[str] = []
    if args.command == "validate":
        files = args.files or sorted(REPO_ROOT.glob("BENCH_*.json"))
        if not files:
            failures.append("no BENCH_*.json files found to validate")
        for path in files:
            file_failures = validate_file(path)
            failures.extend(file_failures)
            print(f"schema {'FAILED' if file_failures else 'ok'}: {path.name}")
    elif args.command == "compare":
        failures.extend(compare_files(args.baseline, args.candidate, args.tolerance))
    else:  # compare-all
        for baseline in sorted(REPO_ROOT.glob("BENCH_*.json")):
            # BENCH_gateway.json -> bench_gateway.json, the smoke output name.
            candidate = args.candidate_dir / baseline.name.replace("BENCH_", "bench_").lower()
            if not candidate.exists():
                print(f"  {baseline.name}: no candidate at {candidate}, skipped")
                continue
            failures.extend(compare_files(baseline, candidate, args.tolerance))

    if failures:
        print("\nFAILURES:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("\nbench gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
