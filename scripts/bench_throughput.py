#!/usr/bin/env python
"""Measure scalar vs batch AIT query throughput and emit BENCH_throughput.json.

Usage::

    PYTHONPATH=src python scripts/bench_throughput.py [--out BENCH_throughput.json]

For each dataset size (10k and 100k intervals by default) the script builds
an AIT over the synthetic btc-analogue dataset, generates 1,000 queries at 8%
extent, and times each operation both as a scalar per-query loop and via the
flat batch engine (``count_many`` / ``report_many`` / ``sample_many``).
Sampling is measured at multiple per-query sample sizes because the speedup
is s-dependent: at small s the batch engine amortises per-query dispatch
(order-of-magnitude wins); at large s both paths are dominated by per-draw
array work and the gap narrows.  The JSON output is machine-readable so
successive PRs can compare their numbers against the committed baseline:

    {"config": {...}, "results": [{"n": ..., "operation": "count",
      "sample_size": ..., "scalar_qps": ..., "batch_qps": ..., "speedup": ...}, ...]}
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import AIT, __version__  # noqa: E402
from repro.datasets import generate_paper_dataset, generate_queries  # noqa: E402
from repro.experiments.exp_throughput import measure_pair  # noqa: E402
from repro.sampling.rng import resolve_rng  # noqa: E402


def bench_one(n: int, query_count: int, sample_sizes: list[int], repeats: int) -> list[dict]:
    dataset = generate_paper_dataset("btc", n=n, random_state=1)
    workload = generate_queries(dataset, count=query_count, extent_fraction=0.08, random_state=2)
    queries = list(workload)
    query_array = np.asarray(queries, dtype=np.float64)
    tree = AIT(dataset)
    tree.flat()  # snapshot once, outside the timed region

    operations = [
        (
            "count",
            None,
            lambda: [tree.count(q) for q in queries],
            lambda: tree.count_many(query_array),
        ),
        (
            "report",
            None,
            lambda: [tree.report(q) for q in queries],
            lambda: tree.report_many(query_array),
        ),
    ]
    def scalar_sample(s):
        # Generator created once per invocation, not once per query, so its
        # construction cost is not charged to the scalar side.
        rng = resolve_rng(0)
        return [tree.sample(q, s, random_state=rng) for q in queries]

    for s in sample_sizes:
        operations.append(
            (
                "sample",
                s,
                lambda s=s: scalar_sample(s),
                lambda s=s: tree.sample_many(query_array, s, random_state=0),
            )
        )
    rows = []
    for operation, s, scalar_fn, batch_fn in operations:
        scalar_qps, batch_qps, speedup = measure_pair(scalar_fn, batch_fn, len(queries), repeats)
        rows.append(
            {
                "n": n,
                "operation": operation,
                "sample_size": s,
                "scalar_qps": round(scalar_qps, 1),
                "batch_qps": round(batch_qps, 1),
                "speedup": round(speedup, 2),
            }
        )
        label = operation if s is None else f"{operation} s={s}"
        print(
            f"n={n:>7} {label:<14} scalar {scalar_qps:>12.0f} q/s   "
            f"batch {batch_qps:>12.0f} q/s   speedup {speedup:5.1f}x"
        )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_throughput.json",
        help="output JSON path (default: repo-root BENCH_throughput.json)",
    )
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[10_000, 100_000], help="dataset sizes"
    )
    parser.add_argument("--queries", type=int, default=1_000, help="queries per measurement")
    parser.add_argument(
        "--sample-sizes",
        type=int,
        nargs="+",
        default=[100, 1_000],
        help="samples per query (one sampling row per value)",
    )
    parser.add_argument("--repeats", type=int, default=3, help="best-of-N timing repetitions")
    args = parser.parse_args(argv)

    results = []
    for n in args.sizes:
        results.extend(bench_one(n, args.queries, args.sample_sizes, args.repeats))

    payload = {
        "config": {
            "dataset": "btc (synthetic analogue)",
            "sizes": args.sizes,
            "query_count": args.queries,
            "extent_fraction": 0.08,
            "sample_sizes": args.sample_sizes,
            "repeats": args.repeats,
            "repro_version": __version__,
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "results": results,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.out}")

    largest = max(args.sizes)
    for row in results:
        if row["n"] != largest or row["operation"] == "report":
            continue
        label = row["operation"] if row["sample_size"] is None else (
            f"{row['operation']}(s={row['sample_size']})"
        )
        print(f"n={largest} {label}: {row['speedup']:.1f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
