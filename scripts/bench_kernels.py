#!/usr/bin/env python
"""Measure FlatAIT kernel-backend throughput and emit BENCH_kernels.json.

Usage::

    PYTHONPATH=src python scripts/bench_kernels.py [--out BENCH_kernels.json]

For each dataset size the script rebinds the *same* snapshot arrays to every
available kernel backend (:mod:`repro.kernels`), times ``count_many`` /
``report_many`` / ``sample_many`` on the same workload, and records
queries/second per (n, operation, backend) plus three derived columns:

* ``vs_numpy``               — throughput relative to the numpy reference
  backend (the curve a compiled backend exists to move; advisory, because
  the committed baseline may not have numba importable and the ``python``
  backend is a deliberately-slow portable loop mirror);
* ``counts_bit_identical``   — **hard invariant**: counts and report chunks
  are bit-identical (exact array equality) to the numpy backend's;
* ``samples_bit_identical``  — **hard invariant**: fixed-seed sample draws
  are bit-identical to the numpy backend's.

``config.numba_available`` records whether the sweep had numba at all and
``config.jit`` which backends actually compiled; a numba-less runner (such
as the tier-1 CI job, which deliberately excludes the accel extra) still
produces a valid baseline with numpy + python rows only.  JIT compilation
is absorbed by an un-timed warm-up pass per (backend, operation), so the
timed passes measure steady-state kernel throughput.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import AIT, __version__  # noqa: E402
from repro.datasets import generate_paper_dataset, generate_queries  # noqa: E402
from repro.experiments.exp_kernel_throughput import (  # noqa: E402
    KERNEL_OPERATIONS,
    answers_identical,
    backend_names,
    flat_with_backend,
    measure_flat,
)
from repro.kernels import get_backend, numba_available  # noqa: E402


def bench_one(n: int, query_count: int, sample_size: int, repeats: int) -> list[dict]:
    dataset = generate_paper_dataset("btc", n=n, random_state=1)
    workload = generate_queries(dataset, count=query_count, extent_fraction=0.08, random_state=2)
    query_array = np.asarray(list(workload), dtype=np.float64)

    base = AIT(dataset).flat()
    ql, qr = base.coerce_queries(query_array)

    rows = []
    reference: dict[str, tuple[float, object]] = {}
    for backend in backend_names():
        measured = measure_flat(flat_with_backend(base, backend), ql, qr, sample_size, repeats)
        if backend == "numpy":
            reference = measured
        counts_identical = answers_identical(
            reference["count"][1], measured["count"][1]
        ) and answers_identical(reference["report"][1], measured["report"][1])
        samples_identical = answers_identical(reference["sample"][1], measured["sample"][1])
        for operation in KERNEL_OPERATIONS:
            qps, _ = measured[operation]
            ref_qps, _ = reference[operation]
            ratio = qps / ref_qps if ref_qps > 0 else float("inf")
            rows.append(
                {
                    "n": n,
                    "operation": operation,
                    "backend": backend,
                    "qps": round(qps, 1),
                    "vs_numpy": round(ratio, 3),
                    "counts_bit_identical": bool(counts_identical),
                    "samples_bit_identical": bool(samples_identical),
                }
            )
            print(
                f"n={n:>7} {operation:<7} {backend:<7} {qps:>12.0f} q/s"
                f"   {ratio:6.2f}x numpy   counts={counts_identical}"
                f" samples={samples_identical}"
            )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_kernels.json",
        help="output JSON path (default: repo-root BENCH_kernels.json)",
    )
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[100_000], help="dataset sizes"
    )
    parser.add_argument("--queries", type=int, default=1_000, help="queries per measurement")
    parser.add_argument("--samples", type=int, default=100, help="samples per query")
    parser.add_argument("--repeats", type=int, default=3, help="best-of-N timing repetitions")
    args = parser.parse_args(argv)

    results = []
    for n in args.sizes:
        results.extend(bench_one(n, args.queries, args.samples, args.repeats))

    payload = {
        "config": {
            "dataset": "btc (synthetic analogue)",
            "sizes": args.sizes,
            "query_count": args.queries,
            "extent_fraction": 0.08,
            "sample_size": args.samples,
            "repeats": args.repeats,
            "backends": list(backend_names()),
            "numba_available": bool(numba_available()),
            "jit": {name: bool(get_backend(name).jit) for name in backend_names()},
            "cpu_count": os.cpu_count(),
            "repro_version": __version__,
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "results": results,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
