#!/usr/bin/env python
"""Measure serving SLO under open-loop overload; emit BENCH_serving.json.

Usage::

    PYTHONPATH=src python scripts/bench_serving.py [--out BENCH_serving.json]

The script stands up the full serving stack — ShardedEngine behind a
RequestGateway behind an :class:`~repro.service.HttpFrontend` with admission
control — and measures the resilience properties the front end commits to:

* **load** — a closed-loop burst calibrates the server's capacity, then an
  **open-loop** generator (fixed arrival schedule, independent of server
  progress) offers fixed multiples of that capacity, all past saturation.
  Each row records shed rate and client-side p50/p99.  Hard invariant:
  every request gets an explicit HTTP response and every non-2xx response
  is an expected overload/deadline status (``all_shed_429``) — overload
  must never surface as a hang or a reset;
* **drain** — concurrent HTTP writers insert while a shard worker is
  SIGKILLed mid-service, then the server closes gracefully under fire.
  Hard invariant: every acknowledged write survives into a recovered
  engine and post-close requests are refused (``no_acked_loss``,
  ``post_close_rejected``).

The drive loops are shared with the registered ``serving_slo`` experiment
(:mod:`repro.experiments.exp_serving_slo`), so the committed baseline
measures exactly what ``repro-experiments run serving_slo`` measures.
``scripts/check_bench.py`` gates the hard invariants at exactly 1.0.

The payload is shape-validated before it is written, so a CI smoke
invocation at tiny sizes doubles as a schema regression test.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import ShardedEngine, __version__  # noqa: E402
from repro.datasets import generate_paper_dataset, generate_queries  # noqa: E402
from repro.experiments.exp_serving_slo import (  # noqa: E402
    ENGINE_SHARDS,
    MAX_PENDING,
    OFFERED_MULTIPLIERS,
    calibrate_capacity,
    measure_drain,
    measure_offered_load,
    serve_frontend,
)


def bench_load(
    n: int,
    duration_s: float,
    sample_size: int,
    multipliers: list[float],
    max_pending: int,
    deadline_ms: float,
) -> list[dict]:
    dataset = generate_paper_dataset("btc", n=n, random_state=1)
    workload = generate_queries(dataset, count=256, extent_fraction=0.08, random_state=2)
    queries = np.asarray(list(workload), dtype=np.float64)

    rows: list[dict] = []
    with ShardedEngine(dataset, num_shards=ENGINE_SHARDS) as engine:
        engine.refresh()
        frontend = serve_frontend(engine, max_pending, deadline_ms)
        try:
            host, port = frontend.address
            probe = (float(queries[0, 0]), float(queries[0, 1]))
            capacity = calibrate_capacity(host, port, probe, sample_size)
            print(f"n={n:>7} calibrated capacity ~{capacity:.0f} req/s")
            for multiplier in multipliers:
                row = measure_offered_load(
                    host,
                    port,
                    queries,
                    offered_rps=capacity * multiplier,
                    duration_s=duration_s,
                    sample_size=sample_size,
                    deadline_ms=deadline_ms,
                )
                row = {"n": n, "multiplier": multiplier, **row}
                rows.append(row)
                print(
                    f"n={n:>7} offered={row['offered_rps']:>8.0f}rps ({multiplier:g}x)"
                    f"  ok={row['ok']:<6} shed={row['shed']:<6}"
                    f"  shed_rate={row['shed_rate']:.3f}"
                    f"  p50={row['p50_ms']:.1f}ms p99={row['p99_ms']:.1f}ms"
                    f"  all_shed_429={row['all_shed_429']}"
                )
        finally:
            frontend.close()
    return rows


def bench_drain(n: int, writers: int, min_acks: int) -> list[dict]:
    dataset = generate_paper_dataset("btc", n=n, random_state=3)
    with tempfile.TemporaryDirectory(prefix="repro-bench-drain-") as directory:
        row = measure_drain(dataset, directory, writers=writers, min_acks=min_acks)
    row = {"n": n, **row}
    print(
        f"n={n:>7} drain: acked={row['writes_acked']} "
        f"worker_killed={row['worker_killed']} no_acked_loss={row['no_acked_loss']} "
        f"post_close_rejected={row['post_close_rejected']}"
    )
    return [row]


def validate_payload(payload: dict) -> None:
    """Assert the emitted JSON has the committed schema; raise on drift."""
    assert set(payload) == {"config", "results"}, "payload must have config + results"
    assert set(payload["results"]) == {"load", "drain"}
    assert payload["results"]["load"], "load must carry at least one row"
    for row in payload["results"]["load"]:
        assert {
            "n",
            "multiplier",
            "offered_rps",
            "sent",
            "ok",
            "shed",
            "shed_rate",
            "p50_ms",
            "p99_ms",
            "all_shed_429",
        } <= set(row)
        assert row["sent"] == row["ok"] + row["shed"] + row["deadline"] + row[
            "unavailable"
        ] + row["other"] + row["transport_errors"]
    assert payload["results"]["drain"], "drain must carry at least one row"
    for row in payload["results"]["drain"]:
        assert {
            "n",
            "writes_acked",
            "worker_killed",
            "no_acked_loss",
            "post_close_rejected",
        } <= set(row)
        assert row["writes_acked"] > 0, "drain must acknowledge writes before closing"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_serving.json",
        help="output JSON path (default: repo-root BENCH_serving.json)",
    )
    parser.add_argument("--size", type=int, default=100_000, help="dataset size (load)")
    parser.add_argument(
        "--drain-size", type=int, default=20_000, help="dataset size (drain segment)"
    )
    parser.add_argument(
        "--duration", type=float, default=3.0, help="seconds per offered-load point"
    )
    parser.add_argument("--samples", type=int, default=100, help="samples per request")
    parser.add_argument(
        "--multipliers",
        type=float,
        nargs="+",
        default=list(OFFERED_MULTIPLIERS),
        help="offered-load multiples of calibrated capacity (past saturation)",
    )
    parser.add_argument(
        "--max-pending", type=int, default=MAX_PENDING, help="admission pending cap"
    )
    parser.add_argument(
        "--deadline-ms", type=float, default=2_000.0, help="per-request deadline"
    )
    parser.add_argument("--writers", type=int, default=3, help="drain writer threads")
    parser.add_argument(
        "--min-acks", type=int, default=8, help="acks per writer before kill/drain"
    )
    args = parser.parse_args(argv)

    load_rows = bench_load(
        args.size,
        args.duration,
        args.samples,
        args.multipliers,
        args.max_pending,
        args.deadline_ms,
    )
    print()
    drain_rows = bench_drain(args.drain_size, args.writers, args.min_acks)

    payload = {
        "config": {
            "dataset": "btc (synthetic analogue)",
            "size": args.size,
            "drain_size": args.drain_size,
            "duration_s": args.duration,
            "sample_size": args.samples,
            "multipliers": args.multipliers,
            "max_pending": args.max_pending,
            "deadline_ms": args.deadline_ms,
            "writers": args.writers,
            "min_acks": args.min_acks,
            "engine_shards": ENGINE_SHARDS,
            "repro_version": __version__,
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "results": {"load": load_rows, "drain": drain_rows},
    }
    validate_payload(payload)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
