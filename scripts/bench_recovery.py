#!/usr/bin/env python
"""Measure the durability layer end-to-end and emit BENCH_recovery.json.

Usage::

    PYTHONPATH=src python scripts/bench_recovery.py [--out BENCH_recovery.json]

Three measurements:

* **cold_start** — time to answer the first query from a fresh process:
  rebuilding the sharded AIT engine from raw endpoint arrays vs reopening
  the page-aligned snapshot epoch written by ``save_snapshot`` (checksums
  verified, arrays mmap-ed).  The speedup column is the headline number of
  the durability layer: the snapshot files *are* the FlatAIT columns, so a
  restart pays sequential I/O instead of comparison sorts;
* **wal_replay** — journal ``--ops`` bulk writes after the snapshot, drop
  the engine, and time a reopen that replays the WAL chain through the
  incremental refresh; ``recovered_ok`` is an exact ``count_many``/size
  equality check against the pre-shutdown engine;
* **kill_recover** — the SIGKILL harness (``repro.persist.harness``): a
  child ingests acknowledged batches under ``fsync="always"``, dies mid
  stream, and the parent verifies the recovered engine matches an oracle
  prefix that contains every acknowledged batch.

The emitted payload is shape-validated before it is written, so a CI smoke
invocation at tiny sizes doubles as a schema regression test:

    {"config": {...}, "results": {"cold_start": [...], "wal_replay": [...],
      "kill_recover": [...]}}
"""

from __future__ import annotations

import argparse
import json
import platform
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import ShardedEngine, __version__  # noqa: E402
from repro.datasets import generate_paper_dataset, generate_queries  # noqa: E402
from repro.persist.harness import run_kill_and_recover  # noqa: E402

SHARD_SWEEP = (1, 4)


def _queries(dataset, count=64, seed=19):
    workload = generate_queries(dataset, count=count, random_state=seed)
    return np.asarray(list(workload), dtype=np.float64)


def bench_cold_start(n: int, repeats: int) -> list[dict]:
    """First-query latency: rebuild from raw arrays vs reopen the snapshot."""
    dataset = generate_paper_dataset("book", n=n, random_state=5)
    queries = _queries(dataset)
    rows = []
    for shards in SHARD_SWEEP:
        directory = tempfile.mkdtemp(prefix="repro-bench-cold-")
        try:
            rebuild_best = float("inf")
            for _ in range(max(1, repeats)):
                start = time.perf_counter()
                engine = ShardedEngine(dataset, num_shards=shards)
                engine.refresh()
                engine.count_many(queries[:1])
                rebuild_best = min(rebuild_best, time.perf_counter() - start)
                engine.close()

            engine = ShardedEngine(dataset, num_shards=shards)
            engine.refresh()
            start = time.perf_counter()
            engine.save_snapshot(directory)
            save_seconds = time.perf_counter() - start
            want = engine.count_many(queries)
            engine.close()

            open_best = float("inf")
            for _ in range(max(1, repeats)):
                start = time.perf_counter()
                restored = ShardedEngine.open(directory, mmap=True, verify=True)
                restored.count_many(queries[:1])
                open_best = min(open_best, time.perf_counter() - start)
                consistent = bool(np.array_equal(restored.count_many(queries), want))
                restored.close()
                assert consistent, "reopened engine diverged from the original"

            rows.append(
                {
                    "n": n,
                    "shards": shards,
                    "rebuild_seconds": rebuild_best,
                    "save_seconds": save_seconds,
                    "open_seconds": open_best,
                    "speedup": rebuild_best / open_best,
                    "mmap": True,
                    "verify": True,
                }
            )
        finally:
            shutil.rmtree(directory, ignore_errors=True)
    return rows


def bench_wal_replay(n: int, ops: int) -> list[dict]:
    """Reopen cost when ``ops`` journaled writes must be replayed on top."""
    dataset = generate_paper_dataset("book", n=n, random_state=6)
    queries = _queries(dataset)
    rows = []
    directory = tempfile.mkdtemp(prefix="repro-bench-wal-")
    try:
        engine = ShardedEngine(dataset, num_shards=4)
        engine.refresh()
        engine.save_snapshot(directory)

        rng = np.random.default_rng(23)
        lo, hi = dataset.domain()
        half = ops // 2
        lefts = rng.uniform(lo, hi, half)
        rights = lefts + rng.exponential((hi - lo) * 0.02, half)
        new_ids = engine.insert_many(lefts, rights)
        engine.delete_many(new_ids[: ops - half])
        engine.sync_wal()
        want = engine.count_many(queries)
        want_size = engine.size
        engine.close()

        start = time.perf_counter()
        restored = ShardedEngine.open(directory)
        restored.refresh()  # fold the replayed deltas inside the window
        replay_seconds = time.perf_counter() - start
        recovered_ok = bool(
            restored.size == want_size
            and np.array_equal(restored.count_many(queries), want)
        )
        restored.close()

        rows.append(
            {
                "n": n,
                "ops": ops,
                "replay_seconds": replay_seconds,
                "ops_per_sec": ops / replay_seconds if replay_seconds > 0 else float("inf"),
                "recovered_ok": recovered_ok,
            }
        )
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    return rows


def bench_kill_recover(n: int) -> list[dict]:
    """SIGKILL mid-ingest: every acknowledged batch must be recovered."""
    directory = tempfile.mkdtemp(prefix="repro-bench-kill-")
    try:
        report = run_kill_and_recover(
            directory, base_n=n, seed=97, batch=16, kill_after_acks=6, num_shards=4
        )
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    return [
        {
            "n": n,
            "acknowledged": report["acked_ops"],
            "recovered": report["recovered_ops"],
            "ok": bool(report["ok"]),
        }
    ]


def validate_payload(payload: dict) -> None:
    """Fail fast when the payload drifts from the schema check_bench.py gates."""
    assert set(payload) == {"config", "results"}
    results = payload["results"]
    assert set(results) == {"cold_start", "wal_replay", "kill_recover"}
    for row in results["cold_start"]:
        assert {
            "n", "shards", "rebuild_seconds", "save_seconds", "open_seconds",
            "speedup", "mmap", "verify",
        } <= set(row)
    for row in results["wal_replay"]:
        assert {"n", "ops", "replay_seconds", "ops_per_sec", "recovered_ok"} <= set(row)
    for row in results["kill_recover"]:
        assert {"n", "acknowledged", "recovered", "ok"} <= set(row)
    assert results["cold_start"] and results["wal_replay"] and results["kill_recover"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=1_000_000,
                        help="dataset size for cold_start / wal_replay")
    parser.add_argument("--ops", type=int, default=20_000,
                        help="journaled writes for the wal_replay section")
    parser.add_argument("--kill-n", type=int, default=10_000,
                        help="base dataset size for the kill_recover section")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default="BENCH_recovery.json")
    args = parser.parse_args(argv)

    print(f"cold_start: n={args.n} ...", flush=True)
    cold = bench_cold_start(args.n, args.repeats)
    for row in cold:
        print(
            f"  shards={row['shards']}: rebuild {row['rebuild_seconds']:.3f}s, "
            f"open {row['open_seconds']:.3f}s -> speedup {row['speedup']:.1f}x"
        )

    print(f"wal_replay: n={args.n} ops={args.ops} ...", flush=True)
    wal = bench_wal_replay(args.n, args.ops)
    for row in wal:
        print(
            f"  replay {row['replay_seconds']:.3f}s "
            f"({row['ops_per_sec']:.0f} ops/s), recovered_ok={row['recovered_ok']}"
        )

    print(f"kill_recover: n={args.kill_n} ...", flush=True)
    kill = bench_kill_recover(args.kill_n)
    for row in kill:
        print(f"  acked={row['acknowledged']} recovered={row['recovered']} ok={row['ok']}")

    payload = {
        "config": {
            "version": __version__,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "n": args.n,
            "ops": args.ops,
            "kill_n": args.kill_n,
            "repeats": args.repeats,
        },
        "results": {"cold_start": cold, "wal_replay": wal, "kill_recover": kill},
    }
    validate_payload(payload)
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
