"""The kernel backend interface: the hot loops of the flat engine, pluggable.

Every performance-critical inner loop of :class:`~repro.core.flat.FlatAIT`
and the segmented sampling primitives in :mod:`repro.sampling.cumulative` is
a pure array program: given the snapshot arrays and a query batch, the result
is a deterministic function of its inputs.  :class:`KernelBackend` names
exactly those loops — nothing else — so an accelerated implementation (Numba
today; Cython/C or CuPy tomorrow) can replace them wholesale while the NumPy
implementation stays the default and the **bit-identity oracle**, the same
oracle pattern ``FlatAIT.from_tree`` provides for ``from_arrays``.

The contract every backend must honour
--------------------------------------

* **Bit identity.**  Each method must return arrays bit-identical to the
  NumPy backend's for the same inputs.  For integer results (binary-search
  insertion points, traversal record indices) this is automatic — the answer
  is a unique integer.  For floating-point results the accumulation *order*
  is part of the contract: :meth:`~KernelBackend.segmented_cumsum` must add
  left to right within each segment (the order of a per-segment
  ``np.cumsum``), and :meth:`~KernelBackend.weighted_pick` must compute its
  thresholds as ``before + u * total`` with no reassociation or FMA
  contraction.
* **RNG stays on NumPy.**  All randomness is consumed through the caller's
  ``numpy.random.Generator`` in a fixed order — :meth:`multinomial_draw` is
  implemented once on the base class and backends must not override how
  random numbers are drawn.  Only the *deterministic* transforms downstream
  of the draws (binary searches, traversals, prefix sums) are
  backend-swappable; that is what makes sample draws identical across
  backends, not merely identically distributed.
* **Record order.**  :meth:`descend_many` must return records grouped by
  query ordinal, and within one query in scalar traversal order (the order
  of :meth:`FlatAIT.collect_ranges`): case 1 and case 2 emit at most one
  record per level on the way down, and the terminal case-3 node emits its
  stab record, then the left child's subtree record, then the right child's.
  The NumPy backend reaches this order via a stable sort of its
  level-synchronous emission; loop backends produce it directly.

Backends are stateless: one instance serves any number of snapshots and
threads concurrently (methods only read their arguments).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.flat import FlatAIT

__all__ = ["KernelBackend", "record_weights"]

_ID = np.int64
_F8 = np.float64


def record_weights(
    prefix: Optional[np.ndarray],
    glo: np.ndarray,
    ghi: np.ndarray,
    gbase: np.ndarray,
) -> np.ndarray:
    """Total sampling weight of each record ``[glo, ghi]`` (global pool indices).

    ``prefix`` is the concatenated per-node inclusive weight-prefix pool
    (``None`` for unweighted snapshots, where the weight is the record
    cardinality); ``gbase`` marks the start of each record's node segment so
    the "weight before ``glo``" term never reads across a segment boundary.
    Shared by every backend — the weight arithmetic is one gather and one
    subtraction, so keeping a single implementation makes cross-backend bit
    identity of the weight column trivially true.
    """
    if prefix is None:
        return (ghi - glo + 1).astype(_F8)
    before = np.where(glo > gbase, prefix[np.maximum(glo - 1, 0)], 0.0)
    return prefix[ghi] - before


class KernelBackend:
    """Abstract kernel set behind the flat engine's hot loops.

    Subclasses implement the deterministic array kernels; the base class
    carries the shared pieces that must *not* vary per backend (the RNG
    consumption of :meth:`multinomial_draw`, the closed-form counting of
    :meth:`count_node`, the weight arithmetic of :func:`record_weights`).
    """

    #: Registry name of the backend (``"numpy"``, ``"numba"``, ``"python"``).
    name: str = "abstract"
    #: True when the hot loops run as compiled (JIT) code.
    jit: bool = False

    # -------------------------------------------------------------- #
    # counting
    # -------------------------------------------------------------- #
    def endpoint_ranks(
        self,
        sorted_lefts: np.ndarray,
        sorted_rights: np.ndarray,
        ql: np.ndarray,
        qr: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per query: ``#(lefts <= q.r)`` and ``#(rights < q.l)`` as int64 arrays.

        The two binary-search ranks behind the closed-form count and the
        weighted total: ``sorted_lefts`` / ``sorted_rights`` are the globally
        sorted endpoint columns (the root node's subtree lists).
        """
        raise NotImplementedError

    def count_node(
        self,
        sorted_lefts: np.ndarray,
        sorted_rights: np.ndarray,
        ql: np.ndarray,
        qr: np.ndarray,
    ) -> np.ndarray:
        """``|q ∩ X|`` per query via the two-searchsorted identity.

        An interval overlaps ``q`` unless it lies entirely left or entirely
        right of it, and the exclusions are disjoint, so
        ``|q ∩ X| = #(lefts <= q.r) - #(rights < q.l)``.  The subtraction of
        two exact integer ranks is backend-independent, so it lives here.
        """
        not_right, left_of = self.endpoint_ranks(sorted_lefts, sorted_rights, ql, qr)
        return (not_right - left_of).astype(_ID, copy=False)

    # -------------------------------------------------------------- #
    # traversal
    # -------------------------------------------------------------- #
    def rank_search(
        self,
        key_pool: np.ndarray,
        sorted_values: np.ndarray,
        rank_m: int,
        nodes: np.ndarray,
        needles: np.ndarray,
        side: str,
    ) -> np.ndarray:
        """Insertion points of ``needles`` inside the given nodes' pool segments.

        Equivalent to a per-node ``searchsorted`` over each node's sorted
        run, resolved through the precomputed rank keys
        (:meth:`FlatAIT._build_rank_keys`): rank each needle against the
        global ``sorted_values`` column, then search ``key_pool`` for
        ``node * rank_m + rank``.  Returns *global* pool indices.
        """
        raise NotImplementedError

    def descend_many(
        self,
        flat: "FlatAIT",
        ql: np.ndarray,
        qr: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Collect node records (Algorithm 1) for the whole query batch.

        Returns ``(query, glo, ghi, gbase, weight)`` parallel arrays — one
        entry per record, ``glo``/``ghi``/``gbase`` as indices into the id
        super-pool — grouped by query and in scalar traversal order within
        each query (see the module docstring's record-order contract).
        """
        raise NotImplementedError

    # -------------------------------------------------------------- #
    # prefix sums and sampling
    # -------------------------------------------------------------- #
    def segmented_cumsum(self, values: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        """Inclusive prefix sums per segment, bit-identical to per-segment cumsum.

        Floating-point addition must run left to right within each segment —
        the accumulation order of a 1-D ``np.cumsum`` — so the result matches
        the tree build's per-node prefixes bit for bit.
        """
        raise NotImplementedError

    def weighted_pick(
        self,
        prefix: np.ndarray,
        lo: np.ndarray,
        hi: np.ndarray,
        uniforms: np.ndarray,
        base: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Batched inverse-CDF draw over slices of one flat prefix-sum pool.

        For each pre-drawn uniform ``u[i]`` pick a position in
        ``lo[i]..hi[i]`` (inclusive) with probability proportional to
        ``prefix[k] - prefix[k-1]``; ``base[i]`` is the start of the owning
        prefix run.  The uniforms are drawn by the *caller* (RNG-identity
        contract); the threshold arithmetic and binary search are the
        backend's.
        """
        raise NotImplementedError

    def multinomial_draw(
        self, rng: np.random.Generator, sample_size: int, pvals: np.ndarray
    ) -> np.ndarray:
        """Batched multinomial record allocation — shared across backends.

        Deliberately *not* overridable in spirit: the draw consumes the
        caller's NumPy generator, which is what keeps sample sequences
        bit-identical across backends (not just equal in distribution).
        """
        return rng.multinomial(sample_size, pvals)

    # -------------------------------------------------------------- #
    # introspection
    # -------------------------------------------------------------- #
    def describe(self) -> dict:
        """Stable metadata for stats/bench reporting."""
        return {"name": self.name, "jit": bool(self.jit)}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, jit={self.jit})"
