"""Pluggable kernel backends for the flat engine's hot loops.

The performance-critical inner loops of :class:`repro.core.flat.FlatAIT`
(level-synchronous traversal, two-searchsorted counting, segmented cumsums,
segmented inverse-CDF sampling) are factored behind the
:class:`~repro.kernels.api.KernelBackend` interface.  Three implementations
register here:

========  =========  ============================================================
name      compiled   what it is
========  =========  ============================================================
numpy     no         vectorised NumPy — the default and the bit-identity oracle
numba     yes        the loop kernels under ``@njit(cache=True, parallel=True)``;
                     falls back to ``numpy`` (with a warning) when numba is
                     not installed
python    no         the same loop kernels interpreted — the numba backend's
                     always-available structural twin, used by equivalence tests
========  =========  ============================================================

Every backend returns bit-identical results (not merely close, and for
sampling not merely identically distributed — randomness is always consumed
from the caller's NumPy generator in a fixed order).  Selection threads
through every layer: ``FlatAIT``/``AIT``/``AWIT``/``ShardedEngine`` accept a
``kernel_backend`` argument, process workers inherit the engine's choice via
the shared-memory publish descriptor, and the ``REPRO_KERNEL_BACKEND``
environment variable sets the process-wide default.

Examples
--------
>>> from repro.kernels import get_backend
>>> get_backend("numpy").name
'numpy'
>>> get_backend("numpy").describe() == {'name': 'numpy', 'jit': False}
True
>>> get_backend("python").name
'python'
>>> get_backend("nope")
Traceback (most recent call last):
    ...
ValueError: unknown kernel backend 'nope': expected one of 'numpy', 'numba', 'python'
"""

from __future__ import annotations

import os
import threading
import warnings
from typing import Optional, Union

from .api import KernelBackend, record_weights
from .numba_backend import (
    NUMBA_AVAILABLE,
    LoopBackend,
    make_numba_backend,
    make_python_backend,
)
from .numpy_backend import (
    NumpyBackend,
    segmented_cumsum,
    segmented_inverse_cdf,
    segmented_searchsorted,
)

__all__ = [
    "KernelBackend",
    "NumpyBackend",
    "LoopBackend",
    "KERNEL_BACKEND_NAMES",
    "KERNEL_BACKEND_ENV",
    "get_backend",
    "resolve_backend",
    "numba_available",
    "record_weights",
    "segmented_cumsum",
    "segmented_inverse_cdf",
    "segmented_searchsorted",
]

#: Registry names accepted by :func:`get_backend` / ``kernel_backend=`` knobs.
KERNEL_BACKEND_NAMES = ("numpy", "numba", "python")

#: Environment variable consulted by :func:`resolve_backend` when no explicit
#: backend is given — the process-wide default selector.
KERNEL_BACKEND_ENV = "REPRO_KERNEL_BACKEND"

_lock = threading.Lock()
_instances: dict[str, KernelBackend] = {}
_warned_numba_missing = False


def numba_available() -> bool:
    """True when the numba JIT compiler is importable in this process."""
    return NUMBA_AVAILABLE


def get_backend(name: str) -> KernelBackend:
    """Return the singleton backend registered under ``name``.

    Backends are stateless, so one shared instance per name serves every
    snapshot and thread.  Requesting ``"numba"`` on a machine without numba
    installed warns once (``RuntimeWarning``) and returns the numpy backend —
    the returned instance's ``name`` stays truthful (``"numpy"``), so stats
    and bench reports never claim an acceleration that is not running.
    """
    global _warned_numba_missing
    if name not in KERNEL_BACKEND_NAMES:
        raise ValueError(
            f"unknown kernel backend {name!r}: "
            "expected one of 'numpy', 'numba', 'python'"
        )
    with _lock:
        backend = _instances.get(name)
        if backend is None:
            if name == "numpy":
                backend = NumpyBackend()
            elif name == "python":
                backend = make_python_backend()
            else:
                backend = make_numba_backend()
                if backend is None:
                    # Fall back to numpy; resolve the singleton inline (the
                    # lock is not re-entrant) and do NOT cache it under
                    # "numba", so a later in-process numba install could
                    # still win (and the warning stays once-per-process).
                    if not _warned_numba_missing:
                        _warned_numba_missing = True
                        warnings.warn(
                            "kernel backend 'numba' requested but numba is not "
                            "installed; falling back to the numpy backend "
                            "(pip install repro[accel] to enable JIT kernels)",
                            RuntimeWarning,
                            stacklevel=2,
                        )
                    backend = _instances.get("numpy")
                    if backend is None:
                        backend = _instances["numpy"] = NumpyBackend()
                    return backend
            _instances[name] = backend
        return backend


def resolve_backend(
    backend: Optional[Union[str, KernelBackend]] = None,
) -> KernelBackend:
    """Resolve a ``kernel_backend=`` argument to a backend instance.

    ``None`` consults the ``REPRO_KERNEL_BACKEND`` environment variable and
    defaults to ``"numpy"``; a string goes through :func:`get_backend`; a
    :class:`KernelBackend` instance passes through unchanged (the hook for
    out-of-tree implementations).
    """
    if backend is None:
        backend = os.environ.get(KERNEL_BACKEND_ENV) or "numpy"
    if isinstance(backend, KernelBackend):
        return backend
    if isinstance(backend, str):
        return get_backend(backend)
    raise TypeError(
        "kernel_backend must be None, a backend name, or a KernelBackend "
        f"instance, got {type(backend).__name__}"
    )
