"""Loop kernels: one source, two backends ("python" plain, "numba" JIT).

The kernels below are scalar loops over the snapshot arrays — the shape a JIT
compiler wants, as opposed to the vectorised whole-batch array programs of
:mod:`.numpy_backend`.  Each is written once as a plain function; when Numba
is importable the same functions are additionally compiled with
``@njit(cache=True, parallel=True)`` (every ``prange`` iterates independent
queries/segments, so parallelisation is safe).  ``numba.prange`` degrades to
``range`` outside of jitted code, so the plain variants run the identical
source.

Bit identity with the NumPy backend holds by construction:

* binary-search insertion points are unique integers, so the per-segment
  bisects here equal the rank-key double-``searchsorted`` route (see
  ``FlatAIT._build_rank_keys``) wherever both are defined;
* the segmented cumsum accumulates left to right — the first element is a
  direct assignment (not ``0.0 + v``, which would flip a ``-0.0``) and each
  later element adds once, exactly ``np.cumsum``'s rounding order;
* ``weighted_pick`` forms thresholds as ``before + u * total``; default
  ``njit`` applies no fast-math, so there is no FMA contraction or
  reassociation to perturb the value;
* :func:`~.api.record_weights` and the traversal record order are shared /
  mirrored from the scalar ``FlatAIT.collect_ranges`` walk, whose per-query
  output order is what the NumPy backend's stable sort reconstructs.

When Numba is *not* installed this module still imports cleanly and only the
plain variants exist; the registry then falls back from "numba" to the NumPy
backend with a warning (see :func:`repro.kernels.get_backend`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from .api import KernelBackend, record_weights

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.flat import FlatAIT

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit, prange

    NUMBA_AVAILABLE = True
except Exception:  # pragma: no cover - the only path in numba-free envs
    NUMBA_AVAILABLE = False

    def njit(*args, **kwargs):  # noqa: ANN001 - identity decorator stand-in
        if args and callable(args[0]) and not kwargs:
            return args[0]

        def wrap(fn):
            return fn

        return wrap

    prange = range

__all__ = ["LoopBackend", "make_python_backend", "make_numba_backend", "NUMBA_AVAILABLE"]

_ID = np.int64
_F8 = np.float64


# ------------------------------------------------------------------ #
# scalar helpers (rebound to their njit'd selves when numba is present)
# ------------------------------------------------------------------ #
def _bisect_left(a, x, lo, hi):
    while lo < hi:
        mid = (lo + hi) >> 1
        if a[mid] < x:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _bisect_right(a, x, lo, hi):
    while lo < hi:
        mid = (lo + hi) >> 1
        if a[mid] <= x:
            lo = mid + 1
        else:
            hi = mid
    return lo


# ------------------------------------------------------------------ #
# kernels (single source; compiled copies built below when available)
# ------------------------------------------------------------------ #
def _endpoint_ranks_loop(sorted_lefts, sorted_rights, ql, qr, not_right, left_of):
    n = sorted_lefts.shape[0]
    for i in prange(ql.shape[0]):
        not_right[i] = _bisect_right(sorted_lefts, qr[i], 0, n)
        left_of[i] = _bisect_left(sorted_rights, ql[i], 0, n)


def _rank_search_loop(key_pool, sorted_values, rank_m, nodes, needles, use_right, out):
    n = sorted_values.shape[0]
    total = key_pool.shape[0]
    for i in prange(nodes.shape[0]):
        if use_right:
            rank = _bisect_right(sorted_values, needles[i], 0, n)
        else:
            rank = _bisect_left(sorted_values, needles[i], 0, n)
        out[i] = _bisect_left(key_pool, nodes[i] * rank_m + rank, 0, total)


def _segmented_cumsum_loop(values, starts, lengths, out):
    for s in prange(starts.shape[0]):
        length = lengths[s]
        if length <= 0:
            continue
        start = starts[s]
        acc = values[start]
        out[start] = acc
        for j in range(start + 1, start + length):
            acc = acc + values[j]
            out[j] = acc


def _weighted_pick_loop(prefix, lo, hi, uniforms, floor, out):
    for i in prange(lo.shape[0]):
        low = lo[i]
        high = hi[i]
        if low > floor[i]:
            before = prefix[low - 1]
        else:
            before = 0.0
        total = prefix[high] - before
        threshold = before + uniforms[i] * total
        pos = _bisect_left(prefix, threshold, low, high + 1)
        if pos > high:
            pos = high
        out[i] = pos


def _descend_count_loop(
    centers,
    left_child,
    right_child,
    stab_off,
    stab_len,
    sub_off,
    sub_len,
    stab_lefts,
    stab_rights,
    sub_lefts,
    sub_rights,
    ql,
    qr,
    counts,
):
    for q in prange(ql.shape[0]):
        left = ql[q]
        right = qr[q]
        node = 0
        count = 0
        while node >= 0:
            center = centers[node]
            off = stab_off[node]
            length = stab_len[node]
            if right < center:
                hi = _bisect_right(stab_lefts, right, off, off + length) - 1
                if hi >= off:
                    count += 1
                node = left_child[node]
            elif center < left:
                lo = _bisect_left(stab_rights, left, off, off + length)
                if lo < off + length:
                    count += 1
                node = right_child[node]
            else:
                if length > 0:
                    count += 1
                child = left_child[node]
                if child >= 0:
                    soff = sub_off[child]
                    send = soff + sub_len[child]
                    lo = _bisect_left(sub_rights, left, soff, send)
                    if lo < send:
                        count += 1
                child = right_child[node]
                if child >= 0:
                    soff = sub_off[child]
                    send = soff + sub_len[child]
                    hi = _bisect_right(sub_lefts, right, soff, send) - 1
                    if hi >= soff:
                        count += 1
                node = -1
        counts[q] = count


def _descend_fill_loop(
    centers,
    left_child,
    right_child,
    stab_off,
    stab_len,
    sub_off,
    sub_len,
    stab_lefts,
    stab_rights,
    sub_lefts,
    sub_rights,
    kb0,
    kb1,
    kb2,
    kb3,
    ql,
    qr,
    offsets,
    query_out,
    glo,
    ghi,
    gbase,
):
    for q in prange(ql.shape[0]):
        left = ql[q]
        right = qr[q]
        node = 0
        pos = offsets[q]
        while node >= 0:
            center = centers[node]
            off = stab_off[node]
            length = stab_len[node]
            if right < center:
                hi = _bisect_right(stab_lefts, right, off, off + length) - 1
                if hi >= off:
                    query_out[pos] = q
                    glo[pos] = kb0 + off
                    ghi[pos] = kb0 + hi
                    gbase[pos] = kb0 + off
                    pos += 1
                node = left_child[node]
            elif center < left:
                lo = _bisect_left(stab_rights, left, off, off + length)
                if lo < off + length:
                    query_out[pos] = q
                    glo[pos] = kb1 + lo
                    ghi[pos] = kb1 + off + length - 1
                    gbase[pos] = kb1 + off
                    pos += 1
                node = right_child[node]
            else:
                if length > 0:
                    query_out[pos] = q
                    glo[pos] = kb0 + off
                    ghi[pos] = kb0 + off + length - 1
                    gbase[pos] = kb0 + off
                    pos += 1
                child = left_child[node]
                if child >= 0:
                    soff = sub_off[child]
                    send = soff + sub_len[child]
                    lo = _bisect_left(sub_rights, left, soff, send)
                    if lo < send:
                        query_out[pos] = q
                        glo[pos] = kb2 + lo
                        ghi[pos] = kb2 + send - 1
                        gbase[pos] = kb2 + soff
                        pos += 1
                child = right_child[node]
                if child >= 0:
                    soff = sub_off[child]
                    send = soff + sub_len[child]
                    hi = _bisect_right(sub_lefts, right, soff, send) - 1
                    if hi >= soff:
                        query_out[pos] = q
                        glo[pos] = kb3 + soff
                        ghi[pos] = kb3 + hi
                        gbase[pos] = kb3 + soff
                        pos += 1
                node = -1


_KERNEL_SOURCES = {
    "endpoint_ranks": _endpoint_ranks_loop,
    "rank_search": _rank_search_loop,
    "segmented_cumsum": _segmented_cumsum_loop,
    "weighted_pick": _weighted_pick_loop,
    "descend_count": _descend_count_loop,
    "descend_fill": _descend_fill_loop,
}

#: Plain-Python kernel set — always available, powers the "python" backend.
_PLAIN = dict(_KERNEL_SOURCES)

if NUMBA_AVAILABLE:  # pragma: no cover - exercised only where numba is installed
    _bisect_left = njit(cache=True)(_bisect_left)
    _bisect_right = njit(cache=True)(_bisect_right)
    #: Compiled kernel set — powers the "numba" backend.  Compilation is
    #: lazy (first call per signature); ``cache=True`` persists the machine
    #: code on disk so workers and repeat runs skip recompilation.
    _JIT = {
        name: njit(cache=True, parallel=True)(fn) for name, fn in _KERNEL_SOURCES.items()
    }
else:
    _JIT = None


class LoopBackend(KernelBackend):
    """Kernel backend running the scalar loop kernels (plain or compiled).

    The instance only routes: empty-batch guards, output allocation and the
    record-offset bookkeeping live here in NumPy; everything per-element goes
    through the kernel table handed to the constructor.
    """

    def __init__(self, name: str, kernels: dict, jit: bool) -> None:
        self.name = name
        self.jit = bool(jit)
        self._kernels = kernels

    def endpoint_ranks(
        self,
        sorted_lefts: np.ndarray,
        sorted_rights: np.ndarray,
        ql: np.ndarray,
        qr: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        n = ql.shape[0]
        not_right = np.empty(n, dtype=_ID)
        left_of = np.empty(n, dtype=_ID)
        if n:
            self._kernels["endpoint_ranks"](
                sorted_lefts, sorted_rights, ql, qr, not_right, left_of
            )
        return not_right, left_of

    def rank_search(
        self,
        key_pool: np.ndarray,
        sorted_values: np.ndarray,
        rank_m: int,
        nodes: np.ndarray,
        needles: np.ndarray,
        side: str,
    ) -> np.ndarray:
        nodes = np.asarray(nodes, dtype=_ID)
        out = np.empty(nodes.shape[0], dtype=_ID)
        if nodes.shape[0]:
            self._kernels["rank_search"](
                key_pool, sorted_values, rank_m, nodes, needles, side == "right", out
            )
        return out

    def segmented_cumsum(self, values: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        values = np.ascontiguousarray(values, dtype=_F8)
        lengths = np.asarray(lengths, dtype=_ID)
        out = np.empty(values.shape[0], dtype=_F8)
        if lengths.shape[0]:
            starts = np.zeros(lengths.shape[0], dtype=_ID)
            np.cumsum(lengths[:-1], out=starts[1:])
            self._kernels["segmented_cumsum"](values, starts, lengths, out)
        return out

    def weighted_pick(
        self,
        prefix: np.ndarray,
        lo: np.ndarray,
        hi: np.ndarray,
        uniforms: np.ndarray,
        base: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        lo = np.asarray(lo, dtype=_ID)
        hi = np.asarray(hi, dtype=_ID)
        floor = np.zeros_like(lo) if base is None else np.asarray(base, dtype=_ID)
        uniforms = np.asarray(uniforms, dtype=_F8)
        out = np.empty(lo.shape[0], dtype=_ID)
        if lo.shape[0]:
            self._kernels["weighted_pick"](prefix, lo, hi, uniforms, floor, out)
        return out

    def descend_many(
        self,
        flat: "FlatAIT",
        ql: np.ndarray,
        qr: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Two-pass per-query traversal: count records, then fill at offsets.

        Pass one walks every query's root-to-terminal path counting emitted
        records; a cumsum turns the counts into disjoint output offsets; pass
        two repeats the walk writing records in scalar traversal order.
        Records land grouped by query ordinal by construction — no sort.
        """
        nq = int(ql.shape[0])

        def empty_records():
            empty = np.empty(0, dtype=_ID)
            return empty, empty, empty, empty, np.empty(0, dtype=_F8)

        if nq == 0 or not flat.node_count:
            return empty_records()
        structure = (
            flat._centers,
            flat._left_child,
            flat._right_child,
            flat._stab_off,
            flat._stab_len,
            flat._sub_off,
            flat._sub_len,
            flat._stab_lefts,
            flat._stab_rights,
            flat._sub_lefts,
            flat._sub_rights,
        )
        counts = np.empty(nq, dtype=_ID)
        self._kernels["descend_count"](*structure, ql, qr, counts)
        total = int(counts.sum())
        if total == 0:
            return empty_records()
        offsets = np.zeros(nq, dtype=_ID)
        np.cumsum(counts[:-1], out=offsets[1:])
        kb = flat._kind_base
        query = np.empty(total, dtype=_ID)
        glo = np.empty(total, dtype=_ID)
        ghi = np.empty(total, dtype=_ID)
        gbase = np.empty(total, dtype=_ID)
        self._kernels["descend_fill"](
            *structure,
            int(kb[0]),
            int(kb[1]),
            int(kb[2]),
            int(kb[3]),
            ql,
            qr,
            offsets,
            query,
            glo,
            ghi,
            gbase,
        )
        weight = record_weights(
            flat._all_weight_prefix if flat._weighted else None, glo, ghi, gbase
        )
        return query, glo, ghi, gbase, weight


def make_python_backend() -> LoopBackend:
    """The "python" backend: the loop kernels run as plain Python.

    Exists as the always-available structural twin of the numba backend —
    equivalence tests exercise the exact loop logic the JIT compiles even on
    machines without numba (slowly: it is a per-element interpreter loop).
    """
    return LoopBackend("python", _PLAIN, jit=False)


def make_numba_backend() -> Optional[LoopBackend]:
    """The "numba" backend, or ``None`` when numba is not importable."""
    if not NUMBA_AVAILABLE:
        return None
    return LoopBackend("numba", _JIT, jit=True)
