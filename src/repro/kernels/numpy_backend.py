"""The NumPy kernel backend — the default implementation and bit-identity oracle.

Every function here is the *canonical* implementation of its kernel: the
level-synchronous batch traversal, the two-searchsorted counting ranks, the
bucketed segmented cumsum and the segmented binary-search sampling primitives
were extracted verbatim from ``repro.core.flat`` / ``repro.sampling.cumulative``
(where thin aliases remain for their old callers).  Accelerated backends are
tested against this module bit for bit — see
``tests/test_kernels.py`` and ``scripts/bench_kernels.py``.

The module depends on NumPy only, so the kernel tier sits below every other
``repro`` subpackage in the import graph.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from .api import KernelBackend, record_weights

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.flat import FlatAIT

__all__ = [
    "NumpyBackend",
    "segmented_cumsum",
    "segmented_searchsorted",
    "segmented_inverse_cdf",
]

_ID = np.int64
_F8 = np.float64


def segmented_cumsum(values: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Inclusive prefix sums per segment, bit-identical to per-segment ``np.cumsum``.

    A global cumsum with per-segment offset subtraction would accumulate in a
    different floating-point order than the per-node ``np.cumsum`` the tree
    build uses, so the results would only be *close*, not equal.  Instead,
    segments are bucketed by length and every bucket runs one 2-D
    ``np.cumsum(axis=1)`` — row-sequential accumulation, i.e. exactly the
    rounding order of a 1-D cumsum over each segment — so the output matches
    a Python loop of per-segment cumsums bit for bit, at a cost of one
    vectorised pass per *distinct* segment length.
    """
    out = np.empty(values.shape[0], dtype=_F8)
    lengths = lengths[lengths > 0]
    if lengths.shape[0] == 0:
        return out
    starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    for length in np.unique(lengths):
        rows = np.flatnonzero(lengths == length)
        idx = starts[rows][:, None] + np.arange(int(length), dtype=_ID)[None, :]
        out[idx] = np.cumsum(values[idx], axis=1)
    return out


def segmented_searchsorted(
    pool: np.ndarray, lo: np.ndarray, hi: np.ndarray, needles: np.ndarray, side: str = "left"
) -> np.ndarray:
    """Vectorised ``searchsorted`` over many independent sorted segments.

    ``pool`` is one flat array that concatenates many individually sorted
    runs; for each needle ``i`` the run is ``pool[lo[i]:hi[i]]`` (half-open,
    global indices).  Returns the global insertion index of ``needles[i]``
    inside its run, with standard left/right semantics.  The whole batch is
    resolved in ``O(log(max run length))`` vectorised rounds, which is what
    lets the flat batch-query engine replace one Python-level
    ``np.searchsorted`` call per (query, node) pair with a handful of
    array operations per tree level.
    """
    if side not in ("left", "right"):
        raise ValueError(f"side must be 'left' or 'right', got {side!r}")
    lo = np.asarray(lo, dtype=np.int64).copy()
    hi = np.asarray(hi, dtype=np.int64).copy()
    needles = np.asarray(needles)
    active = lo < hi
    while active.any():
        mid = (lo + hi) >> 1
        mid_vals = pool[np.where(active, mid, 0)]
        go_right = (mid_vals < needles) if side == "left" else (mid_vals <= needles)
        go_right &= active
        lo = np.where(go_right, mid + 1, lo)
        hi = np.where(active & ~go_right, mid, hi)
        active = lo < hi
    return lo


def segmented_inverse_cdf(
    prefix: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    uniforms: np.ndarray,
    base: np.ndarray | None = None,
) -> np.ndarray:
    """Batched inverse-CDF draw over slices of one flat prefix-sum array.

    For each draw ``i`` the candidate positions are ``lo[i]..hi[i]``
    (inclusive, global indices into ``prefix``); position ``k`` is chosen
    with probability proportional to ``prefix[k] - prefix[k-1]`` within the
    slice.  When ``prefix`` concatenates many independent prefix-sum runs
    (each restarting from zero), ``base[i]`` must give the start of draw
    ``i``'s run so the "weight before ``lo``" term is taken from the right
    run; ``base=None`` treats the whole array as one run.  ``uniforms`` are
    i.i.d. draws in ``[0, 1)``.  This is the vectorised counterpart of
    :func:`repro.sampling.cumulative.sample_from_prefix_range`.
    """
    lo = np.asarray(lo, dtype=np.int64)
    hi = np.asarray(hi, dtype=np.int64)
    floor = np.zeros_like(lo) if base is None else np.asarray(base, dtype=np.int64)
    before = np.where(lo > floor, prefix[np.maximum(lo - 1, 0)], 0.0)
    total = prefix[hi] - before
    thresholds = before + np.asarray(uniforms, dtype=np.float64) * total
    positions = segmented_searchsorted(prefix, lo, hi + 1, thresholds, side="left")
    return np.minimum(positions, hi)


class NumpyBackend(KernelBackend):
    """Pure-NumPy kernels: vectorised, dependency-free, the equivalence oracle."""

    name = "numpy"
    jit = False

    def endpoint_ranks(
        self,
        sorted_lefts: np.ndarray,
        sorted_rights: np.ndarray,
        ql: np.ndarray,
        qr: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        not_right = np.searchsorted(sorted_lefts, qr, side="right")
        left_of = np.searchsorted(sorted_rights, ql, side="left")
        return not_right, left_of

    def rank_search(
        self,
        key_pool: np.ndarray,
        sorted_values: np.ndarray,
        rank_m: int,
        nodes: np.ndarray,
        needles: np.ndarray,
        side: str,
    ) -> np.ndarray:
        rank = np.searchsorted(sorted_values, needles, side=side)
        return np.searchsorted(key_pool, nodes * rank_m + rank, side="left")

    def segmented_cumsum(self, values: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        return segmented_cumsum(values, lengths)

    def weighted_pick(
        self,
        prefix: np.ndarray,
        lo: np.ndarray,
        hi: np.ndarray,
        uniforms: np.ndarray,
        base: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        return segmented_inverse_cdf(prefix, lo, hi, uniforms, base=base)

    def descend_many(
        self,
        flat: "FlatAIT",
        ql: np.ndarray,
        qr: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Level-synchronous batch traversal (Algorithm 1 over all queries).

        Each round advances all still-live queries one level: classify
        against the current centers (case 1 / 2 / 3), resolve every binary
        search of the round via the precomputed rank keys
        (:meth:`rank_search` — two global ``np.searchsorted`` calls per
        search site), emit the resulting records, and step to the child
        (case 3 terminates a query after emitting up to three records).  A
        final stable sort by query ordinal restores the per-query traversal
        order the interface requires.
        """
        nq = int(ql.shape[0])
        chunks: list[tuple[np.ndarray, int, np.ndarray, np.ndarray, np.ndarray]] = []

        def emit(
            queries: np.ndarray, kind: int, lo: np.ndarray, hi: np.ndarray, seg: np.ndarray
        ) -> None:
            if queries.shape[0]:
                chunks.append((queries, kind, lo, hi, seg))

        rank_m = getattr(flat, "_rank_m", 1)
        if nq and flat.node_count:
            qidx = np.arange(nq, dtype=_ID)
            node = np.zeros(nq, dtype=_ID)
            live_l, live_r = ql, qr
            while qidx.shape[0]:
                center = flat._centers[node]
                c1 = live_r < center
                c2 = center < live_l
                c3 = ~(c1 | c2)

                if c1.any():
                    n1 = node[c1]
                    off = flat._stab_off[n1]
                    ins = self.rank_search(
                        flat._stab_lefts_key, flat._sorted_lefts, rank_m, n1, live_r[c1], "right"
                    )
                    hi = ins - 1
                    ok = hi >= off
                    emit(qidx[c1][ok], 0, off[ok], hi[ok], off[ok])

                if c2.any():
                    n2 = node[c2]
                    off = flat._stab_off[n2]
                    end = off + flat._stab_len[n2]
                    ins = self.rank_search(
                        flat._stab_rights_key, flat._sorted_rights, rank_m, n2, live_l[c2], "left"
                    )
                    ok = ins < end
                    emit(qidx[c2][ok], 1, ins[ok], end[ok] - 1, off[ok])

                if c3.any():
                    n3 = node[c3]
                    q3 = qidx[c3]
                    # All stab intervals of the straddled node overlap q.
                    off = flat._stab_off[n3]
                    ln = flat._stab_len[n3]
                    ok = ln > 0
                    emit(q3[ok], 0, off[ok], (off + ln)[ok] - 1, off[ok])
                    # Left child: subtree list by right endpoint vs q.l.
                    lc = flat._left_child[n3]
                    has = lc >= 0
                    if has.any():
                        child = lc[has]
                        off = flat._sub_off[child]
                        end = off + flat._sub_len[child]
                        ins = self.rank_search(
                            flat._sub_rights_key,
                            flat._sorted_rights,
                            rank_m,
                            child,
                            live_l[c3][has],
                            "left",
                        )
                        ok = ins < end
                        emit(q3[has][ok], 2, ins[ok], end[ok] - 1, off[ok])
                    # Right child: subtree list by left endpoint vs q.r.
                    rc = flat._right_child[n3]
                    has = rc >= 0
                    if has.any():
                        child = rc[has]
                        off = flat._sub_off[child]
                        ins = self.rank_search(
                            flat._sub_lefts_key,
                            flat._sorted_lefts,
                            rank_m,
                            child,
                            live_r[c3][has],
                            "right",
                        )
                        hi = ins - 1
                        ok = hi >= off
                        emit(q3[has][ok], 3, off[ok], hi[ok], off[ok])

                nxt = np.where(c1, flat._left_child[node], flat._right_child[node])
                nxt = np.where(c3, -1, nxt)
                alive = nxt >= 0
                qidx = qidx[alive]
                node = nxt[alive]
                live_l = live_l[alive]
                live_r = live_r[alive]

        if not chunks:
            empty = np.empty(0, dtype=_ID)
            return empty, empty, empty, empty, np.empty(0, dtype=_F8)

        query = np.concatenate([c[0] for c in chunks])
        kind = np.concatenate([np.full(c[0].shape[0], c[1], dtype=_ID) for c in chunks])
        lo = np.concatenate([c[2] for c in chunks])
        hi = np.concatenate([c[3] for c in chunks])
        seg_off = np.concatenate([c[4] for c in chunks])

        base = flat._kind_base[kind]
        glo = base + lo
        ghi = base + hi
        gbase = base + seg_off
        # Group records by query (stable, so traversal order is preserved
        # within each query — the record-order contract of the interface).
        order = np.argsort(query, kind="stable")
        query = query[order]
        glo = glo[order]
        ghi = ghi[order]
        gbase = gbase[order]
        weight = record_weights(
            flat._all_weight_prefix if flat._weighted else None, glo, ghi, gbase
        )
        return query, glo, ghi, gbase, weight
