"""Walker's alias method for O(1) weighted sampling.

Given ``n`` weights, building the alias table costs O(n) time and O(n) space;
each subsequent draw costs O(1).  This is the method used by Algorithm 1 in
the paper to pick a node record proportionally to the number of intervals it
covers, and by the AWIT algorithm to pick a node record proportionally to its
total weight.

The implementation follows the standard Vose formulation: every cell holds a
*primary* index, a *cutoff* probability and an *alias* index; a draw picks a
cell uniformly and then chooses between primary and alias using the cutoff.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..core.errors import InvalidWeightError
from .rng import RandomState, resolve_rng

__all__ = ["AliasTable", "build_alias", "alias_sample"]


class AliasTable:
    """Pre-processed alias structure over ``n`` non-negative weights.

    Parameters
    ----------
    weights:
        Non-negative weights; at least one must be positive.

    Examples
    --------
    >>> table = AliasTable([1.0, 3.0])
    >>> table.sample(resolve_rng(0)) in (0, 1)
    True
    """

    __slots__ = ("_prob", "_alias", "_total", "_n")

    def __init__(self, weights: Iterable[float] | np.ndarray) -> None:
        w = np.asarray(list(weights) if not isinstance(weights, np.ndarray) else weights, dtype=np.float64)
        if w.ndim != 1 or w.shape[0] == 0:
            raise InvalidWeightError("alias table requires a non-empty 1-D weight vector")
        if not np.all(np.isfinite(w)) or np.any(w < 0):
            raise InvalidWeightError("alias table weights must be finite and non-negative")
        total = float(w.sum())
        if total <= 0:
            raise InvalidWeightError("alias table requires at least one positive weight")

        n = w.shape[0]
        # Scaled weights: mean 1.0, so cells with scaled weight < 1 are "small".
        scaled = w * (n / total)
        prob = np.ones(n, dtype=np.float64)
        alias = np.arange(n, dtype=np.int64)

        small: list[int] = []
        large: list[int] = []
        for i, value in enumerate(scaled):
            (small if value < 1.0 else large).append(i)

        scaled = scaled.copy()
        while small and large:
            s = small.pop()
            g = large.pop()
            prob[s] = scaled[s]
            alias[s] = g
            # Give the leftover capacity of cell s to the large item g.
            scaled[g] = (scaled[g] + scaled[s]) - 1.0
            (small if scaled[g] < 1.0 else large).append(g)

        # Numerical leftovers: whatever remains gets probability 1 of itself.
        for i in small + large:
            prob[i] = 1.0
            alias[i] = i

        self._prob = prob
        self._alias = alias
        self._total = total
        self._n = n

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._n

    @property
    def total_weight(self) -> float:
        """Sum of the weights the table was built from."""
        return self._total

    def sample(self, rng: np.random.Generator) -> int:
        """Draw one index with probability proportional to its weight (O(1))."""
        cell = int(rng.integers(0, self._n))
        if rng.random() < self._prob[cell]:
            return cell
        return int(self._alias[cell])

    def sample_many(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` independent indices (vectorised)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        cells = rng.integers(0, self._n, size=count)
        coins = rng.random(count)
        take_alias = coins >= self._prob[cells]
        out = cells.copy()
        out[take_alias] = self._alias[cells[take_alias]]
        return out

    def probabilities(self) -> np.ndarray:
        """Exact per-index sampling probabilities implied by the table.

        Useful for tests: reconstructs the probability mass from the cells and
        must match ``weights / weights.sum()`` up to floating-point error.
        """
        mass = np.zeros(self._n, dtype=np.float64)
        cell_mass = 1.0 / self._n
        for cell in range(self._n):
            mass[cell] += cell_mass * self._prob[cell]
            mass[self._alias[cell]] += cell_mass * (1.0 - self._prob[cell])
        return mass


def build_alias(weights: Sequence[float] | np.ndarray) -> AliasTable:
    """Convenience wrapper mirroring the paper's BUILD-ALIAS primitive."""
    return AliasTable(weights)


def alias_sample(
    weights: Sequence[float] | np.ndarray, count: int, random_state: RandomState = None
) -> np.ndarray:
    """One-shot helper: build an alias table and draw ``count`` indices."""
    rng = resolve_rng(random_state)
    return AliasTable(weights).sample_many(count, rng)
