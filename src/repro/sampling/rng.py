"""Random-number-generator plumbing shared by every sampling structure.

All structures in the library accept either a seed, a ``numpy.random.Generator``
or ``None`` (fresh entropy) wherever randomness is needed.  Centralising the
coercion here keeps experiments reproducible: the experiment harness passes
explicit seeds, while interactive users can ignore the argument entirely.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["RandomState", "resolve_rng", "spawn_rngs", "spawn_seeds"]

#: Anything accepted as a source of randomness by the public API.
RandomState = Union[None, int, np.random.Generator, np.random.SeedSequence]


def resolve_rng(random_state: RandomState = None) -> np.random.Generator:
    """Coerce ``random_state`` into a ``numpy.random.Generator``.

    ``None`` yields a generator seeded from OS entropy; an integer or
    ``SeedSequence`` yields a deterministic generator; an existing generator
    is returned unchanged (so callers can share one stream).
    """
    if isinstance(random_state, np.random.Generator):
        return random_state
    if random_state is None:
        return np.random.default_rng()
    if isinstance(random_state, (int, np.integer, np.random.SeedSequence)):
        return np.random.default_rng(random_state)
    raise TypeError(
        "random_state must be None, an int, a numpy SeedSequence or a numpy Generator, "
        f"got {type(random_state).__name__}"
    )


def spawn_rngs(random_state: RandomState, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from one seed.

    Used by the experiment harness to give every repetition of an experiment
    its own stream while remaining reproducible from a single seed.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if isinstance(random_state, np.random.Generator):
        return [np.random.default_rng(seed) for seed in spawn_seeds(random_state, count)]
    seq = random_state if isinstance(random_state, np.random.SeedSequence) else np.random.SeedSequence(random_state)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def spawn_seeds(rng: np.random.Generator, count: int) -> list[int]:
    """Derive ``count`` independent integer seeds from a live generator.

    The transferable form of :func:`spawn_rngs`: plain ints cross process
    boundaries for free, and ``default_rng(seed)`` on the far side yields the
    exact generator ``spawn_rngs`` would have built here — the engine's
    executors rely on that for bit-identical sampling under serial, threaded
    and process execution.  Consumes ``count`` draws from ``rng``.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    return [int(rng.integers(0, 2**63 - 1)) for _ in range(count)]
