"""Cumulative-sum (prefix-sum) weighted sampling.

Given ``n`` weighted objects, an array ``A`` with ``A[j] = w_1 + ... + w_j``
lets us sample object ``k`` with probability ``w_k / W`` by drawing a uniform
value in ``(0, W]`` and binary-searching for the first prefix sum that is not
smaller.  Building the array costs O(n); each draw costs O(log n) and requires
no additional structures — which is exactly why the paper uses it inside the
AWIT query algorithm, where the relevant prefix sums are precomputed offline
and a fresh alias table per node record would be too expensive.

This module provides both a standalone :class:`CumulativeSampler` (used by
baselines) and :func:`sample_from_prefix_range`, which samples from a
*slice* ``[lo, hi]`` of a precomputed prefix-sum array — the exact primitive
AWIT needs.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..core.errors import InvalidWeightError
from ..kernels.numpy_backend import segmented_inverse_cdf, segmented_searchsorted
from .rng import RandomState, resolve_rng

__all__ = [
    "CumulativeSampler",
    "prefix_sums",
    "sample_from_prefix_range",
    "range_weight",
    "segmented_searchsorted",
    "segmented_inverse_cdf",
]


def prefix_sums(weights: Iterable[float] | np.ndarray) -> np.ndarray:
    """Return the inclusive prefix-sum array of ``weights``.

    ``prefix_sums(w)[j] == w[0] + ... + w[j]``.  Raises
    :class:`InvalidWeightError` on negative or non-finite weights.
    """
    w = np.asarray(list(weights) if not isinstance(weights, np.ndarray) else weights, dtype=np.float64)
    if w.ndim != 1:
        raise InvalidWeightError("weights must be one-dimensional")
    if w.size and (not np.all(np.isfinite(w)) or np.any(w < 0)):
        raise InvalidWeightError("weights must be finite and non-negative")
    return np.cumsum(w)


def range_weight(prefix: np.ndarray, lo: int, hi: int) -> float:
    """Total weight of positions ``lo..hi`` (inclusive) given inclusive prefix sums."""
    if hi < lo:
        return 0.0
    before = float(prefix[lo - 1]) if lo > 0 else 0.0
    return float(prefix[hi]) - before


def sample_from_prefix_range(
    prefix: np.ndarray, lo: int, hi: int, rng: np.random.Generator
) -> int:
    """Sample a position in ``[lo, hi]`` proportionally to its weight.

    ``prefix`` is an inclusive prefix-sum array over the *whole* list; the
    draw is restricted to the slice ``lo..hi`` without materialising it, by
    shifting the random threshold by ``prefix[lo-1]``.  This is the O(log n)
    per-draw primitive used by the AWIT sampling loop (Section IV-B).
    """
    if hi < lo:
        raise InvalidWeightError(f"empty prefix range [{lo}, {hi}]")
    before = float(prefix[lo - 1]) if lo > 0 else 0.0
    total = float(prefix[hi]) - before
    if total <= 0:
        raise InvalidWeightError(f"prefix range [{lo}, {hi}] has zero total weight")
    threshold = before + rng.random() * total
    # First index k in [lo, hi] with prefix[k] >= threshold.
    k = int(np.searchsorted(prefix[lo : hi + 1], threshold, side="left")) + lo
    if k > hi:  # guard against floating point edge at the top of the range
        k = hi
    return k


# The vectorised segmented primitives (segmented_searchsorted,
# segmented_inverse_cdf) moved to the kernel tier — they are the hot loops a
# compiled backend replaces.  Re-exported above so existing imports keep
# working; the canonical implementations live in
# :mod:`repro.kernels.numpy_backend`.


class CumulativeSampler:
    """Weighted sampler backed by a prefix-sum array (O(log n) per draw).

    Used directly by the search-based baselines when they must perform
    weighted sampling over an explicitly materialised result set, and as a
    reference implementation in tests of :func:`sample_from_prefix_range`.
    """

    __slots__ = ("_prefix", "_n")

    def __init__(self, weights: Iterable[float] | np.ndarray) -> None:
        prefix = prefix_sums(weights)
        if prefix.size == 0:
            raise InvalidWeightError("cumulative sampler requires at least one weight")
        if prefix[-1] <= 0:
            raise InvalidWeightError("cumulative sampler requires at least one positive weight")
        self._prefix = prefix
        self._n = int(prefix.shape[0])

    def __len__(self) -> int:
        return self._n

    @property
    def total_weight(self) -> float:
        """Sum of the weights the sampler was built from."""
        return float(self._prefix[-1])

    def sample(self, rng: np.random.Generator) -> int:
        """Draw one index with probability proportional to its weight."""
        return sample_from_prefix_range(self._prefix, 0, self._n - 1, rng)

    def sample_many(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` independent indices (vectorised binary search)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        thresholds = rng.random(count) * self._prefix[-1]
        idx = np.searchsorted(self._prefix, thresholds, side="left")
        return np.minimum(idx, self._n - 1)


def cumulative_sample(
    weights: Iterable[float] | np.ndarray, count: int, random_state: RandomState = None
) -> np.ndarray:
    """One-shot helper: build a prefix-sum sampler and draw ``count`` indices."""
    rng = resolve_rng(random_state)
    return CumulativeSampler(weights).sample_many(count, rng)
