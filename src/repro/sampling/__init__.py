"""Weighted and uniform sampling primitives used by every index in the library."""

from .alias import AliasTable, alias_sample, build_alias
from .cumulative import (
    CumulativeSampler,
    cumulative_sample,
    prefix_sums,
    range_weight,
    sample_from_prefix_range,
    segmented_inverse_cdf,
    segmented_searchsorted,
)
from .rng import RandomState, resolve_rng, spawn_rngs, spawn_seeds
from .uniform import (
    reservoir_sample,
    sample_indices_with_replacement,
    sample_with_replacement,
    sample_without_replacement,
)

__all__ = [
    "AliasTable",
    "alias_sample",
    "build_alias",
    "CumulativeSampler",
    "cumulative_sample",
    "prefix_sums",
    "range_weight",
    "sample_from_prefix_range",
    "segmented_inverse_cdf",
    "segmented_searchsorted",
    "RandomState",
    "resolve_rng",
    "spawn_rngs",
    "spawn_seeds",
    "reservoir_sample",
    "sample_indices_with_replacement",
    "sample_with_replacement",
    "sample_without_replacement",
]
