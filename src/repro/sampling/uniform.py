"""Uniform (unweighted) sampling helpers.

The search-based baselines (interval tree, HINT^m) answer IRS queries by
materialising the full result set and then drawing simple random samples from
it; these helpers implement that final step, plus with/without-replacement
utilities used by the example applications.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

import numpy as np

from .rng import RandomState, resolve_rng

__all__ = [
    "sample_with_replacement",
    "sample_without_replacement",
    "sample_indices_with_replacement",
    "reservoir_sample",
]

T = TypeVar("T")


def sample_indices_with_replacement(
    population_size: int, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``count`` indices uniformly from ``range(population_size)`` with replacement."""
    if population_size <= 0:
        raise ValueError("population_size must be positive")
    if count < 0:
        raise ValueError("count must be non-negative")
    return rng.integers(0, population_size, size=count)


def sample_with_replacement(
    items: Sequence[T], count: int, random_state: RandomState = None
) -> list[T]:
    """Draw ``count`` items uniformly with replacement from ``items``."""
    rng = resolve_rng(random_state)
    idx = sample_indices_with_replacement(len(items), count, rng)
    return [items[int(i)] for i in idx]


def sample_without_replacement(
    items: Sequence[T], count: int, random_state: RandomState = None
) -> list[T]:
    """Draw ``min(count, len(items))`` distinct items uniformly from ``items``."""
    if count < 0:
        raise ValueError("count must be non-negative")
    rng = resolve_rng(random_state)
    k = min(count, len(items))
    if k == 0:
        return []
    idx = rng.choice(len(items), size=k, replace=False)
    return [items[int(i)] for i in idx]


def reservoir_sample(iterable, count: int, random_state: RandomState = None) -> list:
    """Reservoir sampling (Algorithm R) over a single pass of ``iterable``.

    Useful when the population is produced by a generator whose size is not
    known in advance (e.g. streaming a result set from disk).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    rng = resolve_rng(random_state)
    reservoir: list = []
    for seen, item in enumerate(iterable):
        if seen < count:
            reservoir.append(item)
        else:
            j = int(rng.integers(0, seen + 1))
            if j < count:
                reservoir[j] = item
    return reservoir
