"""One-dimensional IRS on a sorted array (Hu, Qiao and Tao, PODS 2014).

For one-dimensional *points*, IRS is easy: keep the points sorted, locate the
query range with two binary searches and draw uniform positions between the
two boundary indices — ``O(log n + s)`` time, exact uniformity.

The paper's introduction explains why this does **not** transfer to interval
data: applying the trick to interval left endpoints (or right endpoints)
misses every interval that starts before the query but still overlaps it (or
double-counts fully covered ones, depending on the reduction).  Two classes
are provided:

* :class:`SortedArrayIRS` — the correct 1-D point algorithm, used as a
  substrate and to sanity-check the sampling utilities;
* :class:`EndpointIRS` — the *incorrect* naive reduction from intervals to
  their left endpoints, kept as an executable illustration of the paper's
  argument (tests assert that it under-reports straddling intervals).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..core.base import OnEmpty, SamplingIndex
from ..core.dataset import IntervalDataset
from ..core.errors import EmptyDatasetError, EmptyResultError
from ..core.query import QueryLike, coerce_query, validate_sample_size
from ..sampling.rng import RandomState, resolve_rng

__all__ = ["SortedArrayIRS", "EndpointIRS"]


class SortedArrayIRS:
    """Exact IRS over one-dimensional points via a sorted array.

    Parameters
    ----------
    points:
        The 1-D point population.

    Examples
    --------
    >>> irs = SortedArrayIRS([1.0, 2.0, 5.0, 9.0])
    >>> irs.count((1.5, 6.0))
    2
    >>> len(irs.sample((1.5, 6.0), 3, random_state=0))
    3
    """

    def __init__(self, points: Iterable[float]) -> None:
        values = np.asarray(list(points) if not isinstance(points, np.ndarray) else points, dtype=np.float64)
        if values.ndim != 1 or values.shape[0] == 0:
            raise EmptyDatasetError("SortedArrayIRS requires a non-empty 1-D point collection")
        self._order = np.argsort(values, kind="stable")
        self._sorted = values[self._order]

    def __len__(self) -> int:
        return int(self._sorted.shape[0])

    def _bounds(self, query: QueryLike) -> tuple[int, int]:
        query_left, query_right = coerce_query(query)
        lo = int(np.searchsorted(self._sorted, query_left, side="left"))
        hi = int(np.searchsorted(self._sorted, query_right, side="right")) - 1
        return lo, hi

    def count(self, query: QueryLike) -> int:
        """Number of points inside the query range."""
        lo, hi = self._bounds(query)
        return max(0, hi - lo + 1)

    def report(self, query: QueryLike) -> np.ndarray:
        """Original indices of the points inside the query range."""
        lo, hi = self._bounds(query)
        if hi < lo:
            return np.empty(0, dtype=np.int64)
        return self._order[lo : hi + 1]

    def sample(
        self,
        query: QueryLike,
        sample_size: int,
        random_state: RandomState = None,
        on_empty: OnEmpty = "empty",
    ) -> np.ndarray:
        """Draw ``sample_size`` point indices uniformly from the query range."""
        sample_size = validate_sample_size(sample_size)
        lo, hi = self._bounds(query)
        if hi < lo:
            if on_empty == "raise":
                raise EmptyResultError("query range contains no points")
            return np.empty(0, dtype=np.int64)
        positions = resolve_rng(random_state).integers(lo, hi + 1, size=sample_size)
        return self._order[positions]


class EndpointIRS(SamplingIndex):
    """The *incorrect* reduction of interval IRS to 1-D IRS on left endpoints.

    An interval is treated as present in the query iff its left endpoint lies
    inside ``[q.l, q.r]``; intervals that start before ``q.l`` but extend into
    the query are missed.  The class exists purely to demonstrate the paper's
    point (Section I): tests and the quickstart example compare its results
    against the exhaustive oracle and show the systematic false negatives.
    """

    def __init__(self, dataset: IntervalDataset) -> None:
        super().__init__(dataset)
        self._points = SortedArrayIRS(dataset.lefts)

    def report(self, query: QueryLike) -> np.ndarray:
        """Ids whose *left endpoint* falls inside the query (misses straddlers)."""
        return self._points.report(query)

    def sample(
        self,
        query: QueryLike,
        sample_size: int,
        random_state: RandomState = None,
        on_empty: OnEmpty = "empty",
    ) -> np.ndarray:
        """Uniform draws over the (incorrect) left-endpoint population."""
        return self._points.sample(query, sample_size, random_state=random_state, on_empty=on_empty)

    def missed_intervals(self, query: QueryLike) -> np.ndarray:
        """Ids in ``q ∩ X`` that this reduction can never return (the false negatives)."""
        query_left, query_right = self._coerce(query)
        truth = self._dataset.overlap_indices(query_left, query_right)
        reported = set(self.report(query).tolist())
        return np.asarray([i for i in truth.tolist() if i not in reported], dtype=np.int64)
