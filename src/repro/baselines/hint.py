"""HINT^m — hierarchical index for intervals (Christodoulou et al., SIGMOD 2022).

HINT^m partitions a discretised domain ``[0, 2^m)`` hierarchically: level
``ℓ`` has ``2^ℓ`` equal-width partitions.  Every interval is stored in the
canonical set of partitions that exactly covers its discretised extent (the
classic segment-tree decomposition, at most two partitions per level), so a
range query only needs to visit, per level, the partitions overlapping the
query extent — every interval found there is guaranteed to overlap the query,
making the scan essentially comparison-free.

Faithfulness note: the original HINT^m avoids duplicate results with
``O_in/O_aft`` sub-lists per partition.  This reproduction instead marks, per
interval, the single copy stored in the partition containing its start point
as the *primary* copy; a query reports primaries from every relevant
partition plus replicas from the first relevant partition of each level, and
removes the (rare) duplicates with one ``np.unique`` pass.  The asymptotic
behaviour the paper relies on — ``Ω(|q ∩ X|)`` per range query — and the
qualitative comparison against the AIT are unaffected.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.base import OnEmpty, SamplingIndex
from ..core.dataset import IntervalDataset
from ..core.query import QueryLike
from ..sampling.rng import RandomState, resolve_rng
from .common import sample_from_result

__all__ = ["HINT"]


class _Partition:
    """Contents of one partition of one level."""

    __slots__ = ("primaries", "replicas")

    def __init__(self) -> None:
        self.primaries: list[int] = []
        self.replicas: list[int] = []


class HINT(SamplingIndex):
    """Hierarchical interval index (HINT^m) with search-then-sample IRS.

    Parameters
    ----------
    dataset:
        The intervals to index.
    num_levels:
        The ``m`` parameter: the bottom level has ``2^m`` partitions.
        Defaults to ``min(10, ceil(log2 n))`` which mirrors the paper's
        recommendation of choosing m relative to the dataset size.
    weighted:
        When True, sampling is weight-proportional (per-query alias table).
    """

    def __init__(
        self,
        dataset: IntervalDataset,
        num_levels: int | None = None,
        weighted: bool = False,
    ) -> None:
        super().__init__(dataset)
        self._weighted = bool(weighted)
        n = len(dataset)
        if num_levels is None:
            num_levels = max(1, min(10, int(math.ceil(math.log2(max(2, n))))))
        if num_levels < 1:
            raise ValueError("num_levels must be at least 1")
        self._m = int(num_levels)

        domain_lo, domain_hi = dataset.domain()
        self._domain_lo = domain_lo
        extent = max(domain_hi - domain_lo, 1e-12)
        self._cells = 1 << self._m
        self._scale = self._cells / extent

        # levels[ℓ] maps partition index -> _Partition; sparse dict per level.
        self._levels: list[dict[int, _Partition]] = [dict() for _ in range(self._m + 1)]
        lo_cells = self._discretise(dataset.lefts)
        hi_cells = self._discretise(dataset.rights)
        for interval_id in range(n):
            self._assign(interval_id, int(lo_cells[interval_id]), int(hi_cells[interval_id]))

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    def _discretise(self, values: np.ndarray) -> np.ndarray:
        cells = np.floor((values - self._domain_lo) * self._scale).astype(np.int64)
        return np.clip(cells, 0, self._cells - 1)

    def _assign(self, interval_id: int, lo_cell: int, hi_cell: int) -> None:
        """Store the interval in its canonical partition decomposition."""
        first = True
        a, b = lo_cell, hi_cell
        level = self._m
        while a <= b and level >= 0:
            if a == b:
                self._store(level, a, interval_id, primary=first)
                break
            if a % 2 == 1:
                self._store(level, a, interval_id, primary=first)
                first = False
                a += 1
            if b % 2 == 0:
                self._store(level, b, interval_id, primary=False)
                b -= 1
            a //= 2
            b //= 2
            level -= 1

    def _store(self, level: int, cell: int, interval_id: int, primary: bool) -> None:
        partition = self._levels[level].setdefault(cell, _Partition())
        if primary:
            partition.primaries.append(interval_id)
        else:
            partition.replicas.append(interval_id)

    # ------------------------------------------------------------------ #
    @property
    def num_levels(self) -> int:
        """The ``m`` parameter (bottom level has ``2^m`` partitions)."""
        return self._m

    @property
    def is_weighted(self) -> bool:
        """True when sampling is weight-proportional."""
        return self._weighted

    def partition_count(self) -> int:
        """Number of non-empty partitions across all levels."""
        return sum(len(level) for level in self._levels)

    def memory_bytes(self) -> int:
        """Approximate structure size in bytes (8 bytes per stored id + overhead)."""
        total = 0
        for level in self._levels:
            for partition in level.values():
                total += 8 * (len(partition.primaries) + len(partition.replicas)) + 64
        return total

    # ------------------------------------------------------------------ #
    # range search
    # ------------------------------------------------------------------ #
    def report(self, query: QueryLike) -> np.ndarray:
        """All ids overlapping the query; cost Ω(|q ∩ X|)."""
        query_left, query_right = self._coerce(query)
        lo_cell = int(self._discretise(np.asarray([query_left]))[0])
        hi_cell = int(self._discretise(np.asarray([query_right]))[0])

        collected: list[int] = []
        level_lo, level_hi = lo_cell, hi_cell
        for level in range(self._m, -1, -1):
            partitions = self._levels[level]
            if partitions:
                for cell in range(level_lo, level_hi + 1):
                    partition = partitions.get(cell)
                    if partition is None:
                        continue
                    collected.extend(partition.primaries)
                    if cell == level_lo:
                        collected.extend(partition.replicas)
            level_lo //= 2
            level_hi //= 2

        if not collected:
            return np.empty(0, dtype=np.int64)
        candidates = np.unique(np.asarray(collected, dtype=np.int64))
        # Discretisation can let a cell-sharing non-overlapping interval slip in;
        # one vectorised comparison pass removes those false positives.
        lefts = self._dataset.lefts[candidates]
        rights = self._dataset.rights[candidates]
        mask = (lefts <= query_right) & (query_left <= rights)
        return candidates[mask]

    def sample(
        self,
        query: QueryLike,
        sample_size: int,
        random_state: RandomState = None,
        on_empty: OnEmpty = "empty",
    ) -> np.ndarray:
        """Search-then-sample IRS: materialise ``q ∩ X``, then draw from it."""
        query_pair = self._coerce(query)
        sample_size = self._validate_sample_size(sample_size)
        rng = resolve_rng(random_state)
        result = self.report(query_pair)
        if result.shape[0] == 0:
            return self._handle_empty(sample_size, on_empty, query_pair)
        return sample_from_result(result, sample_size, rng, self._dataset, self._weighted)
