"""Helpers shared by the search-based baselines.

The competitors in the paper (interval tree, HINT^m) answer an IRS query by
first materialising ``q ∩ X`` and then sampling from it: simple random
sampling in the unweighted case, and an alias table built *per query* in the
weighted case.  This module implements that final sampling step so all
search-based baselines behave identically.
"""

from __future__ import annotations

import numpy as np

from ..core.dataset import IntervalDataset
from ..sampling.alias import AliasTable

__all__ = ["sample_from_result"]


def sample_from_result(
    result_ids: np.ndarray,
    sample_size: int,
    rng: np.random.Generator,
    dataset: IntervalDataset | None = None,
    weighted: bool = False,
) -> np.ndarray:
    """Draw ``sample_size`` ids from a materialised result set.

    Unweighted: simple random sampling with replacement (O(s)).
    Weighted: builds a Walker alias table over the result's weights — an
    O(|q ∩ X|) cost per query, which is exactly the overhead the paper's
    Table IX attributes to the search-based competitors.
    """
    if result_ids.shape[0] == 0 or sample_size == 0:
        return np.empty(0, dtype=np.int64)
    if not weighted:
        positions = rng.integers(0, result_ids.shape[0], size=sample_size)
        return result_ids[positions]
    if dataset is None:
        raise ValueError("weighted sampling from a result set requires the dataset")
    weights = dataset.weights[result_ids]
    table = AliasTable(weights)
    positions = table.sample_many(sample_size, rng)
    return result_ids[positions]
