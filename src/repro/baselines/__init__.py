"""Competitor structures re-implemented from the paper's evaluation section."""

from .exhaustive import ExhaustiveScan
from .hint import HINT
from .interval_tree import IntervalTree
from .kds import KDS
from .kdtree import KDTreeIndex
from .period_index import PeriodIndex
from .segment_tree import SegmentTree
from .sorted_array import EndpointIRS, SortedArrayIRS
from .timeline_index import TimelineIndex

__all__ = [
    "ExhaustiveScan",
    "HINT",
    "IntervalTree",
    "KDS",
    "KDTreeIndex",
    "PeriodIndex",
    "SegmentTree",
    "EndpointIRS",
    "SortedArrayIRS",
    "TimelineIndex",
]
