"""kd-tree over the 2-D mapping of intervals, with canonical-cover queries.

Every interval ``[l, r]`` is mapped to the point ``(l, r)``; a range query
``q = [q.l, q.r]`` becomes the orthogonal rectangle
``(-inf, q.r] x [q.l, +inf)`` (an interval overlaps ``q`` iff its point falls
inside that rectangle).  The tree splits alternately on the two coordinates
at the median, and stores the point ids in one contiguous array ordered by
leaf position so every node owns a contiguous id range — the trick that lets
the KDS sampler draw a uniform point from a fully-covered node in O(1).

A query decomposes the rectangle into ``O(sqrt n)`` *canonical* nodes (fully
inside) plus ``O(sqrt n)`` partially-overlapped leaves, which is what gives
the kd-tree its ``O(sqrt n)`` counting bound (Table X competitor) and KDS its
``O(sqrt n + s)`` expected sampling bound.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.base import IntervalIndex
from ..core.dataset import IntervalDataset
from ..core.query import QueryLike

__all__ = ["KDTreeIndex", "CanonicalCover"]


class _KDNode:
    """One node of the kd-tree; owns a contiguous range of the ordered id array."""

    __slots__ = ("lo", "hi", "xmin", "xmax", "ymin", "ymax", "left", "right")

    def __init__(self, lo: int, hi: int) -> None:
        self.lo = lo
        self.hi = hi
        self.xmin = 0.0
        self.xmax = 0.0
        self.ymin = 0.0
        self.ymax = 0.0
        self.left: Optional["_KDNode"] = None
        self.right: Optional["_KDNode"] = None

    @property
    def count(self) -> int:
        return self.hi - self.lo

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None


class CanonicalCover:
    """Result of decomposing a query rectangle over the kd-tree.

    ``full_nodes`` are nodes entirely inside the rectangle (every point they
    own matches); ``partial_ids`` are the ids from partially-overlapped leaves
    that individually passed the rectangle test.
    """

    __slots__ = ("full_nodes", "partial_ids")

    def __init__(self, full_nodes: list[_KDNode], partial_ids: np.ndarray) -> None:
        self.full_nodes = full_nodes
        self.partial_ids = partial_ids

    def total_count(self) -> int:
        """Number of matching points described by this cover."""
        return sum(node.count for node in self.full_nodes) + int(self.partial_ids.shape[0])


class KDTreeIndex(IntervalIndex):
    """kd-tree on the (left, right) point mapping of intervals.

    Parameters
    ----------
    dataset:
        The intervals to index.
    leaf_size:
        Maximum number of points per leaf (default 32).
    """

    def __init__(self, dataset: IntervalDataset, leaf_size: int = 32) -> None:
        super().__init__(dataset)
        if leaf_size < 1:
            raise ValueError("leaf_size must be at least 1")
        self._leaf_size = int(leaf_size)
        self._xs = dataset.lefts
        self._ys = dataset.rights
        self._ordered_ids = np.arange(len(dataset), dtype=np.int64)
        self._weight_prefix: Optional[np.ndarray] = None
        self._root = self._build(0, len(dataset), axis=0)
        # Prefix sums over the ordered ids let weighted KDS draw from a full
        # node in O(log n); built lazily only when the dataset is weighted.
        if dataset.is_weighted:
            self._weight_prefix = np.cumsum(dataset.weights[self._ordered_ids])

    # ------------------------------------------------------------------ #
    def _build(self, lo: int, hi: int, axis: int) -> _KDNode:
        node = _KDNode(lo, hi)
        ids = self._ordered_ids[lo:hi]
        xs = self._xs[ids]
        ys = self._ys[ids]
        node.xmin, node.xmax = float(xs.min()), float(xs.max())
        node.ymin, node.ymax = float(ys.min()), float(ys.max())
        if hi - lo <= self._leaf_size:
            return node
        values = xs if axis == 0 else ys
        order = np.argsort(values, kind="stable")
        self._ordered_ids[lo:hi] = ids[order]
        mid = lo + (hi - lo) // 2
        node.left = self._build(lo, mid, 1 - axis)
        node.right = self._build(mid, hi, 1 - axis)
        return node

    # ------------------------------------------------------------------ #
    @property
    def ordered_ids(self) -> np.ndarray:
        """Interval ids ordered by kd-tree leaf position."""
        return self._ordered_ids

    @property
    def weight_prefix(self) -> Optional[np.ndarray]:
        """Inclusive weight prefix sums aligned with :attr:`ordered_ids` (weighted only)."""
        return self._weight_prefix

    @property
    def root(self) -> _KDNode:
        """Root node of the kd-tree."""
        return self._root

    def memory_bytes(self) -> int:
        """Approximate structure size in bytes."""
        node_count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            node_count += 1
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)
        total = node_count * 96 + int(self._ordered_ids.nbytes)
        if self._weight_prefix is not None:
            total += int(self._weight_prefix.nbytes)
        return total

    # ------------------------------------------------------------------ #
    # canonical decomposition of the query rectangle
    # ------------------------------------------------------------------ #
    def canonical_cover(self, query: QueryLike) -> CanonicalCover:
        """Decompose the query rectangle into full nodes plus filtered leaf ids."""
        query_left, query_right = self._coerce(query)
        # Rectangle: x = left endpoint <= q.r ;  y = right endpoint >= q.l.
        full_nodes: list[_KDNode] = []
        partial_chunks: list[np.ndarray] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.xmin > query_right or node.ymax < query_left:
                continue  # disjoint
            if node.xmax <= query_right and node.ymin >= query_left:
                if node.count:
                    full_nodes.append(node)
                continue
            if node.is_leaf:
                ids = self._ordered_ids[node.lo : node.hi]
                mask = (self._xs[ids] <= query_right) & (self._ys[ids] >= query_left)
                if mask.any():
                    partial_chunks.append(ids[mask])
                continue
            stack.append(node.left)
            stack.append(node.right)
        partial_ids = (
            np.concatenate(partial_chunks) if partial_chunks else np.empty(0, dtype=np.int64)
        )
        return CanonicalCover(full_nodes, partial_ids)

    # ------------------------------------------------------------------ #
    # reporting / counting
    # ------------------------------------------------------------------ #
    def count(self, query: QueryLike) -> int:
        """``|q ∩ X|`` via the canonical cover — O(sqrt n) node visits."""
        return self.canonical_cover(query).total_count()

    def report(self, query: QueryLike) -> np.ndarray:
        """All ids overlapping the query (concatenates the canonical cover)."""
        cover = self.canonical_cover(query)
        chunks = [self._ordered_ids[node.lo : node.hi] for node in cover.full_nodes]
        if cover.partial_ids.shape[0]:
            chunks.append(cover.partial_ids)
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(chunks)
