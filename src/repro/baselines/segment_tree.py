"""Segment tree over interval data (related-work substrate, Section VI).

The segment tree partitions the domain into *elementary intervals* defined by
the sorted distinct endpoints and stores every interval in the O(log n)
canonical nodes whose ranges it fully covers.  It supports stabbing queries in
``O(log n + K)`` and needs ``O(n log n)`` space, but — like the plain
interval tree — it does not support efficient range reporting (the paper
mentions it among the structures that motivate the AIT).  It is included both
for completeness of the substrate inventory and as an additional oracle for
stabbing-query tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.base import IntervalIndex
from ..core.dataset import IntervalDataset
from ..core.query import QueryLike

__all__ = ["SegmentTree"]


class _SegmentNode:
    """Canonical node covering the elementary-interval range [lo, hi] (inclusive)."""

    __slots__ = ("lo", "hi", "interval_ids", "left", "right")

    def __init__(self, lo: int, hi: int) -> None:
        self.lo = lo
        self.hi = hi
        self.interval_ids: list[int] = []
        self.left: Optional["_SegmentNode"] = None
        self.right: Optional["_SegmentNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None


class SegmentTree(IntervalIndex):
    """Classic segment tree supporting O(log n + K) stabbing queries.

    Range reporting is provided for API completeness but costs up to O(n)
    (it scans the stabbing structure over the query extent), which is exactly
    the limitation the paper points out for this family of structures.
    """

    def __init__(self, dataset: IntervalDataset) -> None:
        super().__init__(dataset)
        endpoints = np.unique(np.concatenate((dataset.lefts, dataset.rights)))
        self._boundaries = endpoints
        leaf_count = endpoints.shape[0]
        self._root = self._build(0, leaf_count - 1)
        for interval_id in range(len(dataset)):
            lo = int(np.searchsorted(endpoints, dataset.lefts[interval_id], side="left"))
            hi = int(np.searchsorted(endpoints, dataset.rights[interval_id], side="left"))
            self._insert(self._root, lo, hi, interval_id)

    # ------------------------------------------------------------------ #
    def _build(self, lo: int, hi: int) -> _SegmentNode:
        node = _SegmentNode(lo, hi)
        if lo < hi:
            mid = (lo + hi) // 2
            node.left = self._build(lo, mid)
            node.right = self._build(mid + 1, hi)
        return node

    def _insert(self, node: _SegmentNode, lo: int, hi: int, interval_id: int) -> None:
        if lo <= node.lo and node.hi <= hi:
            node.interval_ids.append(interval_id)
            return
        if node.left is not None and lo <= node.left.hi:
            self._insert(node.left, lo, hi, interval_id)
        if node.right is not None and hi >= node.right.lo:
            self._insert(node.right, lo, hi, interval_id)

    # ------------------------------------------------------------------ #
    def stab(self, point: float) -> np.ndarray:
        """Ids of intervals containing ``point`` in O(log n + K)."""
        point = float(point)
        boundaries = self._boundaries
        if point < boundaries[0] or point > boundaries[-1]:
            return np.empty(0, dtype=np.int64)
        slot = int(np.searchsorted(boundaries, point, side="right")) - 1
        collected: list[int] = []
        node = self._root
        while node is not None:
            collected.extend(node.interval_ids)
            if node.is_leaf:
                break
            node = node.left if slot <= node.left.hi else node.right
        if not collected:
            return np.empty(0, dtype=np.int64)
        ids = np.unique(np.asarray(collected, dtype=np.int64))
        mask = (self._dataset.lefts[ids] <= point) & (point <= self._dataset.rights[ids])
        return ids[mask]

    def report(self, query: QueryLike) -> np.ndarray:
        """Range reporting by brute-force predicate over the dataset (O(n)).

        The segment tree has no efficient range-reporting path; this method
        exists so the class satisfies the :class:`IntervalIndex` interface and
        can participate in cross-structure consistency tests.
        """
        query_left, query_right = self._coerce(query)
        return self._dataset.overlap_indices(query_left, query_right)

    def memory_bytes(self) -> int:
        """Approximate structure size in bytes."""
        total = int(self._boundaries.nbytes)
        stack = [self._root]
        while stack:
            node = stack.pop()
            total += 48 + 8 * len(node.interval_ids)
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)
        return total
