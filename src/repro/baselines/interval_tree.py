"""Edelsbrunner's interval tree (Section II-B) — the "Interval tree" competitor.

The classic interval tree stores, per node, the intervals that contain the
node's central point, sorted by left and by right endpoint, and delegates the
remaining intervals to the left/right subtrees.  It supports stabbing queries
in ``O(log n + K)`` but *range* queries degrade to ``O(n)`` because both
subtrees must be visited whenever the query straddles a node's center
(Remark 1 in the paper).  As a competitor for IRS it materialises ``q ∩ X``
and samples from it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.base import OnEmpty, SamplingIndex
from ..core.dataset import IntervalDataset
from ..core.query import QueryLike
from ..sampling.rng import RandomState, resolve_rng
from .common import sample_from_result

__all__ = ["IntervalTree"]


class _IntervalTreeNode:
    """One node of the classic interval tree."""

    __slots__ = ("center", "ids_by_left", "lefts", "ids_by_right", "rights", "left", "right")

    def __init__(self, center: float) -> None:
        self.center = center
        self.ids_by_left = np.empty(0, dtype=np.int64)
        self.lefts = np.empty(0, dtype=np.float64)
        self.ids_by_right = np.empty(0, dtype=np.int64)
        self.rights = np.empty(0, dtype=np.float64)
        self.left: Optional["_IntervalTreeNode"] = None
        self.right: Optional["_IntervalTreeNode"] = None

    def nbytes(self) -> int:
        return int(
            self.ids_by_left.nbytes
            + self.lefts.nbytes
            + self.ids_by_right.nbytes
            + self.rights.nbytes
        ) + 64


class IntervalTree(SamplingIndex):
    """Classic (non-augmented) interval tree; IRS via search-then-sample.

    Parameters
    ----------
    dataset:
        The intervals to index.
    weighted:
        When True, sampling is weight-proportional and requires building a
        per-query alias table over the materialised result set.
    """

    def __init__(self, dataset: IntervalDataset, weighted: bool = False) -> None:
        super().__init__(dataset)
        self._weighted = bool(weighted)
        ids = np.arange(len(dataset), dtype=np.int64)
        ids_by_left = ids[np.argsort(dataset.lefts, kind="stable")]
        ids_by_right = ids[np.argsort(dataset.rights, kind="stable")]
        self._root, self._height = self._build(ids_by_left, ids_by_right, 1)

    # ------------------------------------------------------------------ #
    def _build(
        self, ids_by_left: np.ndarray, ids_by_right: np.ndarray, depth: int
    ) -> tuple[_IntervalTreeNode, int]:
        lefts = self._dataset.lefts[ids_by_left]
        rights_left_order = self._dataset.rights[ids_by_left]
        rights = self._dataset.rights[ids_by_right]
        lefts_right_order = self._dataset.lefts[ids_by_right]

        center = float(np.median(np.concatenate((lefts, rights))))
        node = _IntervalTreeNode(center)

        stab_l = (lefts <= center) & (rights_left_order >= center)
        node.ids_by_left = ids_by_left[stab_l]
        node.lefts = lefts[stab_l]
        stab_r = (lefts_right_order <= center) & (rights >= center)
        node.ids_by_right = ids_by_right[stab_r]
        node.rights = rights[stab_r]

        height = depth
        left_mask_l = rights_left_order < center
        left_mask_r = rights < center
        right_mask_l = lefts > center
        right_mask_r = lefts_right_order > center
        if left_mask_l.any():
            node.left, h = self._build(ids_by_left[left_mask_l], ids_by_right[left_mask_r], depth + 1)
            height = max(height, h)
        if right_mask_l.any():
            node.right, h = self._build(
                ids_by_left[right_mask_l], ids_by_right[right_mask_r], depth + 1
            )
            height = max(height, h)
        return node, height

    # ------------------------------------------------------------------ #
    @property
    def height(self) -> int:
        """Height of the tree."""
        return self._height

    @property
    def is_weighted(self) -> bool:
        """True when sampling is weight-proportional."""
        return self._weighted

    def memory_bytes(self) -> int:
        """Approximate structure size in bytes."""
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            total += node.nbytes()
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)
        return total

    # ------------------------------------------------------------------ #
    # range search (O(n) worst case — this is the point of the comparison)
    # ------------------------------------------------------------------ #
    def report(self, query: QueryLike) -> np.ndarray:
        """All ids overlapping the query via recursive tree traversal."""
        query_left, query_right = self._coerce(query)
        chunks: list[np.ndarray] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            if query_right < node.center:
                # Only intervals with left endpoint <= q.r can overlap.
                hi = int(np.searchsorted(node.lefts, query_right, side="right"))
                if hi > 0:
                    chunks.append(node.ids_by_left[:hi])
                stack.append(node.left)
            elif node.center < query_left:
                lo = int(np.searchsorted(node.rights, query_left, side="left"))
                if lo < node.rights.shape[0]:
                    chunks.append(node.ids_by_right[lo:])
                stack.append(node.right)
            else:
                # The query straddles the center: all stab intervals overlap and
                # both subtrees must be visited — the O(n) worst case.
                if node.ids_by_left.shape[0]:
                    chunks.append(node.ids_by_left)
                stack.append(node.left)
                stack.append(node.right)
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(chunks)

    def stab(self, point: float) -> np.ndarray:
        """Stabbing query: ids of intervals containing ``point`` (O(log n + K))."""
        return self.report((point, point))

    def sample(
        self,
        query: QueryLike,
        sample_size: int,
        random_state: RandomState = None,
        on_empty: OnEmpty = "empty",
    ) -> np.ndarray:
        """Search-then-sample IRS: materialise ``q ∩ X``, then draw from it."""
        query_pair = self._coerce(query)
        sample_size = self._validate_sample_size(sample_size)
        rng = resolve_rng(random_state)
        result = self.report(query_pair)
        if result.shape[0] == 0:
            return self._handle_empty(sample_size, on_empty, query_pair)
        return sample_from_result(result, sample_size, rng, self._dataset, self._weighted)
