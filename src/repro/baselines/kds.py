"""KDS — spatial independent range sampling (Xie et al., SIGMOD 2021).

KDS answers IRS queries over d-dimensional points; intervals are mapped to
2-D points ``(left, right)`` and queries to orthogonal rectangles, exactly as
the paper does when using KDS as a competitor.  The query first computes the
canonical cover of the rectangle over a kd-tree (``O(sqrt n)`` nodes), then:

* unweighted: builds a Walker alias table over the cover's component sizes
  and draws each sample in O(1) by picking a uniform position inside the
  chosen component — ``O(sqrt n + s)`` expected time;
* weighted: the alias table is built over the components' total weights and a
  draw inside a fully-covered node uses a binary search on the kd-tree's
  weight prefix sums — ``O(sqrt n + s log n)`` expected time.

Note (also made in the paper, Section V-A): the weighted variant is used only
as a timing competitor; unlike the AWIT it does not provide the exact
``w(x)/W(q ∩ X)`` guarantee of Problem 2 in general.
"""

from __future__ import annotations

import numpy as np

from ..core.base import OnEmpty, SamplingIndex
from ..core.dataset import IntervalDataset
from ..core.query import QueryLike
from ..sampling.alias import AliasTable
from ..sampling.rng import RandomState, resolve_rng
from .kdtree import CanonicalCover, KDTreeIndex

__all__ = ["KDS"]


class KDS(KDTreeIndex, SamplingIndex):
    """kd-tree based spatial IRS (the KDS competitor).

    Parameters
    ----------
    dataset:
        The intervals to index.
    leaf_size:
        kd-tree leaf capacity.
    weighted:
        When True, draws are weight-proportional (within the canonical-cover
        approximation described in the module docstring).
    """

    def __init__(
        self, dataset: IntervalDataset, leaf_size: int = 32, weighted: bool = False
    ) -> None:
        if weighted and not dataset.is_weighted:
            dataset = dataset.with_weights(np.ones(len(dataset)))
        KDTreeIndex.__init__(self, dataset, leaf_size=leaf_size)
        self._weighted = bool(weighted)
        if self._weighted and self._weight_prefix is None:
            self._weight_prefix = np.cumsum(dataset.weights[self._ordered_ids])

    @property
    def is_weighted(self) -> bool:
        """True when sampling is weight-proportional."""
        return self._weighted

    # ------------------------------------------------------------------ #
    def sample(
        self,
        query: QueryLike,
        sample_size: int,
        random_state: RandomState = None,
        on_empty: OnEmpty = "empty",
    ) -> np.ndarray:
        """Draw ``sample_size`` interval ids from ``q ∩ X`` via the canonical cover."""
        query_pair = self._coerce(query)
        sample_size = self._validate_sample_size(sample_size)
        rng = resolve_rng(random_state)
        cover = self.canonical_cover(query_pair)
        total = cover.total_count()
        if total == 0:
            return self._handle_empty(sample_size, on_empty, query_pair)
        if sample_size == 0:
            return np.empty(0, dtype=np.int64)
        if self._weighted:
            return self._sample_weighted(cover, sample_size, rng)
        return self._sample_uniform(cover, sample_size, rng)

    # ------------------------------------------------------------------ #
    def _sample_uniform(
        self, cover: CanonicalCover, sample_size: int, rng: np.random.Generator
    ) -> np.ndarray:
        components = [float(node.count) for node in cover.full_nodes]
        has_partial = cover.partial_ids.shape[0] > 0
        if has_partial:
            components.append(float(cover.partial_ids.shape[0]))
        alias = AliasTable(components)
        choices = alias.sample_many(sample_size, rng)
        result = np.empty(sample_size, dtype=np.int64)
        for index, node in enumerate(cover.full_nodes):
            mask = choices == index
            hits = int(mask.sum())
            if hits:
                positions = rng.integers(node.lo, node.hi, size=hits)
                result[mask] = self._ordered_ids[positions]
        if has_partial:
            mask = choices == len(cover.full_nodes)
            hits = int(mask.sum())
            if hits:
                positions = rng.integers(0, cover.partial_ids.shape[0], size=hits)
                result[mask] = cover.partial_ids[positions]
        return result

    def _sample_weighted(
        self, cover: CanonicalCover, sample_size: int, rng: np.random.Generator
    ) -> np.ndarray:
        prefix = self._weight_prefix
        weights = self._dataset.weights
        components: list[float] = []
        for node in cover.full_nodes:
            before = float(prefix[node.lo - 1]) if node.lo > 0 else 0.0
            components.append(float(prefix[node.hi - 1]) - before)
        has_partial = cover.partial_ids.shape[0] > 0
        partial_weights = weights[cover.partial_ids] if has_partial else None
        if has_partial:
            components.append(float(partial_weights.sum()))
        alias = AliasTable(components)
        choices = alias.sample_many(sample_size, rng)
        result = np.empty(sample_size, dtype=np.int64)
        for index, node in enumerate(cover.full_nodes):
            mask = choices == index
            hits = int(mask.sum())
            if hits == 0:
                continue
            before = float(prefix[node.lo - 1]) if node.lo > 0 else 0.0
            total = float(prefix[node.hi - 1]) - before
            thresholds = before + rng.random(hits) * total
            positions = np.searchsorted(prefix[node.lo : node.hi], thresholds, side="left") + node.lo
            positions = np.minimum(positions, node.hi - 1)
            result[mask] = self._ordered_ids[positions]
        if has_partial:
            mask = choices == len(cover.full_nodes)
            hits = int(mask.sum())
            if hits:
                partial_prefix = np.cumsum(partial_weights)
                thresholds = rng.random(hits) * partial_prefix[-1]
                positions = np.searchsorted(partial_prefix, thresholds, side="left")
                positions = np.minimum(positions, cover.partial_ids.shape[0] - 1)
                result[mask] = cover.partial_ids[positions]
        return result
