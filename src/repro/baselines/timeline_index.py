"""Timeline index (Kaufmann et al., SIGMOD 2013) — related-work substrate.

The timeline index represents an interval collection as a single *event list*
sorted by time: every interval contributes a ``start`` event at its left
endpoint and an ``end`` event just after its right endpoint.  Periodic
*checkpoints* store the full set of intervals alive at selected positions, so
a temporal query seeks to the closest checkpoint at or before the query and
replays the events from there.

The paper lists the timeline index among the interval structures that, like
the plain interval tree, support temporal scans well but cannot answer range
(overlap) queries without touching a number of events proportional to the
query extent — which is why it is superseded by HINT^m as the search-based
competitor.  It is implemented here to complete the substrate inventory and
to serve as yet another independent oracle in the cross-structure tests.
"""

from __future__ import annotations

import numpy as np

from ..core.base import IntervalIndex
from ..core.dataset import IntervalDataset
from ..core.query import QueryLike

__all__ = ["TimelineIndex"]


class TimelineIndex(IntervalIndex):
    """Event-list + checkpoint index for interval data.

    Parameters
    ----------
    dataset:
        The intervals to index.
    checkpoint_every:
        Number of events between two consecutive checkpoints.  Smaller values
        trade memory for faster stabbing queries.  Defaults to
        ``max(64, sqrt(2n))`` which balances replay length and space.
    """

    def __init__(self, dataset: IntervalDataset, checkpoint_every: int | None = None) -> None:
        super().__init__(dataset)
        n = len(dataset)
        if checkpoint_every is None:
            checkpoint_every = max(64, int(np.sqrt(2 * n)))
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be at least 1")
        self._checkpoint_every = int(checkpoint_every)

        # Event list: (time, is_start, interval_id), starts before ends at ties so
        # that closed-interval semantics ([a,b] alive at b) are preserved.
        starts = dataset.lefts
        ends = dataset.rights
        times = np.concatenate((starts, ends))
        kinds = np.concatenate((np.ones(n, dtype=np.int8), np.zeros(n, dtype=np.int8)))
        ids = np.concatenate((np.arange(n), np.arange(n)))
        # Sort by time; for equal times process starts (kind=1) before ends (kind=0)
        # so an interval is considered alive on its closed right endpoint.
        order = np.lexsort((-kinds, times))
        self._event_times = times[order]
        self._event_kinds = kinds[order]
        self._event_ids = ids[order]

        # Checkpoints: alive set snapshot before event position p.
        self._checkpoint_positions: list[int] = []
        self._checkpoint_alive: list[np.ndarray] = []
        alive: set[int] = set()
        for position in range(self._event_times.shape[0]):
            if position % self._checkpoint_every == 0:
                self._checkpoint_positions.append(position)
                self._checkpoint_alive.append(np.fromiter(alive, dtype=np.int64, count=len(alive)))
            interval_id = int(self._event_ids[position])
            if self._event_kinds[position] == 1:
                alive.add(interval_id)
            else:
                alive.discard(interval_id)

    # ------------------------------------------------------------------ #
    @property
    def checkpoint_every(self) -> int:
        """Number of events between checkpoints."""
        return self._checkpoint_every

    @property
    def checkpoint_count(self) -> int:
        """Number of stored checkpoints."""
        return len(self._checkpoint_positions)

    def memory_bytes(self) -> int:
        """Approximate structure size in bytes."""
        total = int(self._event_times.nbytes + self._event_kinds.nbytes + self._event_ids.nbytes)
        total += sum(int(arr.nbytes) + 64 for arr in self._checkpoint_alive)
        return total

    # ------------------------------------------------------------------ #
    def alive_at(self, point: float) -> np.ndarray:
        """Ids of intervals alive at ``point`` (stabbing query via checkpoint + replay)."""
        point = float(point)
        # Replay up to and including all events with time <= point, counting starts
        # before ends at the same time (matching the event ordering above).
        target = int(np.searchsorted(self._event_times, point, side="right"))
        checkpoint_index = max(0, int(np.searchsorted(self._checkpoint_positions, target, side="right")) - 1)
        position = self._checkpoint_positions[checkpoint_index]
        alive = set(self._checkpoint_alive[checkpoint_index].tolist())
        while position < target:
            interval_id = int(self._event_ids[position])
            if self._event_kinds[position] == 1:
                alive.add(interval_id)
            else:
                alive.discard(interval_id)
            position += 1
        # Ends are processed at their timestamp, but closed intervals are still
        # alive exactly at their right endpoint; add those back.
        ids = np.fromiter(alive, dtype=np.int64, count=len(alive))
        at_right_endpoint = np.nonzero(self._dataset.rights == point)[0]
        if at_right_endpoint.shape[0]:
            ids = np.union1d(ids, at_right_endpoint)
        return ids

    def report(self, query: QueryLike) -> np.ndarray:
        """Ids of intervals overlapping the query.

        An interval overlaps ``[q.l, q.r]`` iff it is alive at ``q.l`` or it
        starts inside ``(q.l, q.r]``; the first set comes from a stabbing
        query and the second from a scan of the start events inside the query
        — a cost proportional to the query extent, which is exactly the
        limitation the paper ascribes to this family of structures.
        """
        query_left, query_right = self._coerce(query)
        alive = self.alive_at(query_left)
        # Start events strictly after q.l and at most q.r.
        start_mask = (self._event_kinds == 1)
        start_times = self._event_times[start_mask]
        start_ids = self._event_ids[start_mask]
        lo = int(np.searchsorted(start_times, query_left, side="right"))
        hi = int(np.searchsorted(start_times, query_right, side="right"))
        started_inside = start_ids[lo:hi]
        if started_inside.shape[0] == 0:
            return alive
        return np.union1d(alive, started_inside)
