"""Period index (Behrend et al., SSTD 2019) — related-work substrate.

The period index partitions the time domain into fixed-width *buckets* and,
inside each bucket, groups intervals by duration into a small number of
*levels* (a 2-D grid over position and duration).  An interval is registered
in every bucket its span touches, at the level matching its length; a range
query visits the buckets overlapping the query and filters the registered
intervals, using the duration levels to skip groups that cannot qualify.

Like the timeline index it is part of the paper's related-work inventory
(Section VI): a practical heuristic structure for range and duration queries
that HINT^m was shown to outperform.  It is included as a further substrate
and cross-check oracle; it also demonstrates that bucket-grid structures need
``Ω(|q ∩ X|)`` per range query just like the other search-based baselines.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.base import IntervalIndex
from ..core.dataset import IntervalDataset
from ..core.query import QueryLike

__all__ = ["PeriodIndex"]


class PeriodIndex(IntervalIndex):
    """Bucket-and-duration-level grid index for interval data.

    Parameters
    ----------
    dataset:
        The intervals to index.
    bucket_count:
        Number of equal-width buckets over the domain (default ``sqrt(n)``,
        capped to keep replication reasonable).
    levels:
        Number of duration levels per bucket (default 4, as suggested in the
        original paper's evaluation).
    """

    def __init__(
        self, dataset: IntervalDataset, bucket_count: int | None = None, levels: int = 4
    ) -> None:
        super().__init__(dataset)
        n = len(dataset)
        if bucket_count is None:
            bucket_count = max(1, min(4096, int(math.sqrt(n))))
        if bucket_count < 1:
            raise ValueError("bucket_count must be at least 1")
        if levels < 1:
            raise ValueError("levels must be at least 1")
        self._bucket_count = int(bucket_count)
        self._levels = int(levels)

        domain_lo, domain_hi = dataset.domain()
        self._domain_lo = domain_lo
        self._bucket_width = max((domain_hi - domain_lo) / self._bucket_count, 1e-12)

        # Duration level thresholds: geometric split of the maximum length.
        lengths = dataset.lengths()
        max_length = max(float(lengths.max()), 1e-12)
        self._level_bounds = np.array(
            [max_length * (2.0 ** -(self._levels - 1 - level)) for level in range(self._levels)]
        )

        # grid[bucket][level] -> list of interval ids registered there.
        self._grid: list[list[list[int]]] = [
            [[] for _ in range(self._levels)] for _ in range(self._bucket_count)
        ]
        first_bucket = self._bucket_of(dataset.lefts)
        last_bucket = self._bucket_of(dataset.rights)
        level_of = np.searchsorted(self._level_bounds, lengths, side="left")
        level_of = np.minimum(level_of, self._levels - 1)
        for interval_id in range(n):
            level = int(level_of[interval_id])
            for bucket in range(int(first_bucket[interval_id]), int(last_bucket[interval_id]) + 1):
                self._grid[bucket][level].append(interval_id)

    # ------------------------------------------------------------------ #
    def _bucket_of(self, values: np.ndarray | float) -> np.ndarray:
        buckets = np.floor((np.asarray(values, dtype=np.float64) - self._domain_lo) / self._bucket_width)
        return np.clip(buckets, 0, self._bucket_count - 1).astype(np.int64)

    @property
    def bucket_count(self) -> int:
        """Number of domain buckets."""
        return self._bucket_count

    @property
    def levels(self) -> int:
        """Number of duration levels per bucket."""
        return self._levels

    def memory_bytes(self) -> int:
        """Approximate structure size in bytes."""
        total = 0
        for bucket in self._grid:
            for level in bucket:
                total += 8 * len(level) + 64
        return total

    # ------------------------------------------------------------------ #
    def report(self, query: QueryLike) -> np.ndarray:
        """Ids of intervals overlapping the query (bucket scan + filter, Ω(|q ∩ X|))."""
        query_left, query_right = self._coerce(query)
        first = int(self._bucket_of(query_left))
        last = int(self._bucket_of(query_right))
        candidates: set[int] = set()
        for bucket in range(first, last + 1):
            for level in self._grid[bucket]:
                candidates.update(level)
        if not candidates:
            return np.empty(0, dtype=np.int64)
        ids = np.fromiter(candidates, dtype=np.int64, count=len(candidates))
        mask = (self._dataset.lefts[ids] <= query_right) & (query_left <= self._dataset.rights[ids])
        return ids[mask]

    def stab(self, point: float) -> np.ndarray:
        """Ids of intervals containing ``point``."""
        return self.report((point, point))
