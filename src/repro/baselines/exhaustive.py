"""Brute-force oracle: linear scan over the whole dataset.

Not a competitor from the paper — it exists as the ground truth against which
every index (ours and the baselines) is validated in the test-suite, and as
the simplest possible reference implementation of both IRS problems.
"""

from __future__ import annotations

import numpy as np

from ..core.base import OnEmpty, SamplingIndex
from ..core.dataset import IntervalDataset
from ..core.query import QueryLike
from ..sampling.rng import RandomState, resolve_rng
from .common import sample_from_result

__all__ = ["ExhaustiveScan"]


class ExhaustiveScan(SamplingIndex):
    """O(n) linear-scan reporting, counting and sampling (the correctness oracle).

    Parameters
    ----------
    dataset:
        The intervals to scan.
    weighted:
        When True, :meth:`sample` draws with probability proportional to the
        interval weights (Problem 2); otherwise uniformly (Problem 1).
    """

    def __init__(self, dataset: IntervalDataset, weighted: bool = False) -> None:
        super().__init__(dataset)
        self._weighted = bool(weighted)

    @property
    def is_weighted(self) -> bool:
        """True when sampling is weight-proportional."""
        return self._weighted

    def report(self, query: QueryLike) -> np.ndarray:
        """All ids overlapping the query, by linear scan."""
        query_left, query_right = self._coerce(query)
        return self._dataset.overlap_indices(query_left, query_right)

    def count(self, query: QueryLike) -> int:
        """``|q ∩ X|`` by linear scan."""
        query_left, query_right = self._coerce(query)
        return self._dataset.overlap_count(query_left, query_right)

    def count_many(self, queries) -> np.ndarray:
        """Vectorised batch counting: one broadcast overlap test per chunk.

        Chunked so the boolean (queries x intervals) matrix stays within a
        few tens of megabytes regardless of batch size.  Primarily the
        ground-truth oracle for the batch-equivalence tests.
        """
        from ..core.query import coerce_query_batch

        ql, qr = coerce_query_batch(queries)
        lefts = self._dataset.lefts
        rights = self._dataset.rights
        counts = np.empty(ql.shape[0], dtype=np.int64)
        chunk = max(1, 32_000_000 // max(1, lefts.shape[0]))
        for start in range(0, ql.shape[0], chunk):
            stop = min(start + chunk, ql.shape[0])
            overlap = (lefts[None, :] <= qr[start:stop, None]) & (
                ql[start:stop, None] <= rights[None, :]
            )
            counts[start:stop] = overlap.sum(axis=1)
        return counts

    def total_weight(self, query: QueryLike) -> float:
        """Total weight of ``q ∩ X`` by linear scan."""
        return float(self._dataset.weights[self.report(query)].sum())

    def sample(
        self,
        query: QueryLike,
        sample_size: int,
        random_state: RandomState = None,
        on_empty: OnEmpty = "empty",
    ) -> np.ndarray:
        """Materialise ``q ∩ X`` and sample from it."""
        query_pair = self._coerce(query)
        sample_size = self._validate_sample_size(sample_size)
        rng = resolve_rng(random_state)
        result = self.report(query_pair)
        if result.shape[0] == 0:
            return self._handle_empty(sample_size, on_empty, query_pair)
        return sample_from_result(result, sample_size, rng, self._dataset, self._weighted)
