"""Loading real interval data from delimited text files.

Users who have the original Book / BTC / Renfe / Taxi exports (or any other
CSV of intervals) can load them with :func:`load_csv` and run the exact same
experiments the synthetic generators drive by default.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable

from ..core.dataset import IntervalDataset
from ..core.errors import EmptyDatasetError, InvalidIntervalError

__all__ = ["load_csv", "save_csv"]


def load_csv(
    path: str | Path,
    left_column: str | int = 0,
    right_column: str | int = 1,
    weight_column: str | int | None = None,
    delimiter: str = ",",
    has_header: bool | None = None,
    skip_invalid: bool = False,
    limit: int | None = None,
) -> IntervalDataset:
    """Load an :class:`IntervalDataset` from a delimited text file.

    Parameters
    ----------
    path:
        File to read.
    left_column, right_column, weight_column:
        Column names (when the file has a header) or 0-based positions.
    has_header:
        Force header handling; by default a header is assumed iff any of the
        column selectors is a string.
    skip_invalid:
        Skip rows with unparseable or inverted endpoints instead of raising.
    limit:
        Optional cap on the number of rows to read.
    """
    path = Path(path)
    by_name = any(isinstance(col, str) for col in (left_column, right_column, weight_column))
    if has_header is None:
        has_header = by_name

    lefts: list[float] = []
    rights: list[float] = []
    weights: list[float] = []
    with path.open(newline="") as handle:
        if has_header:
            reader: Iterable = csv.DictReader(handle, delimiter=delimiter)
        else:
            reader = csv.reader(handle, delimiter=delimiter)
        for row_number, row in enumerate(reader):
            if limit is not None and len(lefts) >= limit:
                break
            try:
                left = float(_cell(row, left_column))
                right = float(_cell(row, right_column))
                weight = float(_cell(row, weight_column)) if weight_column is not None else 1.0
                if left > right:
                    raise ValueError("left endpoint exceeds right endpoint")
            except (KeyError, IndexError, TypeError, ValueError) as exc:
                if skip_invalid:
                    continue
                raise InvalidIntervalError(f"row {row_number} of {path} is invalid: {exc}") from exc
            lefts.append(left)
            rights.append(right)
            weights.append(weight)

    if not lefts:
        raise EmptyDatasetError(f"no valid intervals found in {path}")
    has_weights = weight_column is not None
    return IntervalDataset(lefts, rights, weights if has_weights else None)


def save_csv(dataset: IntervalDataset, path: str | Path, delimiter: str = ",") -> None:
    """Write a dataset as ``left,right,weight`` rows with a header."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(["left", "right", "weight"])
        for left, right, weight in zip(dataset.lefts, dataset.rights, dataset.weights):
            writer.writerow([repr(float(left)), repr(float(right)), repr(float(weight))])


def _cell(row, column):
    if isinstance(column, str):
        return row[column]
    if isinstance(row, dict):
        return list(row.values())[column]
    return row[column]
