"""Synthetic analogues of the paper's evaluation datasets.

The paper evaluates on four real datasets (Book, BTC, Renfe, Taxi) whose raw
files are not redistributable and are unavailable offline.  This module
provides generators that reproduce the *published statistics* of each dataset
(Table II: cardinality, domain size, minimum / median / maximum interval
length) at any requested scale, which is what the algorithms' behaviour
actually depends on: how many intervals a query of a given extent overlaps,
and how skewed the interval-length distribution is.

Interval lengths are drawn from a log-normal distribution calibrated so that
its median matches the published median length, then clipped to the published
[min, max] range; left endpoints are uniform over the domain.  Weighted
variants attach integer weights drawn uniformly from [1, 100], exactly as in
the paper (Section V-A).

Generic generators (uniform, clustered, mixture) are also provided for tests
and ablation studies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.dataset import IntervalDataset
from ..sampling.rng import RandomState, resolve_rng

__all__ = [
    "DatasetSpec",
    "PAPER_DATASETS",
    "generate_dataset",
    "generate_paper_dataset",
    "generate_uniform",
    "generate_clustered",
    "generate_point_intervals",
    "attach_random_weights",
    "dataset_names",
]


@dataclass(frozen=True, slots=True)
class DatasetSpec:
    """Published statistics of one evaluation dataset (Table II of the paper)."""

    name: str
    cardinality: int
    domain_size: float
    min_length: float
    median_length: float
    max_length: float

    def scaled(self, n: int) -> "DatasetSpec":
        """The same distributional statistics at a different cardinality."""
        return DatasetSpec(
            self.name, int(n), self.domain_size, self.min_length, self.median_length, self.max_length
        )


#: Table II of the paper, verbatim.
PAPER_DATASETS: dict[str, DatasetSpec] = {
    "book": DatasetSpec("book", 2_295_260, 31_507_200, 3_600, 1_458_000, 31_406_400),
    "btc": DatasetSpec("btc", 2_538_921, 6_876_400, 1, 937, 547_077),
    "renfe": DatasetSpec("renfe", 38_753_060, 52_163_400, 1_320, 9_120, 44_700),
    "taxi": DatasetSpec("taxi", 106_685_540, 79_901_357, 1, 663, 2_618_881),
}


def dataset_names() -> list[str]:
    """Names of the paper's evaluation datasets, in the order they appear in Table II."""
    return list(PAPER_DATASETS)


def _lognormal_sigma(spec: DatasetSpec) -> float:
    """Shape parameter so that the published maximum is ~3.5 sigmas above the median."""
    spread = max(spec.max_length / max(spec.median_length, 1e-9), 1.0 + 1e-9)
    return max(0.05, math.log(spread) / 3.5)


def generate_dataset(
    spec: DatasetSpec,
    n: int | None = None,
    weighted: bool = False,
    random_state: RandomState = None,
) -> IntervalDataset:
    """Generate a dataset matching ``spec`` with ``n`` intervals (default: spec cardinality)."""
    rng = resolve_rng(random_state)
    size = int(n) if n is not None else spec.cardinality
    if size <= 0:
        raise ValueError("dataset size must be positive")

    sigma = _lognormal_sigma(spec)
    mu = math.log(max(spec.median_length, 1e-9))
    lengths = rng.lognormal(mean=mu, sigma=sigma, size=size)
    lengths = np.clip(lengths, spec.min_length, spec.max_length)

    lefts = rng.uniform(0.0, max(spec.domain_size - lengths.mean(), 1.0), size=size)
    rights = np.minimum(lefts + lengths, spec.domain_size)

    weights = rng.integers(1, 101, size=size).astype(np.float64) if weighted else None
    return IntervalDataset(lefts, rights, weights)


def generate_paper_dataset(
    name: str,
    n: int | None = None,
    weighted: bool = False,
    random_state: RandomState = None,
) -> IntervalDataset:
    """Generate the synthetic analogue of one of the paper's datasets by name.

    ``name`` is one of ``"book"``, ``"btc"``, ``"renfe"``, ``"taxi"``
    (case-insensitive).
    """
    key = name.strip().lower()
    if key not in PAPER_DATASETS:
        raise KeyError(f"unknown dataset {name!r}; expected one of {sorted(PAPER_DATASETS)}")
    return generate_dataset(PAPER_DATASETS[key], n=n, weighted=weighted, random_state=random_state)


def generate_uniform(
    n: int,
    domain: tuple[float, float] = (0.0, 1_000_000.0),
    mean_length: float = 1_000.0,
    weighted: bool = False,
    random_state: RandomState = None,
) -> IntervalDataset:
    """Uniform left endpoints with exponentially distributed lengths."""
    if n <= 0:
        raise ValueError("dataset size must be positive")
    rng = resolve_rng(random_state)
    domain_lo, domain_hi = float(domain[0]), float(domain[1])
    if domain_hi <= domain_lo:
        raise ValueError("domain upper bound must exceed the lower bound")
    lefts = rng.uniform(domain_lo, domain_hi, size=n)
    lengths = rng.exponential(mean_length, size=n)
    rights = np.minimum(lefts + lengths, domain_hi)
    weights = rng.integers(1, 101, size=n).astype(np.float64) if weighted else None
    return IntervalDataset(lefts, rights, weights)


def generate_clustered(
    n: int,
    clusters: int = 10,
    domain: tuple[float, float] = (0.0, 1_000_000.0),
    cluster_spread: float = 5_000.0,
    mean_length: float = 1_000.0,
    weighted: bool = False,
    random_state: RandomState = None,
) -> IntervalDataset:
    """Left endpoints clustered around random centers (skewed spatial density)."""
    if n <= 0 or clusters <= 0:
        raise ValueError("dataset size and cluster count must be positive")
    rng = resolve_rng(random_state)
    domain_lo, domain_hi = float(domain[0]), float(domain[1])
    centers = rng.uniform(domain_lo, domain_hi, size=clusters)
    assignment = rng.integers(0, clusters, size=n)
    lefts = centers[assignment] + rng.normal(0.0, cluster_spread, size=n)
    lefts = np.clip(lefts, domain_lo, domain_hi)
    lengths = rng.exponential(mean_length, size=n)
    rights = np.minimum(lefts + lengths, domain_hi)
    weights = rng.integers(1, 101, size=n).astype(np.float64) if weighted else None
    return IntervalDataset(lefts, rights, weights)


def generate_point_intervals(
    n: int,
    domain: tuple[float, float] = (0.0, 1_000_000.0),
    weighted: bool = False,
    random_state: RandomState = None,
) -> IntervalDataset:
    """Degenerate intervals (left == right), the interval view of 1-D points."""
    if n <= 0:
        raise ValueError("dataset size must be positive")
    rng = resolve_rng(random_state)
    points = rng.uniform(float(domain[0]), float(domain[1]), size=n)
    weights = rng.integers(1, 101, size=n).astype(np.float64) if weighted else None
    return IntervalDataset(points, points, weights)


def attach_random_weights(
    dataset: IntervalDataset, low: int = 1, high: int = 100, random_state: RandomState = None
) -> IntervalDataset:
    """A weighted copy of ``dataset`` with integer weights uniform in [low, high]."""
    if low < 0 or high < low:
        raise ValueError("weight bounds must satisfy 0 <= low <= high")
    rng = resolve_rng(random_state)
    weights = rng.integers(low, high + 1, size=len(dataset)).astype(np.float64)
    return dataset.with_weights(weights)
