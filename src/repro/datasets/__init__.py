"""Dataset generators, loaders, query workloads and statistics."""

from .loaders import load_csv, save_csv
from .queries import QueryWorkload, generate_queries, stabbing_queries
from .statistics import DatasetStatistics, compute_statistics
from .synthetic import (
    PAPER_DATASETS,
    DatasetSpec,
    attach_random_weights,
    dataset_names,
    generate_clustered,
    generate_dataset,
    generate_paper_dataset,
    generate_point_intervals,
    generate_uniform,
)

__all__ = [
    "load_csv",
    "save_csv",
    "QueryWorkload",
    "generate_queries",
    "stabbing_queries",
    "DatasetStatistics",
    "compute_statistics",
    "PAPER_DATASETS",
    "DatasetSpec",
    "attach_random_weights",
    "dataset_names",
    "generate_clustered",
    "generate_dataset",
    "generate_paper_dataset",
    "generate_point_intervals",
    "generate_uniform",
]
