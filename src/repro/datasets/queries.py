"""Query workload generation.

The paper's workload (Section V-A): 1,000 query intervals per experiment, the
left endpoint drawn uniformly from the dataset domain and the interval length
fixed to a percentage of the domain size (8% by default); the sample size is
``s = 1000`` by default and varied in Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from ..core.dataset import IntervalDataset
from ..core.errors import InvalidQueryError
from ..sampling.rng import RandomState, resolve_rng

__all__ = ["QueryWorkload", "generate_queries", "stabbing_queries"]


@dataclass(frozen=True, slots=True)
class QueryWorkload:
    """A reproducible batch of range queries over a fixed domain.

    Attributes
    ----------
    queries:
        The ``(left, right)`` pairs.
    extent_fraction:
        Query length as a fraction of the domain size.
    domain:
        The ``(low, high)`` domain the queries were drawn from.
    """

    queries: tuple[tuple[float, float], ...]
    extent_fraction: float
    domain: tuple[float, float]
    seed: int | None = field(default=None, compare=False)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(self.queries)

    def __getitem__(self, index: int) -> tuple[float, float]:
        return self.queries[index]


def generate_queries(
    dataset: IntervalDataset | tuple[float, float],
    count: int = 1000,
    extent_fraction: float = 0.08,
    random_state: RandomState = None,
) -> QueryWorkload:
    """Generate ``count`` queries with length ``extent_fraction`` of the domain.

    ``dataset`` may be an :class:`IntervalDataset` (its domain is used) or an
    explicit ``(low, high)`` domain pair.
    """
    if count <= 0:
        raise InvalidQueryError("query count must be positive")
    if not 0.0 < extent_fraction <= 1.0:
        raise InvalidQueryError("extent_fraction must be in (0, 1]")
    if isinstance(dataset, IntervalDataset):
        domain_lo, domain_hi = dataset.domain()
    else:
        domain_lo, domain_hi = float(dataset[0]), float(dataset[1])
    if domain_hi <= domain_lo:
        raise InvalidQueryError("domain upper bound must exceed the lower bound")

    rng = resolve_rng(random_state)
    extent = (domain_hi - domain_lo) * extent_fraction
    max_left = max(domain_hi - extent, domain_lo)
    lefts = rng.uniform(domain_lo, max_left, size=count)
    rights = np.minimum(lefts + extent, domain_hi)
    queries = tuple((float(l), float(r)) for l, r in zip(lefts, rights))
    seed = random_state if isinstance(random_state, int) else None
    return QueryWorkload(queries, float(extent_fraction), (domain_lo, domain_hi), seed)


def stabbing_queries(
    dataset: IntervalDataset | tuple[float, float],
    count: int = 1000,
    random_state: RandomState = None,
) -> Sequence[float]:
    """Uniform stabbing points over the domain (used by the segment-tree tests)."""
    if count <= 0:
        raise InvalidQueryError("query count must be positive")
    if isinstance(dataset, IntervalDataset):
        domain_lo, domain_hi = dataset.domain()
    else:
        domain_lo, domain_hi = float(dataset[0]), float(dataset[1])
    rng = resolve_rng(random_state)
    return rng.uniform(domain_lo, domain_hi, size=count).tolist()
