"""Dataset statistics in the format of Table II of the paper."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.dataset import IntervalDataset

__all__ = ["DatasetStatistics", "compute_statistics"]


@dataclass(frozen=True, slots=True)
class DatasetStatistics:
    """Cardinality, domain size and length distribution of an interval dataset."""

    cardinality: int
    domain_size: float
    min_length: float
    median_length: float
    max_length: float
    mean_length: float

    def as_row(self) -> dict[str, float]:
        """The statistics as a flat dict (one row of Table II)."""
        return {
            "cardinality": self.cardinality,
            "domain_size": self.domain_size,
            "min_length": self.min_length,
            "median_length": self.median_length,
            "max_length": self.max_length,
            "mean_length": self.mean_length,
        }


def compute_statistics(dataset: IntervalDataset) -> DatasetStatistics:
    """Compute the Table II statistics for ``dataset``."""
    dataset.require_nonempty()
    lengths = dataset.lengths()
    return DatasetStatistics(
        cardinality=len(dataset),
        domain_size=dataset.domain_size(),
        min_length=float(lengths.min()),
        median_length=float(np.median(lengths)),
        max_length=float(lengths.max()),
        mean_length=float(lengths.mean()),
    )
