"""Statistical validation of sampling distributions and sample-based estimators."""

from .estimators import (
    Estimate,
    estimate_mean,
    estimate_proportion,
    estimate_result_statistic,
    estimate_sum,
)
from .uniformity import (
    GoodnessOfFit,
    chi_square_goodness_of_fit,
    chi_square_uniformity,
    chi_square_weighted,
    empirical_frequencies,
    total_variation_distance,
)

__all__ = [
    "Estimate",
    "estimate_mean",
    "estimate_proportion",
    "estimate_result_statistic",
    "estimate_sum",
    "GoodnessOfFit",
    "chi_square_goodness_of_fit",
    "chi_square_uniformity",
    "chi_square_weighted",
    "empirical_frequencies",
    "total_variation_distance",
]
