"""Statistical validation of sampling distributions.

The correctness claims of the paper (Theorem 3 and the weighted analogue of
Corollary 5) are distributional: every member of ``q ∩ X`` must be drawn with
probability ``1/|q ∩ X|`` (respectively ``w(x)/W``).  These helpers turn that
into testable statistics: empirical frequencies, chi-square goodness-of-fit
and total-variation distance against the theoretical distribution.

The chi-square p-value uses ``scipy.stats`` when available and falls back to
the Wilson–Hilferty normal approximation otherwise, so the core library keeps
its numpy-only dependency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = [
    "empirical_frequencies",
    "GoodnessOfFit",
    "chi_square_goodness_of_fit",
    "chi_square_uniformity",
    "chi_square_weighted",
    "total_variation_distance",
]


def empirical_frequencies(samples: Iterable[int]) -> dict[int, int]:
    """Count how many times each id occurs in ``samples``."""
    counts: dict[int, int] = {}
    for value in samples:
        key = int(value)
        counts[key] = counts.get(key, 0) + 1
    return counts


@dataclass(frozen=True, slots=True)
class GoodnessOfFit:
    """Result of a chi-square goodness-of-fit test."""

    statistic: float
    degrees_of_freedom: int
    p_value: float

    def rejects_uniformity(self, alpha: float = 0.001) -> bool:
        """True when the null hypothesis (samples follow the target law) is rejected."""
        return self.p_value < alpha


def _chi_square_sf(statistic: float, dof: int) -> float:
    """Survival function of the chi-square distribution."""
    if dof <= 0:
        return 1.0
    try:  # pragma: no cover - depends on environment
        from scipy import stats as scipy_stats

        return float(scipy_stats.chi2.sf(statistic, dof))
    except Exception:  # pragma: no cover - fallback path
        # Wilson–Hilferty cube-root normal approximation.
        z = ((statistic / dof) ** (1.0 / 3.0) - (1.0 - 2.0 / (9.0 * dof))) / math.sqrt(
            2.0 / (9.0 * dof)
        )
        return 0.5 * math.erfc(z / math.sqrt(2.0))


def chi_square_goodness_of_fit(
    samples: Sequence[int],
    expected_probabilities: Mapping[int, float],
) -> GoodnessOfFit:
    """Chi-square test of ``samples`` against arbitrary per-id probabilities.

    Ids with expected probability below ``1 / (10 * len(samples))`` are pooled
    into a single cell to keep expected counts reasonable.
    """
    total = len(samples)
    if total == 0:
        raise ValueError("cannot test an empty sample")
    prob_sum = float(sum(expected_probabilities.values()))
    if not math.isclose(prob_sum, 1.0, rel_tol=1e-6, abs_tol=1e-6):
        raise ValueError(f"expected probabilities must sum to 1, got {prob_sum}")

    counts = empirical_frequencies(samples)
    unknown = set(counts) - set(int(k) for k in expected_probabilities)
    if unknown:
        raise ValueError(f"samples contain ids outside the expected support: {sorted(unknown)[:5]}")

    threshold = 1.0 / (10.0 * total)
    main_ids = [i for i, p in expected_probabilities.items() if p >= threshold]
    pooled_prob = float(sum(p for p in expected_probabilities.values() if p < threshold))
    pooled_count = sum(counts.get(int(i), 0) for i, p in expected_probabilities.items() if p < threshold)

    statistic = 0.0
    cells = 0
    for i in main_ids:
        expected = expected_probabilities[i] * total
        observed = counts.get(int(i), 0)
        statistic += (observed - expected) ** 2 / expected
        cells += 1
    if pooled_prob > 0:
        expected = pooled_prob * total
        statistic += (pooled_count - expected) ** 2 / expected
        cells += 1

    dof = max(1, cells - 1)
    return GoodnessOfFit(float(statistic), dof, _chi_square_sf(float(statistic), dof))


def chi_square_uniformity(samples: Sequence[int], population: Sequence[int]) -> GoodnessOfFit:
    """Chi-square test that ``samples`` are uniform over ``population`` (Problem 1)."""
    population_ids = [int(i) for i in population]
    if not population_ids:
        raise ValueError("population must be non-empty")
    probability = 1.0 / len(population_ids)
    return chi_square_goodness_of_fit(samples, {i: probability for i in population_ids})


def chi_square_weighted(
    samples: Sequence[int], population: Sequence[int], weights: Sequence[float]
) -> GoodnessOfFit:
    """Chi-square test that ``samples`` follow w(x)/W over ``population`` (Problem 2)."""
    population_ids = [int(i) for i in population]
    weight_values = np.asarray(list(weights), dtype=np.float64)
    if len(population_ids) != weight_values.shape[0]:
        raise ValueError("population and weights must have the same length")
    total_weight = float(weight_values.sum())
    if total_weight <= 0:
        raise ValueError("total weight must be positive")
    expected = {i: float(w) / total_weight for i, w in zip(population_ids, weight_values)}
    return chi_square_goodness_of_fit(samples, expected)


def total_variation_distance(
    samples: Sequence[int], expected_probabilities: Mapping[int, float]
) -> float:
    """Total-variation distance between the empirical and expected distributions."""
    total = len(samples)
    if total == 0:
        raise ValueError("cannot compute a distance for an empty sample")
    counts = empirical_frequencies(samples)
    distance = 0.0
    support = set(int(k) for k in expected_probabilities) | set(counts)
    for i in support:
        empirical = counts.get(i, 0) / total
        expected = float(expected_probabilities.get(i, 0.0))
        distance += abs(empirical - expected)
    return 0.5 * distance
