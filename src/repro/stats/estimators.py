"""Sample-based estimators used by the example applications.

The motivating applications of the paper (taxi visualisation, e-commerce
statistics, cryptocurrency analysis) do not need exact result sets: a small
uniform sample supports unbiased estimates of counts, sums and means over the
query result.  These helpers compute such estimates together with normal
confidence intervals, so the examples can show the "sample instead of scan"
workflow end to end.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..core.interval import Interval

__all__ = ["Estimate", "estimate_mean", "estimate_proportion", "estimate_sum", "estimate_result_statistic"]


@dataclass(frozen=True, slots=True)
class Estimate:
    """A point estimate with a symmetric normal confidence interval."""

    value: float
    stderr: float
    confidence: float
    lower: float
    upper: float
    sample_size: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.value:.4g} ± {self.upper - self.value:.2g} ({self.confidence:.0%} CI)"


def _z_score(confidence: float) -> float:
    """Two-sided normal quantile via inverse error function (no scipy needed)."""
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    # Newton iteration on erf to invert; adequate for the usual 0.9-0.999 range.
    target = confidence
    z = 1.0
    for _ in range(60):
        err = math.erf(z / math.sqrt(2.0)) - target
        derivative = math.sqrt(2.0 / math.pi) * math.exp(-z * z / 2.0)
        step = err / derivative
        z -= step
        if abs(step) < 1e-12:
            break
    return z


def estimate_mean(values: Sequence[float], confidence: float = 0.95) -> Estimate:
    """Mean of the sampled values with a normal confidence interval."""
    data = np.asarray(list(values), dtype=np.float64)
    if data.shape[0] == 0:
        raise ValueError("cannot estimate from an empty sample")
    mean = float(data.mean())
    stderr = float(data.std(ddof=1) / math.sqrt(data.shape[0])) if data.shape[0] > 1 else 0.0
    z = _z_score(confidence)
    return Estimate(mean, stderr, confidence, mean - z * stderr, mean + z * stderr, data.shape[0])


def estimate_proportion(indicator: Sequence[bool], confidence: float = 0.95) -> Estimate:
    """Proportion of True values in the sample with a normal confidence interval."""
    data = np.asarray(list(indicator), dtype=np.float64)
    if data.shape[0] == 0:
        raise ValueError("cannot estimate from an empty sample")
    p = float(data.mean())
    stderr = math.sqrt(max(p * (1.0 - p), 0.0) / data.shape[0])
    z = _z_score(confidence)
    lower = max(0.0, p - z * stderr)
    upper = min(1.0, p + z * stderr)
    return Estimate(p, stderr, confidence, lower, upper, data.shape[0])


def estimate_sum(
    values: Sequence[float], population_size: int, confidence: float = 0.95
) -> Estimate:
    """Estimate the population total from a uniform sample of size ``len(values)``.

    With uniform sampling, the unbiased total estimator is the sample mean
    scaled by the (known) population size — the paper's AIT provides the
    population size ``|q ∩ X|`` for free via range counting.
    """
    if population_size < 0:
        raise ValueError("population_size must be non-negative")
    mean_estimate = estimate_mean(values, confidence)
    scale = float(population_size)
    return Estimate(
        mean_estimate.value * scale,
        mean_estimate.stderr * scale,
        confidence,
        mean_estimate.lower * scale,
        mean_estimate.upper * scale,
        mean_estimate.sample_size,
    )


def estimate_result_statistic(
    samples: Sequence[Interval],
    statistic: Callable[[Interval], float],
    population_size: int | None = None,
    confidence: float = 0.95,
) -> Estimate:
    """Estimate the mean (or, with ``population_size``, the total) of a per-interval statistic."""
    values = [float(statistic(interval)) for interval in samples]
    if population_size is None:
        return estimate_mean(values, confidence)
    return estimate_sum(values, population_size, confidence)
