"""Versioned, checksummed, page-aligned array snapshots.

A snapshot file is a self-describing container for named numpy arrays:

::

    offset 0   magic  b"RPRSNAP1"                         (8 bytes)
    offset 8   header length                              (u32 LE)
    offset 12  header CRC (always zlib.crc32)             (u32 LE)
    offset 16  header JSON                                (header length bytes)
    ...        zero padding to the next 4096 boundary
    data       array segments, each aligned to 4096

The JSON header carries the format version, the checksum algorithm used for
the array digests (see :mod:`repro.persist.checksum`), a caller-supplied
``meta`` dict, and one table entry per array: name, dtype (endianness
included), shape, offset relative to the data start, byte length, and
checksum.  Offsets are relative so the header's own length never shifts the
data layout.

Because segments are page-aligned and stored raw, :func:`load_arrays` can
return zero-copy ``np.memmap`` views (``mmap=True``, the default): opening a
multi-hundred-megabyte snapshot costs a header parse, and pages fault in
lazily as queries touch them.  All loaded arrays are read-only — snapshot
state is immutable by construction.  ``verify=True`` additionally walks every
segment once to recompute its checksum (this pages the file in, but the
pages stay cached for the queries that follow).

Writes are atomic: the container is assembled in a ``<path>.tmp`` sibling,
fsynced, then renamed over the target, so a crash mid-save never damages the
previous snapshot.

On top of the generic container this module also knows how to persist a
:class:`~repro.core.flat.FlatAIT`: :func:`save_flat` / :func:`load_flat`
(the implementations behind ``FlatAIT.save`` / ``FlatAIT.load``) store the
13 core arrays plus the 4 derived rank-key pools — saving the derived pools
costs ~25% more disk but lets ``load`` skip the rank-key rebuild that would
otherwise page the whole file in eagerly.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Optional

import numpy as np

from ..core.errors import SnapshotCorruptError
from ..core.flat import FlatAIT
from .checksum import CHECKSUM_ALGORITHM, checksum, resolve_checksum

__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "PAGE_SIZE",
    "save_arrays",
    "load_arrays",
    "read_header",
    "save_flat",
    "load_flat",
    "flat_to_arrays",
    "flat_from_arrays",
]

MAGIC = b"RPRSNAP1"
FORMAT_VERSION = 1
PAGE_SIZE = 4096

_ID = np.int64
_PREAMBLE = struct.Struct("<8sII")  # magic, header length, header crc32

#: FlatAIT persistence schema: (array name in file, attribute on the object).
#: Owned by the snapshot class itself so every serialised form (disk files
#: here, shared-memory segments in :mod:`repro.service.shm`) enumerates the
#: same fields.  ``all_weight_prefix`` is absent when unweighted.
_FLAT_CORE_FIELDS = list(FlatAIT.CORE_FIELDS)
_FLAT_RANK_FIELDS = list(FlatAIT.RANK_KEY_FIELDS)


def _align(offset: int) -> int:
    return (offset + PAGE_SIZE - 1) // PAGE_SIZE * PAGE_SIZE


def fsync_directory(directory: str) -> None:
    """fsync a directory so a just-renamed file survives power loss."""
    fd = os.open(directory or ".", os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


# ---------------------------------------------------------------------- #
# generic container
# ---------------------------------------------------------------------- #
def save_arrays(path, arrays: dict, meta: Optional[dict] = None, fsync: bool = True,
                opener=open) -> None:
    """Atomically write named arrays (``None`` values are skipped) to ``path``.

    ``opener`` exists for fault injection: any ``open``-compatible callable
    (see :class:`repro.persist.FaultInjector`).
    """
    path = os.fspath(path)
    table: list[dict] = []
    segments: list[tuple[int, np.ndarray]] = []
    offset = 0
    for name, array in arrays.items():
        if array is None:
            continue
        array = np.ascontiguousarray(array)
        offset = _align(offset)
        view = memoryview(array).cast("B")
        table.append(
            {
                "name": str(name),
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": offset,
                "nbytes": int(array.nbytes),
                "checksum": checksum(view) if array.nbytes else 0,
            }
        )
        segments.append((offset, array))
        offset += int(array.nbytes)

    header = {
        "format_version": FORMAT_VERSION,
        "checksum_algorithm": CHECKSUM_ALGORITHM,
        "meta": meta or {},
        "arrays": table,
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    data_start = _align(_PREAMBLE.size + len(header_bytes))

    tmp = path + ".tmp"
    with opener(tmp, "wb") as handle:
        handle.write(
            _PREAMBLE.pack(MAGIC, len(header_bytes), zlib.crc32(header_bytes) & 0xFFFFFFFF)
        )
        handle.write(header_bytes)
        position = _PREAMBLE.size + len(header_bytes)
        for relative, array in segments:
            target = data_start + relative
            if target > position:
                handle.write(b"\x00" * (target - position))
            handle.write(memoryview(array).cast("B"))
            position = target + int(array.nbytes)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    os.replace(tmp, path)
    if fsync:
        fsync_directory(os.path.dirname(path))


def read_header(path) -> tuple[dict, int]:
    """Validate and parse a snapshot header; return ``(header, data_start)``."""
    path = os.fspath(path)
    with open(path, "rb") as handle:
        preamble = handle.read(_PREAMBLE.size)
        if len(preamble) < _PREAMBLE.size:
            raise SnapshotCorruptError(f"{path}: truncated before the header preamble")
        magic, header_len, header_crc = _PREAMBLE.unpack(preamble)
        if magic != MAGIC:
            raise SnapshotCorruptError(f"{path}: bad magic {magic!r} (not a snapshot file)")
        header_bytes = handle.read(header_len)
    if len(header_bytes) != header_len or (zlib.crc32(header_bytes) & 0xFFFFFFFF) != header_crc:
        raise SnapshotCorruptError(f"{path}: header failed its checksum")
    try:
        header = json.loads(header_bytes)
    except ValueError as exc:
        raise SnapshotCorruptError(f"{path}: header is not valid JSON") from exc
    version = header.get("format_version")
    if version != FORMAT_VERSION:
        raise SnapshotCorruptError(
            f"{path}: unsupported snapshot format version {version!r}"
        )
    return header, _align(_PREAMBLE.size + header_len)


def load_arrays(path, mmap: bool = True, verify: bool = True) -> tuple[dict, dict]:
    """Load a snapshot written by :func:`save_arrays`.

    Returns ``(arrays, meta)``.  With ``mmap=True`` every array is a
    read-only ``np.memmap`` view (lazy page-in); otherwise the segments are
    read eagerly into read-only in-memory arrays.  ``verify=True`` checks
    every segment's checksum and raises :class:`SnapshotCorruptError` on the
    first mismatch.
    """
    path = os.fspath(path)
    header, data_start = read_header(path)
    check = resolve_checksum(header["checksum_algorithm"])
    file_size = os.path.getsize(path)
    arrays: dict[str, np.ndarray] = {}
    eager_handle = None if mmap else open(path, "rb")
    try:
        for entry in header["arrays"]:
            name = entry["name"]
            dtype = np.dtype(entry["dtype"])
            shape = tuple(entry["shape"])
            nbytes = int(entry["nbytes"])
            start = data_start + int(entry["offset"])
            if start + nbytes > file_size:
                raise SnapshotCorruptError(
                    f"{path}: array {name!r} extends past the end of the file"
                )
            if nbytes == 0:
                array = np.empty(shape, dtype=dtype)
                array.setflags(write=False)
            elif mmap:
                array = np.memmap(path, mode="r", dtype=dtype, offset=start, shape=shape)
            else:
                eager_handle.seek(start)
                buffer = eager_handle.read(nbytes)
                if len(buffer) != nbytes:
                    raise SnapshotCorruptError(f"{path}: short read of array {name!r}")
                array = np.frombuffer(buffer, dtype=dtype).reshape(shape)
            if verify and nbytes:
                if check(memoryview(array).cast("B")) != entry["checksum"]:
                    raise SnapshotCorruptError(
                        f"{path}: array {name!r} failed its checksum"
                    )
            arrays[name] = array
    finally:
        if eager_handle is not None:
            eager_handle.close()
    return arrays, header.get("meta", {})


# ---------------------------------------------------------------------- #
# FlatAIT persistence
# ---------------------------------------------------------------------- #
def flat_to_arrays(flat: FlatAIT, prefix: str = "") -> dict:
    """The persistable array table of a snapshot (core + derived rank keys)."""
    out: dict[str, np.ndarray] = {}
    for file_name, attr in _FLAT_CORE_FIELDS + _FLAT_RANK_FIELDS:
        out[prefix + file_name] = getattr(flat, attr)
    return out


def flat_from_arrays(arrays: dict, weighted: bool, prefix: str = "", kernel_backend=None) -> FlatAIT:
    """Reassemble a :class:`FlatAIT` from loaded (possibly mmap-backed) arrays.

    Thin file-schema wrapper over :meth:`FlatAIT.from_buffers` (which adopts
    saved rank-key pools instead of recomputing them — recomputation would
    touch every page of an mmap-backed file, defeating lazy load): strips the
    name ``prefix`` and maps a malformed weighted snapshot onto the
    persistence error contract.
    """
    named = {
        name: arrays.get(prefix + name)
        for name, _ in _FLAT_CORE_FIELDS + _FLAT_RANK_FIELDS
    }
    if named["all_weight_prefix"] is None and weighted:
        raise SnapshotCorruptError(
            "weighted snapshot is missing its all_weight_prefix array"
        )
    return FlatAIT.from_buffers(named, weighted, kernel_backend=kernel_backend)


def save_flat(flat: FlatAIT, path, fsync: bool = True, opener=open) -> None:
    """Write one :class:`FlatAIT` to a standalone snapshot file."""
    save_arrays(
        path,
        flat_to_arrays(flat),
        meta={"kind": "flat_ait", "weighted": bool(flat.is_weighted)},
        fsync=fsync,
        opener=opener,
    )


def load_flat(path, mmap: bool = True, verify: bool = True, kernel_backend=None) -> FlatAIT:
    """Load a standalone :class:`FlatAIT` snapshot written by :func:`save_flat`."""
    arrays, meta = load_arrays(path, mmap=mmap, verify=verify)
    if meta.get("kind") != "flat_ait":
        raise SnapshotCorruptError(
            f"{os.fspath(path)}: not a FlatAIT snapshot (kind={meta.get('kind')!r})"
        )
    return flat_from_arrays(
        arrays, bool(meta.get("weighted", False)), kernel_backend=kernel_backend
    )
