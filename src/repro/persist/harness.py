"""Kill-and-recover harness: SIGKILL a durable ingest, reopen, verify.

The strongest claim the durability layer makes is behavioural, not
structural: *every write acknowledged under ``fsync="always"`` before a hard
kill is present, bit-for-bit, in the reopened engine*.  This module turns
that claim into a runnable check shared by the pytest suite
(``tests/test_recovery_kill.py``) and the recovery benchmark/CI smoke step
(``scripts/bench_recovery.py``):

* :func:`ingest_child_main` is the victim process: it opens the snapshot
  directory with ``fsync="always"``, applies a *deterministic* op stream
  (seeded inserts with interleaved deletes) in small batches, and prints
  ``ACK <ops>`` after each batch — by construction every acked op's WAL
  record has been fsynced.  It runs until killed.
* :func:`run_kill_and_recover` is the orchestrator: prepare a base engine
  and snapshot directory, spawn the child, ``SIGKILL`` it after a number of
  acks, reopen the directory, and verify against an **oracle**.

Because the op stream is a pure function of the seed, the parent can
regenerate any prefix of it.  The kill may land between a batch's fsync and
its ACK line, so the recovered engine holds some prefix of length
``L ∈ [acked, acked + batch]`` — the verifier builds an oracle engine for
each candidate ``L`` in that window and requires that **some** candidate
matches ``count_many`` bit-for-bit (and that ``L >= acked``: nothing
acknowledged was lost).  A chi-square uniformity check on ``sample_many``
draws from the recovered engine completes the statistical half of the
contract.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import numpy as np

from ..core.dataset import IntervalDataset
from ..stats.uniformity import chi_square_uniformity

__all__ = ["deterministic_ops", "ingest_child_main", "run_kill_and_recover"]

#: Fraction of ops that are deletes (of a previously inserted id).
_DELETE_EVERY = 4


def make_base_dataset(n: int, seed: int, domain: float = 1e6) -> IntervalDataset:
    """The deterministic base dataset shared by victim, oracle and verifier."""
    rng = np.random.default_rng(seed)
    lefts = rng.uniform(0.0, domain, size=n)
    lengths = rng.exponential(domain / 100.0, size=n)
    return IntervalDataset(lefts, lefts + lengths)


def deterministic_ops(seed: int, count: int, base_n: int, domain: float = 1e6) -> list:
    """The first ``count`` ops of the seeded stream.

    Returns ``("insert", left, right)`` / ``("delete", global_id)`` tuples.
    Global ids are assigned sequentially from ``base_n`` by the engine, so
    the stream can reference its own earlier inserts deterministically;
    every op is a pure function of ``(seed, position)``.
    """
    rng = np.random.default_rng(seed + 1)
    ops: list = []
    inserted: list[int] = []
    deleted = 0
    next_global = base_n
    for position in range(count):
        if position % _DELETE_EVERY == _DELETE_EVERY - 1 and len(inserted) > deleted:
            victim = inserted[deleted]
            deleted += 1
            ops.append(("delete", victim))
            # Keep the RNG stream aligned regardless of op kind.
            rng.uniform(0.0, domain, size=2)
        else:
            left = float(rng.uniform(0.0, domain))
            length = float(rng.uniform(0.0, domain / 100.0))
            ops.append(("insert", left, left + length))
            inserted.append(next_global)
            next_global += 1
    return ops


def apply_ops(engine, ops: list) -> None:
    """Apply a prefix of the deterministic stream through the engine API."""
    for op in ops:
        if op[0] == "insert":
            engine.insert_many([op[1]], [op[2]])
        else:
            engine.delete_many([op[1]])


def ingest_child_main(argv: list[str]) -> int:
    """Victim process entry point: durable ingest forever, ACK per batch.

    ``argv``: ``<snapshot_dir> <seed> <base_n> <batch>``.  Invoked as
    ``python -m repro.persist.harness ...``.
    """
    from ..service.engine import ShardedEngine

    directory, seed, base_n, batch = (
        argv[0], int(argv[1]), int(argv[2]), int(argv[3])
    )
    engine = ShardedEngine.open(directory, fsync="always")
    ops_done = 0
    while True:
        ops = deterministic_ops(seed, ops_done + batch, base_n)[ops_done:]
        apply_ops(engine, ops)
        ops_done += batch
        # fsync="always" means every record above is already on disk: this
        # ACK is the acknowledgement the parent holds us to after SIGKILL.
        sys.stdout.write(f"ACK {ops_done}\n")
        sys.stdout.flush()


def _query_workload(seed: int, count: int, domain: float = 1e6) -> np.ndarray:
    rng = np.random.default_rng(seed + 2)
    lefts = rng.uniform(0.0, domain, size=count)
    widths = rng.uniform(0.0, domain / 10.0, size=count)
    return np.stack((lefts, lefts + widths), axis=1)


def run_kill_and_recover(
    directory,
    base_n: int = 10_000,
    seed: int = 42,
    batch: int = 8,
    kill_after_acks: int = 6,
    num_shards: int = 4,
    query_count: int = 64,
    sample_size: int = 64,
    timeout: float = 120.0,
) -> dict:
    """Run the full SIGKILL-mid-ingest scenario; return a verification report.

    Raises ``AssertionError`` with a specific message when any part of the
    acknowledged => recovered contract fails.
    """
    from ..service.engine import ShardedEngine

    directory = os.fspath(directory)
    dataset = make_base_dataset(base_n, seed)
    base_engine = ShardedEngine(dataset, num_shards=num_shards)
    base_engine.save_snapshot(directory)
    base_engine.close()

    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    child = subprocess.Popen(
        [sys.executable, "-m", "repro.persist.harness",
         directory, str(seed), str(base_n), str(batch)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    acked_ops = 0
    deadline = time.monotonic() + timeout
    try:
        while acked_ops < kill_after_acks * batch:
            if time.monotonic() > deadline:
                raise AssertionError("ingest child produced no ACKs before timeout")
            line = child.stdout.readline()
            if not line:
                stderr = child.stderr.read()
                raise AssertionError(f"ingest child exited early: {stderr[-2000:]}")
            if line.startswith("ACK "):
                acked_ops = int(line.split()[1])
    finally:
        if child.poll() is None:
            os.kill(child.pid, signal.SIGKILL)
        child.wait()
        child.stdout.close()
        child.stderr.close()

    recovered = ShardedEngine.open(directory, fsync="none")
    try:
        queries = _query_workload(seed, query_count)
        recovered_counts = recovered.count_many(queries)

        # The kill can land between a batch's fsync and its ACK, so the
        # durable prefix is some L in [acked, acked + batch].  Exactly one
        # candidate oracle must match bit-for-bit.
        matched_prefix = None
        for prefix in range(acked_ops, acked_ops + batch + 1):
            oracle = ShardedEngine(dataset, num_shards=num_shards)
            apply_ops(oracle, deterministic_ops(seed, prefix, base_n))
            oracle_counts = oracle.count_many(queries)
            size_matches = oracle.size == recovered.size
            oracle.close()
            if size_matches and np.array_equal(oracle_counts, recovered_counts):
                matched_prefix = prefix
                break
        if matched_prefix is None:
            raise AssertionError(
                f"recovered engine matches no durable prefix in "
                f"[{acked_ops}, {acked_ops + batch}] of the op stream"
            )

        # Statistical half: sample_many over the recovered engine must draw
        # uniformly from each query's true result set.
        sample_ok = True
        worst_p = 1.0
        for row in range(min(4, query_count)):
            population = recovered.report_many(queries[row : row + 1])[0]
            if population.shape[0] < 2:
                continue
            draws = np.concatenate(
                [
                    recovered.sample_many(
                        queries[row : row + 1], sample_size, random_state=seed + trial
                    )[0]
                    for trial in range(8)
                ]
            )
            fit = chi_square_uniformity(draws, population)
            worst_p = min(worst_p, fit.p_value)
            if fit.rejects_uniformity(alpha=1e-6):
                sample_ok = False
        if not sample_ok:
            raise AssertionError(
                f"recovered sample_many failed the chi-square uniformity check "
                f"(worst p={worst_p:.2e})"
            )
    finally:
        recovered.close()

    return {
        "base_n": base_n,
        "acked_ops": acked_ops,
        "recovered_ops": matched_prefix,
        "recovered_size": int(recovered.size),
        "sample_worst_p": float(worst_p),
        "ok": True,
    }


if __name__ == "__main__":  # pragma: no cover - subprocess entry point
    raise SystemExit(ingest_child_main(sys.argv[1:]))
