"""Checksum backend for the durability layer.

Snapshot and WAL files are self-describing: every header records which
checksum algorithm produced its digests, and :func:`resolve_checksum` maps
that name back to an implementation at read time.  The preferred algorithm
is CRC32C (the Castagnoli polynomial used by ext4, iSCSI and most modern
storage formats) when a C implementation is importable; otherwise the files
fall back to ``zlib.crc32`` — also C speed, also 32-bit, just a different
polynomial.  A pure-Python CRC32C would be orders of magnitude too slow for
the hundreds of megabytes a 1M-interval snapshot holds, and this repo cannot
add dependencies, so the fallback is gated at import time rather than
vendored.

Both functions share the signature ``checksum(data, value=0) -> int`` and
return an unsigned 32-bit integer, so callers can stream large buffers
chunk by chunk.
"""

from __future__ import annotations

import zlib
from typing import Callable

__all__ = ["CHECKSUM_ALGORITHM", "checksum", "resolve_checksum"]

Checksum = Callable[..., int]


def _crc32(data, value: int = 0) -> int:
    return zlib.crc32(data, value) & 0xFFFFFFFF

try:  # pragma: no cover - environment dependent
    import crc32c as _crc32c_module

    def _crc32c(data, value: int = 0) -> int:
        return _crc32c_module.crc32c(data, value) & 0xFFFFFFFF

    CHECKSUM_ALGORITHM = "crc32c"
    checksum: Checksum = _crc32c
except ImportError:  # pragma: no cover - environment dependent
    try:
        import google_crc32c as _google_crc32c

        def _crc32c(data, value: int = 0) -> int:
            return _google_crc32c.extend(value, bytes(data)) & 0xFFFFFFFF

        CHECKSUM_ALGORITHM = "crc32c"
        checksum = _crc32c
    except ImportError:
        CHECKSUM_ALGORITHM = "crc32"
        checksum = _crc32

_ALGORITHMS: dict[str, Checksum] = {CHECKSUM_ALGORITHM: checksum, "crc32": _crc32}


def resolve_checksum(algorithm: str) -> Checksum:
    """Return the checksum function for a header-declared algorithm name.

    Raises ``ValueError`` when the file was written with an algorithm this
    runtime cannot compute (e.g. a ``crc32c`` file read on a box without a
    C crc32c implementation).
    """
    try:
        return _ALGORITHMS[algorithm]
    except KeyError:
        raise ValueError(
            f"unsupported checksum algorithm {algorithm!r}; this runtime "
            f"supports {sorted(_ALGORITHMS)}"
        ) from None
