"""DeltaLog — an append-only, checksummed write-ahead log for shard writes.

Layout::

    offset 0   magic  b"RPRWAL1\\x00"                     (8 bytes)
    offset 8   format version                             (u32 LE)
    offset 12  epoch (snapshot generation this log extends) (u64 LE)
    offset 20  record checksum algorithm name, NUL-padded (8 bytes)
    offset 28  header CRC (always zlib.crc32 of bytes 0..28) (u32 LE)
    records    [u32 body length][u32 body checksum][body] ...

Like the snapshot container, the log is self-describing about its record
checksums: the header names the algorithm (``crc32c`` when a C
implementation was importable at write time, ``crc32`` otherwise) and
readers resolve that name via :func:`repro.persist.checksum.resolve_checksum`
— never the current runtime's preference.  Without this, a log written
under one algorithm and scanned under the other would fail every record
check and be mistaken for an all-torn tail, silently truncating
acknowledged writes.  The header CRC itself is pinned to ``zlib.crc32`` so
the algorithm field is readable before any resolution happens.  Appends to
a reopened log keep using the algorithm recorded in its header, so a file
never mixes algorithms.

Record bodies are raw little-endian arrays behind a one-byte kind tag:

* kind ``1`` (``insert_many``): ``u64 n`` + ``n`` int64 global ids +
  ``n`` float64 lefts + ``n`` float64 rights;
* kind ``2`` (``delete_many``): ``u64 n`` + ``n`` int64 global ids.

Every record is written with a **single** ``write()`` call, so a crash can
tear at most the final record — and the torn tail always fails its length
or checksum test.  :meth:`DeltaLog.scan` exploits that: it replays records
until the first short or corrupt one and reports how many bytes were valid,
*never* raising for a damaged tail (a bad file *header* is different — that
means the log was never created properly, and raises
:class:`~repro.core.errors.WALCorruptError`).

Durability is a policy, not a constant:

* ``"always"`` — fsync after every append; an acknowledged write survives
  an immediate ``SIGKILL`` or power loss.
* ``"batch"`` — appends are flushed to the OS but fsynced only when
  :meth:`DeltaLog.sync` is called (the gateway syncs once per micro-batch,
  before completing the write futures).
* ``"none"`` — no fsync; durability is best-effort (OS page cache).
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Optional

import numpy as np

from ..core.errors import WALCorruptError
from .checksum import CHECKSUM_ALGORITHM, resolve_checksum

__all__ = ["DeltaLog", "WAL_MAGIC", "WAL_FORMAT_VERSION", "FSYNC_POLICIES"]

WAL_MAGIC = b"RPRWAL1\x00"
# v2 added the record-checksum algorithm name to the header; v1 (which left
# readers guessing the algorithm) never shipped and is rejected.
WAL_FORMAT_VERSION = 2
FSYNC_POLICIES = ("always", "batch", "none")

_HEADER = struct.Struct("<8sIQ8s")  # magic, version, epoch, checksum algorithm
_HEADER_CRC = struct.Struct("<I")
HEADER_SIZE = _HEADER.size + _HEADER_CRC.size
_RECORD_PREFIX = struct.Struct("<II")  # body length, body checksum

_KIND_INSERT = 1
_KIND_DELETE = 2

_ID = np.dtype("<i8")
_F8 = np.dtype("<f8")
_U64 = struct.Struct("<Q")


def _header_bytes(epoch: int, algorithm: str) -> bytes:
    name = algorithm.encode("ascii")
    if not name or len(name) > 8:
        raise ValueError(f"checksum algorithm name {algorithm!r} must pack into 8 bytes")
    body = _HEADER.pack(WAL_MAGIC, WAL_FORMAT_VERSION, int(epoch), name)
    return body + _HEADER_CRC.pack(zlib.crc32(body) & 0xFFFFFFFF)


def _parse_header(raw: bytes, path: str) -> tuple[int, str]:
    """Validate a WAL header; return ``(epoch, checksum algorithm name)``.

    Raises WALCorruptError for anything that makes the header unreadable.
    """
    if len(raw) < HEADER_SIZE:
        raise WALCorruptError(f"{path}: truncated WAL header")
    magic, version, epoch, algorithm = _HEADER.unpack(raw[: _HEADER.size])
    (crc,) = _HEADER_CRC.unpack(raw[_HEADER.size : HEADER_SIZE])
    if magic != WAL_MAGIC:
        raise WALCorruptError(f"{path}: bad WAL magic {magic!r}")
    if (zlib.crc32(raw[: _HEADER.size]) & 0xFFFFFFFF) != crc:
        raise WALCorruptError(f"{path}: WAL header failed its checksum")
    if version != WAL_FORMAT_VERSION:
        raise WALCorruptError(f"{path}: unsupported WAL format version {version}")
    return int(epoch), algorithm.rstrip(b"\x00").decode("ascii", "replace")


def _resolve_record_checksum(algorithm: str, path: str):
    """The checksum function named by a WAL header.

    Raising beats truncating here: a log whose algorithm this runtime cannot
    compute (e.g. a ``crc32c`` file on a box that lost its crc32c wheel)
    would fail *every* record check, and treating that as a torn tail would
    silently destroy acknowledged writes.
    """
    try:
        return resolve_checksum(algorithm)
    except ValueError as exc:
        raise WALCorruptError(f"{path}: cannot verify WAL records: {exc}") from exc


def _decode_body(body: bytes):
    """Decode one validated record body; returns a delta-op tuple or None."""
    kind = body[0]
    cursor = 1
    (count,) = _U64.unpack_from(body, cursor)
    cursor += _U64.size
    ids = np.frombuffer(body, dtype=_ID, count=count, offset=cursor).astype(np.int64)
    cursor += count * 8
    if kind == _KIND_INSERT:
        lefts = np.frombuffer(body, dtype=_F8, count=count, offset=cursor).astype(np.float64)
        cursor += count * 8
        rights = np.frombuffer(body, dtype=_F8, count=count, offset=cursor).astype(np.float64)
        return ("insert_many", ids, lefts, rights)
    if kind == _KIND_DELETE:
        return ("delete_many", ids)
    return None  # unknown kind: treat like a torn tail (forward compatibility)


class DeltaLog:
    """Append-only durable journal of one shard's buffered write batches."""

    def __init__(self, path, fsync: str = "batch", epoch: int = 0, *,
                 create: bool = True, opener=open) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}")
        self._path = os.fspath(path)
        self._fsync = fsync
        self._opener = opener
        self._closed = False
        exists = os.path.exists(self._path) and os.path.getsize(self._path) > 0
        if exists:
            with open(self._path, "rb") as handle:
                self._epoch, self._algorithm = _parse_header(
                    handle.read(HEADER_SIZE), self._path
                )
            # Appends continue with the algorithm the file was created with,
            # so one log never mixes record-checksum algorithms.
            self._checksum = _resolve_record_checksum(self._algorithm, self._path)
            self._file = opener(self._path, "ab")
        elif create:
            self._epoch = int(epoch)
            self._algorithm = CHECKSUM_ALGORITHM
            self._checksum = resolve_checksum(self._algorithm)
            self._file = opener(self._path, "wb")
            self._file.write(_header_bytes(self._epoch, self._algorithm))
            self._file.flush()
            if fsync != "none":
                os.fsync(self._file.fileno())
        else:
            raise FileNotFoundError(self._path)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def path(self) -> str:
        return self._path

    @property
    def epoch(self) -> int:
        """Snapshot generation this log extends."""
        return self._epoch

    @property
    def fsync_policy(self) -> str:
        return self._fsync

    @property
    def checksum_algorithm(self) -> str:
        """Record-checksum algorithm recorded in (and enforced by) the header."""
        return self._algorithm

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DeltaLog({self._path!r}, epoch={self._epoch}, fsync={self._fsync!r})"

    # ------------------------------------------------------------------ #
    # appends
    # ------------------------------------------------------------------ #
    def _append(self, body: bytes) -> None:
        prefix = _RECORD_PREFIX.pack(len(body), self._checksum(body))
        # One write() per record: a crash tears at most the final record,
        # and a torn record always fails its length or checksum test.
        self._file.write(prefix + body)
        self._file.flush()
        if self._fsync == "always":
            os.fsync(self._file.fileno())

    def append_insert(self, global_ids, lefts, rights) -> None:
        """Journal one ``insert_many`` batch (before it is acknowledged)."""
        ids = np.ascontiguousarray(global_ids, dtype=_ID)
        lefts = np.ascontiguousarray(lefts, dtype=_F8)
        rights = np.ascontiguousarray(rights, dtype=_F8)
        body = b"".join(
            (
                bytes([_KIND_INSERT]),
                _U64.pack(ids.shape[0]),
                ids.tobytes(),
                lefts.tobytes(),
                rights.tobytes(),
            )
        )
        self._append(body)

    def append_delete(self, global_ids) -> None:
        """Journal one ``delete_many`` batch (before it is acknowledged)."""
        ids = np.ascontiguousarray(global_ids, dtype=_ID)
        body = bytes([_KIND_DELETE]) + _U64.pack(ids.shape[0]) + ids.tobytes()
        self._append(body)

    def sync(self) -> None:
        """Force everything appended so far to stable storage (fsync)."""
        if self._closed or self._fsync == "none":
            return
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self, sync: bool = True) -> None:
        """Flush (and by default fsync) then close the log.  Idempotent."""
        if self._closed:
            return
        if sync:
            self.sync()
        self._closed = True
        self._file.close()

    # ------------------------------------------------------------------ #
    # recovery
    # ------------------------------------------------------------------ #
    @staticmethod
    def scan(path) -> tuple[int, list, int]:
        """Replay a WAL tolerantly; return ``(epoch, records, valid_bytes)``.

        Stops at the first short, torn, or checksum-failing record and
        reports how many bytes were valid — it never raises for a damaged
        *tail*.  A missing or empty file yields no records.  A present but
        corrupt *header* raises :class:`WALCorruptError` (the file was never
        a valid log, so silently ignoring it would hide real data loss).
        """
        path = os.fspath(path)
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            return 0, [], 0
        if len(raw) == 0:
            return 0, [], 0
        if len(raw) < HEADER_SIZE:
            # Crash while creating the log: header itself is the torn tail.
            return 0, [], 0
        epoch, algorithm = _parse_header(raw[:HEADER_SIZE], path)
        check = _resolve_record_checksum(algorithm, path)
        records: list = []
        cursor = HEADER_SIZE
        total = len(raw)
        while cursor + _RECORD_PREFIX.size <= total:
            body_len, body_crc = _RECORD_PREFIX.unpack_from(raw, cursor)
            body_start = cursor + _RECORD_PREFIX.size
            body_end = body_start + body_len
            if body_len == 0 or body_end > total:
                break  # torn/truncated tail
            body = raw[body_start:body_end]
            if check(body) != body_crc:
                break  # corrupt tail: stop, keep everything before it
            try:
                decoded = _decode_body(body)
            except (ValueError, IndexError, struct.error):
                decoded = None  # checksum collision on garbage: treat as torn
            if decoded is None:
                break
            records.append(decoded)
            cursor = body_end
        return epoch, records, cursor

    @classmethod
    def recover(cls, path, fsync: str = "batch", epoch: int = 0,
                opener=open) -> tuple["DeltaLog", list]:
        """Scan ``path``, truncate any torn tail, and reopen for appends.

        Returns ``(log, records)`` where ``records`` are the valid delta ops
        in append order.  Creates a fresh log (with ``epoch``) when the file
        is missing or empty.
        """
        path = os.fspath(path)
        if not os.path.exists(path) or os.path.getsize(path) == 0:
            return cls(path, fsync=fsync, epoch=epoch, opener=opener), []
        found_epoch, records, valid_bytes = cls.scan(path)
        if valid_bytes < HEADER_SIZE:
            # Torn during creation: rewrite from scratch at the given epoch.
            os.unlink(path)
            return cls(path, fsync=fsync, epoch=epoch, opener=opener), []
        size = os.path.getsize(path)
        if valid_bytes < size:
            with open(path, "r+b") as handle:
                handle.truncate(valid_bytes)
                handle.flush()
                os.fsync(handle.fileno())
        return cls(path, fsync=fsync, epoch=found_epoch, opener=opener), records

    def __enter__(self) -> "DeltaLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def wal_epoch(path) -> Optional[int]:
    """Epoch recorded in a WAL header, or None when missing/empty/torn-at-birth."""
    try:
        with open(os.fspath(path), "rb") as handle:
            raw = handle.read(HEADER_SIZE)
    except FileNotFoundError:
        return None
    if len(raw) < HEADER_SIZE:
        return None
    return _parse_header(raw, os.fspath(path))[0]
