"""Durability layer: checksummed snapshots, write-ahead logs, crash recovery.

Three cooperating pieces (see ``docs/ARCHITECTURE.md`` § Durability):

* **Snapshots** (:mod:`repro.persist.snapshot`) — versioned, page-aligned,
  per-array-checksummed containers.  ``FlatAIT.save/load`` persist one flat
  index (mmap-backed, lazy page-in on load);
  :func:`~repro.persist.durable.save_engine_snapshot` /
  :func:`~repro.persist.durable.open_engine` (surfaced as
  ``ShardedEngine.save_snapshot`` / ``ShardedEngine.open``) checkpoint a
  whole engine as an epoch of files committed by a manifest rename.
* **Write-ahead log** (:mod:`repro.persist.wal`) — :class:`DeltaLog`
  journals every buffered write batch before it enters a shard's in-memory
  delta log, with a configurable fsync policy; recovery replays the log
  chain on top of the newest valid snapshot, tolerating torn tails.
* **Fault injection** (:mod:`repro.persist.faults`, :mod:`repro.persist.harness`)
  — deterministic partial-write/corruption wrappers and the SIGKILL
  kill-and-recover harness that verifies the acknowledged => recovered
  contract end to end.
"""

from .checksum import CHECKSUM_ALGORITHM, checksum, resolve_checksum
from .durable import open_engine, save_engine_snapshot, snapshot_epochs
from .faults import FaultInjector, FaultyFile, WriteFault, flip_byte, truncate_file
from .snapshot import load_arrays, load_flat, save_arrays, save_flat
from .wal import FSYNC_POLICIES, DeltaLog

__all__ = [
    "CHECKSUM_ALGORITHM",
    "checksum",
    "resolve_checksum",
    "save_arrays",
    "load_arrays",
    "save_flat",
    "load_flat",
    "DeltaLog",
    "FSYNC_POLICIES",
    "save_engine_snapshot",
    "open_engine",
    "snapshot_epochs",
    "FaultInjector",
    "FaultyFile",
    "WriteFault",
    "flip_byte",
    "truncate_file",
]
