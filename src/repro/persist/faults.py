"""Fault injection for the durability layer.

The recovery guarantees in :mod:`repro.persist` are claims about what
survives *partial* I/O — a write that dies halfway, a tail that never made
it to disk, a page that came back flipped.  This module makes those
situations reproducible in-process:

* :class:`FaultyFile` wraps a real file object and injects faults at exact
  byte offsets: fail the write that crosses byte ``N``, silently drop
  everything past ``N`` (a torn tail), or serve short reads.
* :class:`FaultInjector` is an ``open``-compatible factory of
  :class:`FaultyFile` objects — pass it as the ``opener`` argument of
  :func:`~repro.persist.snapshot.save_arrays` or
  :class:`~repro.persist.wal.DeltaLog` to aim faults at a specific file.
* :func:`flip_byte` / :func:`truncate_file` corrupt files *after* the fact,
  simulating media errors and torn tails on already-written data.

Everything here is deterministic — no RNG, no timing — so every fault test
is exactly reproducible.
"""

from __future__ import annotations

import os

__all__ = ["FaultyFile", "FaultInjector", "WriteFault", "flip_byte", "truncate_file"]


class WriteFault(OSError):
    """The injected I/O error raised by :class:`FaultyFile` writes."""


class FaultyFile:
    """A file wrapper that injects write/read faults at byte offsets.

    Parameters
    ----------
    handle:
        The real (binary) file object being wrapped.
    fail_write_at:
        Total written-byte offset at which writes start failing.  The write
        that crosses the offset writes the prefix up to it (modelling a
        torn sector) and then raises :class:`WriteFault`; later writes fail
        immediately.
    torn_after:
        Like ``fail_write_at`` but *silent*: bytes past the offset are
        dropped without an error, as if the process died before the page
        reached disk.  The writer believes the write succeeded.
    short_read_at:
        Total read-byte offset after which ``read()`` returns empty results,
        modelling a file that is shorter than its metadata claims.
    """

    def __init__(self, handle, fail_write_at: int | None = None,
                 torn_after: int | None = None, short_read_at: int | None = None) -> None:
        self._handle = handle
        self._fail_write_at = fail_write_at
        self._torn_after = torn_after
        self._short_read_at = short_read_at
        self.bytes_written = 0
        self.bytes_read = 0

    # -- write path ----------------------------------------------------- #
    def write(self, data) -> int:
        data = bytes(data)
        length = len(data)
        if self._fail_write_at is not None:
            if self.bytes_written >= self._fail_write_at:
                raise WriteFault(f"injected write failure at byte {self.bytes_written}")
            if self.bytes_written + length > self._fail_write_at:
                keep = self._fail_write_at - self.bytes_written
                self._handle.write(data[:keep])
                self.bytes_written += keep
                raise WriteFault(f"injected write failure at byte {self._fail_write_at}")
        if self._torn_after is not None:
            if self.bytes_written >= self._torn_after:
                self.bytes_written += length  # silently dropped
                return length
            if self.bytes_written + length > self._torn_after:
                keep = self._torn_after - self.bytes_written
                self._handle.write(data[:keep])
                self.bytes_written += length
                return length
        self._handle.write(data)
        self.bytes_written += length
        return length

    # -- read path ------------------------------------------------------ #
    def read(self, size: int = -1) -> bytes:
        if self._short_read_at is not None:
            budget = self._short_read_at - self.bytes_read
            if budget <= 0:
                return b""
            if size < 0 or size > budget:
                size = budget
        data = self._handle.read(size)
        self.bytes_read += len(data)
        return data

    # -- passthrough ---------------------------------------------------- #
    def flush(self) -> None:
        self._handle.flush()

    def fileno(self) -> int:
        return self._handle.fileno()

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:
        return self._handle.seek(offset, whence)

    def tell(self) -> int:
        return self._handle.tell()

    def truncate(self, size: int | None = None) -> int:
        return self._handle.truncate(size)

    def close(self) -> None:
        self._handle.close()

    @property
    def closed(self) -> bool:
        return self._handle.closed

    def __enter__(self) -> "FaultyFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class FaultInjector:
    """An ``open``-compatible factory that wraps matching files in faults.

    Parameters mirror :class:`FaultyFile`; ``match`` is an optional
    substring filter on the path, so one injector can target just the WAL
    (or just one shard's snapshot) while other files open normally.  Only
    the first ``limit`` matching opens are faulted (default: all).

    Examples
    --------
    >>> import tempfile, os
    >>> injector = FaultInjector(fail_write_at=4)
    >>> path = os.path.join(tempfile.mkdtemp(), "x.bin")
    >>> f = injector(path, "wb")
    >>> try:
    ...     f.write(b"0123456789")
    ... except WriteFault:
    ...     print("faulted")
    ... finally:
    ...     f.close()
    faulted
    >>> os.path.getsize(path)
    4
    """

    def __init__(self, fail_write_at: int | None = None, torn_after: int | None = None,
                 short_read_at: int | None = None, match: str = "",
                 limit: int | None = None) -> None:
        self._fail_write_at = fail_write_at
        self._torn_after = torn_after
        self._short_read_at = short_read_at
        self._match = match
        self._limit = limit
        self.faulted_opens = 0
        self.total_opens = 0

    def __call__(self, path, mode: str = "rb", *args, **kwargs):
        self.total_opens += 1
        handle = open(path, mode, *args, **kwargs)
        if self._match and self._match not in os.fspath(path):
            return handle
        if self._limit is not None and self.faulted_opens >= self._limit:
            return handle
        self.faulted_opens += 1
        return FaultyFile(
            handle,
            fail_write_at=self._fail_write_at,
            torn_after=self._torn_after,
            short_read_at=self._short_read_at,
        )


def flip_byte(path, offset: int, mask: int = 0xFF) -> None:
    """XOR one byte of an existing file (simulated media corruption)."""
    with open(path, "r+b") as handle:
        handle.seek(offset)
        original = handle.read(1)
        if not original:
            raise ValueError(f"offset {offset} is past the end of {os.fspath(path)}")
        handle.seek(offset)
        handle.write(bytes([original[0] ^ mask]))


def truncate_file(path, keep_bytes: int) -> None:
    """Chop a file to ``keep_bytes`` (simulated torn tail on existing data)."""
    with open(path, "r+b") as handle:
        handle.truncate(keep_bytes)
