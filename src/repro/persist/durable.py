"""Engine-level durability: epoch snapshots, manifests, and WAL recovery.

A snapshot *directory* holds a sequence of **epochs**.  Epoch ``e`` consists
of::

    shard-<k>-<e>.snap     per-shard snapshot (flat arrays + tree columns + id map)
    engine-<e>.state       engine bookkeeping (owner map, tombstones, cursors)
    wal-<e>-shard<k>.log   the delta log that extends epoch e (one per shard)
    MANIFEST-<e>.json      the commit record, written last via rename

The manifest rename is the commit point: every other file of the epoch is
fully written and fsynced before it appears, so a crash anywhere inside
:func:`save_engine_snapshot` leaves the previous epoch (and its WAL chain)
untouched and authoritative.

Recovery (:func:`open_engine`) walks manifests newest-first and restores the
first epoch whose files all pass validation, then replays **every** WAL with
epoch >= the restored one, oldest first — epochs partition time, so the
concatenated logs replay the exact acknowledged write sequence.  Torn WAL
tails are truncated, never fatal.  Replayed writes land in the shards'
in-memory delta logs and fold into the snapshots through the ordinary
incremental refresh at the next batch boundary.

Crash-consistency argument (the "acknowledged => recovered" contract):

1. a write is acknowledged only after its WAL record is appended (and, per
   fsync policy, fsynced) to the WAL of the current epoch ``t``;
2. ``save_engine_snapshot`` first folds every buffered write into the new
   epoch's snapshot files, then creates the empty epoch-``e`` WALs, and only
   then commits ``MANIFEST-<e>``;
3. hence for any recovery base ``b``: an acknowledged write either predates
   epoch ``b`` (it is inside the epoch-``b`` snapshot arrays) or was logged
   to the WAL of some epoch ``t >= b`` that recovery replays.  Old WALs are
   deleted only when their epoch falls out of the retained window, which is
   strictly after a newer manifest committed.
"""

from __future__ import annotations

import json
import os
import re
from typing import Optional

import numpy as np

from ..core.ait import AIT
from ..core.awit import AWIT
from ..core.dataset import IntervalDataset
from ..core.errors import SnapshotCorruptError
from ..kernels import resolve_backend
from .checksum import CHECKSUM_ALGORITHM
from .snapshot import (
    FORMAT_VERSION,
    flat_from_arrays,
    flat_to_arrays,
    fsync_directory,
    load_arrays,
    save_arrays,
)
from .wal import DeltaLog

__all__ = ["save_engine_snapshot", "open_engine", "snapshot_epochs"]

_ID = np.int64

_MANIFEST_RE = re.compile(r"^MANIFEST-(\d+)\.json$")
_WAL_RE = re.compile(r"^wal-(\d+)-shard(\d+)\.log$")


def _manifest_name(epoch: int) -> str:
    return f"MANIFEST-{epoch}.json"


def _shard_name(shard_id: int, epoch: int) -> str:
    return f"shard-{shard_id}-{epoch}.snap"


def _engine_name(epoch: int) -> str:
    return f"engine-{epoch}.state"


def _wal_name(epoch: int, shard_id: int) -> str:
    return f"wal-{epoch}-shard{shard_id}.log"


def snapshot_epochs(directory) -> list[int]:
    """Committed epochs in ``directory`` (ascending); [] when none exist."""
    try:
        names = os.listdir(os.fspath(directory))
    except FileNotFoundError:
        return []
    epochs = []
    for name in names:
        match = _MANIFEST_RE.match(name)
        if match:
            epochs.append(int(match.group(1)))
    return sorted(epochs)


def _wal_files(directory) -> dict[int, dict[int, str]]:
    """Map epoch -> shard index -> WAL path for every log in the directory."""
    out: dict[int, dict[int, str]] = {}
    try:
        names = os.listdir(os.fspath(directory))
    except FileNotFoundError:
        return out
    for name in names:
        match = _WAL_RE.match(name)
        if match:
            epoch, shard = int(match.group(1)), int(match.group(2))
            out.setdefault(epoch, {})[shard] = os.path.join(os.fspath(directory), name)
    return out


# ---------------------------------------------------------------------- #
# save
# ---------------------------------------------------------------------- #
def _shard_pristine(tree) -> bool:
    """True when a treeless rebuild of the saved columns reproduces the
    saved snapshot bit-for-bit — the condition for the restored tree to
    adopt the loaded snapshot for later *incremental* refreshes."""
    return (
        tree._build_backend == "columnar"
        and tree._built_version == tree._structure_version
        and not tree._pool
    )


def _save_shard(shard, path: str, weighted: bool, fsync: bool) -> dict:
    tree = shard.tree
    arrays = flat_to_arrays(shard.snapshot, prefix="flat.")
    arrays["col_lefts"] = tree._lefts
    arrays["col_rights"] = tree._rights
    if weighted:
        arrays["col_weights"] = tree._weights
    arrays["deleted"] = np.fromiter(
        sorted(tree._deleted), dtype=_ID, count=len(tree._deleted)
    )
    arrays["free_slots"] = np.asarray(tree._free_slots, dtype=_ID)
    arrays["global_ids"] = shard._global_ids[: shard._id_count]
    meta = {
        "kind": "shard",
        "shard_id": shard.shard_id,
        "weighted": weighted,
        "pristine": _shard_pristine(tree),
        "version": shard.version,
    }
    save_arrays(path, arrays, meta=meta, fsync=fsync)
    return meta


def save_engine_snapshot(engine, directory=None, fsync: bool = True,
                         retain: int = 2) -> int:
    """Persist a full engine checkpoint; return the committed epoch number.

    Folds every buffered write into fresh shard snapshots, writes one epoch
    of files, rotates the write-ahead logs, commits the manifest, and
    garbage-collects epochs older than the ``retain`` newest.  The engine
    stays attached to ``directory``: subsequent buffered writes are
    journaled to the new epoch's WALs.

    .. warning::
       The engine (like all of its methods) is **not thread-safe**, and this
       function mutates it in several steps: a write dispatched by another
       thread between the refresh and the WAL rotation would be journaled to
       the *old* epoch's log yet be missing from the new snapshot — recovery
       replays only WALs with epoch >= the restored base, so that
       acknowledged write would be lost.  When the engine is served through
       a live :class:`~repro.service.gateway.RequestGateway`, checkpoint via
       :meth:`RequestGateway.checkpoint`, which runs this function on the
       dispatcher thread, serialised with every write.
    """
    if directory is None:
        directory = getattr(engine, "_persist_dir", None)
        if directory is None:
            raise ValueError(
                "engine is not attached to a snapshot directory; pass one explicitly"
            )
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)

    # Every acknowledged write folds into the new snapshot files ...
    engine.refresh()
    for shard in engine._shards:
        # ... including pooled-but-unflushed inserts (none in normal shard
        # operation, but cheap to guarantee).
        if shard.tree.pending_pool_size:
            shard.tree.flush_pool()
            shard.refresh()

    known = set(snapshot_epochs(directory)) | set(_wal_files(directory))
    epoch = max(known, default=0) + 1
    weighted = engine.is_weighted

    shard_files = []
    for shard in engine._shards:
        name = _shard_name(shard.shard_id, epoch)
        _save_shard(shard, os.path.join(directory, name), weighted, fsync)
        shard_files.append(name)

    deleted = np.fromiter(sorted(engine._deleted), dtype=_ID, count=len(engine._deleted))
    engine_arrays = {
        "owner": engine._owner[: engine._owner_count],
        "deleted": deleted,
        "shard_versions": np.asarray(engine.versions(), dtype=_ID),
    }
    if engine._range_bounds is not None:
        engine_arrays["range_bounds"] = engine._range_bounds
    engine_meta = {
        "kind": "engine",
        "policy": engine.policy,
        "weighted": weighted,
        "build_backend": engine.build_backend,
        "num_shards": engine.num_shards,
        "next_global": int(engine._next_global),
        "rr_cursor": int(engine._rr_cursor),
        "active": int(engine._active),
    }
    engine_name = _engine_name(epoch)
    save_arrays(
        os.path.join(directory, engine_name), engine_arrays, meta=engine_meta, fsync=fsync
    )

    # Rotate the WALs: new epoch logs exist (empty, synced) before the
    # manifest commits, so post-commit writes have a durable home and a
    # pre-commit crash recovers cleanly from the previous epoch + old WALs.
    wal_policy = getattr(engine, "_wal_fsync", None) or "batch"
    new_wals = [
        DeltaLog(os.path.join(directory, _wal_name(epoch, k)), fsync=wal_policy, epoch=epoch)
        for k in range(engine.num_shards)
    ]

    manifest = {
        "format_version": FORMAT_VERSION,
        "epoch": epoch,
        "num_shards": engine.num_shards,
        "checksum_algorithm": CHECKSUM_ALGORITHM,
        "engine": engine_name,
        "shards": shard_files,
        "wals": [_wal_name(epoch, k) for k in range(engine.num_shards)],
    }
    manifest_path = os.path.join(directory, _manifest_name(epoch))
    tmp = manifest_path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    os.replace(tmp, manifest_path)  # <-- the commit point
    if fsync:
        fsync_directory(directory)

    # Attach the rotated logs (old WALs are superseded by the new epoch).
    for shard, log in zip(engine._shards, new_wals):
        old = shard.wal
        shard.wal = log
        if old is not None:
            old.close()
    engine._persist_dir = directory
    engine._persist_epoch = epoch
    engine._wal_fsync = wal_policy

    _collect_old_epochs(directory, keep_from=epoch, retain=retain)
    return epoch


def _collect_old_epochs(directory: str, keep_from: int, retain: int) -> None:
    """Drop epochs older than the ``retain`` newest manifests (best effort)."""
    committed = snapshot_epochs(directory)
    keep = set(committed[-max(1, int(retain)):]) | {keep_from}
    horizon = min(keep)
    doomed = [epoch for epoch in committed if epoch < horizon]
    wal_map = _wal_files(directory)
    for epoch in doomed:
        # Manifest first: once it is gone the epoch can never be chosen as a
        # recovery base, so removing its data files afterwards is safe.
        _unlink_quiet(os.path.join(directory, _manifest_name(epoch)))
        _unlink_quiet(os.path.join(directory, _engine_name(epoch)))
        for name in os.listdir(directory):
            if re.match(rf"^shard-\d+-{epoch}\.snap$", name):
                _unlink_quiet(os.path.join(directory, name))
    for epoch, paths in wal_map.items():
        if epoch < horizon:
            for path in paths.values():
                _unlink_quiet(path)


def _unlink_quiet(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass


# ---------------------------------------------------------------------- #
# open / recover
# ---------------------------------------------------------------------- #
def _restore_tree(arrays: dict, weighted: bool, batch_pool_size: Optional[int],
                  kernel_backend=None):
    """Rebuild a shard's local tree (columnar, node graph deferred) and, when
    the saved state was pristine, adopt the loaded snapshot for incremental
    refreshes."""
    weights = arrays.get("col_weights") if weighted else None
    dataset = IntervalDataset(arrays["col_lefts"], arrays["col_rights"], weights)
    if weighted:
        tree = AWIT(dataset, batch_pool_size=batch_pool_size, build_backend="columnar",
                    kernel_backend=kernel_backend)
    else:
        tree = AIT(dataset, batch_pool_size=batch_pool_size, build_backend="columnar",
                   kernel_backend=kernel_backend)
    deleted = arrays["deleted"]
    tree._deleted = set(int(g) for g in deleted)
    tree._active_count = int(tree._col_len) - len(tree._deleted)
    tree._free_slots = [int(slot) for slot in arrays["free_slots"]]
    return tree


def _restore_shard(shard_cls, arrays: dict, meta: dict,
                   batch_pool_size: Optional[int], kernel_backend=None):
    weighted = bool(meta["weighted"])
    tree = _restore_tree(arrays, weighted, batch_pool_size, kernel_backend=kernel_backend)
    snapshot = flat_from_arrays(arrays, weighted, prefix="flat.",
                                kernel_backend=kernel_backend)
    if meta.get("pristine"):
        # The snapshot equals a treeless rebuild of the restored columns
        # bit-for-bit, so the tree can adopt it: the first write replay will
        # attach the materialised node graph (AIT._ensure_tree) and later
        # refreshes splice incrementally against the mmapped arrays.
        tree._flat = snapshot
        tree._flat_version = tree._structure_version
        tree._journal_full = False
    return shard_cls.restore(
        shard_id=int(meta["shard_id"]),
        tree=tree,
        snapshot=snapshot,
        global_ids=arrays["global_ids"],
        version=int(meta.get("version", 1)),
    )


def _read_manifest(directory: str, epoch: int) -> dict:
    path = os.path.join(directory, _manifest_name(epoch))
    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except ValueError as exc:
        raise SnapshotCorruptError(f"{path}: manifest is not valid JSON") from exc
    if manifest.get("format_version") != FORMAT_VERSION:
        raise SnapshotCorruptError(
            f"{path}: unsupported manifest format version "
            f"{manifest.get('format_version')!r}"
        )
    if manifest.get("epoch") != epoch:
        raise SnapshotCorruptError(f"{path}: manifest epoch mismatch")
    return manifest


def _load_epoch(engine_cls, directory: str, manifest: dict, mmap: bool, verify: bool,
                executor, parallel_refresh: bool, batch_pool_size: Optional[int],
                kernel_backend=None):
    from ..service.executor import resolve_executor
    from ..service.shard import Shard

    kernels = resolve_backend(kernel_backend)
    engine_arrays, engine_meta = load_arrays(
        os.path.join(directory, manifest["engine"]), mmap=mmap, verify=verify
    )
    if engine_meta.get("kind") != "engine":
        raise SnapshotCorruptError(f"{manifest['engine']}: not an engine state file")
    shards = []
    for name in manifest["shards"]:
        arrays, meta = load_arrays(os.path.join(directory, name), mmap=mmap, verify=verify)
        if meta.get("kind") != "shard":
            raise SnapshotCorruptError(f"{name}: not a shard snapshot file")
        shards.append(_restore_shard(Shard, arrays, meta, batch_pool_size,
                                     kernel_backend=kernels))
    shards.sort(key=lambda shard: shard.shard_id)

    engine = engine_cls.__new__(engine_cls)
    engine._kernel_backend = kernels
    engine._weighted = bool(engine_meta["weighted"])
    engine._policy = str(engine_meta["policy"])
    engine._build_backend = str(engine_meta.get("build_backend", "columnar"))
    engine._parallel_refresh = bool(parallel_refresh)
    engine._executor, engine._owns_executor = resolve_executor(executor)
    engine._shards = shards
    owner = np.asarray(engine_arrays["owner"], dtype=_ID).copy()  # grows on insert
    engine._owner = owner
    engine._owner_count = int(owner.shape[0])
    engine._next_global = int(engine_meta["next_global"])
    engine._deleted = set(int(g) for g in engine_arrays["deleted"])
    engine._active = int(engine_meta["active"])
    engine._rr_cursor = int(engine_meta["rr_cursor"])
    bounds = engine_arrays.get("range_bounds")
    engine._range_bounds = (
        np.asarray(bounds, dtype=np.float64).copy() if bounds is not None else None
    )
    return engine


def _record_recovered_owners(engine, global_ids: np.ndarray, shard_index: int) -> None:
    top = int(global_ids.max()) + 1
    if top > engine._owner.shape[0]:
        grow = max(16, top - engine._owner.shape[0], engine._owner.shape[0] // 2)
        # -1, not np.empty: one shard's torn WAL tail can leave id gaps below
        # another shard's surviving ids, and those gap entries sit inside the
        # new _owner_count.  A garbage shard index there would route a later
        # delete_many to the wrong shard; -1 marks the id as never recovered
        # (delete_many and shard_of treat negative owners as unknown).
        engine._owner = np.concatenate((engine._owner, np.full(grow, -1, dtype=_ID)))
    engine._owner[global_ids] = shard_index
    engine._owner_count = max(engine._owner_count, top)
    engine._next_global = max(engine._next_global, top)


def _apply_wal_records(engine, shard_index: int, records: list) -> int:
    """Re-buffer recovered delta ops; returns how many ops were applied."""
    shard = engine._shards[shard_index]
    applied = 0
    for op in records:
        if op[0] == "insert_many":
            _, global_ids, lefts, rights = op
            shard.buffer_insert_many(global_ids, lefts, rights)
            _record_recovered_owners(engine, global_ids, shard_index)
            engine._active += int(global_ids.shape[0])
        else:
            global_ids = op[1]
            shard.buffer_delete_many(global_ids)
            engine._deleted.update(int(g) for g in global_ids)
            engine._active -= int(global_ids.shape[0])
        applied += len(op[1])
    return applied


def open_engine(engine_cls, directory, mmap: bool = True, verify: bool = True,
                fsync: str = "batch", executor=None, parallel_refresh: bool = False,
                batch_pool_size: Optional[int] = None, kernel_backend=None):
    """Restore a :class:`ShardedEngine` from its newest valid epoch.

    Falls back epoch by epoch when validation fails (a half-written epoch
    whose manifest survived a crashed GC, a bit-flipped segment, ...), then
    replays every WAL at or after the chosen base epoch, oldest first.
    Replayed writes sit in the shards' delta logs and apply through the
    normal incremental refresh on first use.
    """
    directory = os.fspath(directory)
    # Resolve eagerly: a bad backend name must raise ValueError here, not be
    # swallowed by the per-epoch fallback loop as apparent corruption.
    kernel_backend = resolve_backend(kernel_backend)
    epochs = snapshot_epochs(directory)
    if not epochs:
        raise SnapshotCorruptError(f"{directory}: no committed snapshot manifest found")

    engine = None
    base_epoch = None
    last_error: Optional[Exception] = None
    for epoch in reversed(epochs):
        try:
            manifest = _read_manifest(directory, epoch)
            engine = _load_epoch(
                engine_cls, directory, manifest, mmap, verify, executor,
                parallel_refresh, batch_pool_size, kernel_backend=kernel_backend,
            )
            base_epoch = epoch
            break
        except (
            SnapshotCorruptError,
            FileNotFoundError,
            KeyError,
            # A corrupt-but-CRC-valid header field surfaces as a parse error,
            # not a SnapshotCorruptError: np.dtype on a mangled dtype string
            # or resolve_checksum on an unknown algorithm raise ValueError,
            # and a missing array feeds None into flat_from_arrays
            # (AttributeError/TypeError).  All of them mean "this epoch is
            # unusable" and must fall back, not abort recovery.
            ValueError,
            TypeError,
            AttributeError,
        ) as exc:
            last_error = exc
    if engine is None:
        raise SnapshotCorruptError(
            f"{directory}: no epoch passed validation (last error: {last_error})"
        )

    # Replay the WAL chain: every log at or after the base epoch, in epoch
    # order.  The newest epoch's logs are recovered in place (torn tails
    # truncated) and stay attached for future appends.
    wal_map = _wal_files(directory)
    replay_epochs = sorted(epoch for epoch in wal_map if epoch >= base_epoch)
    tail_epoch = replay_epochs[-1] if replay_epochs else base_epoch
    for epoch in replay_epochs:
        for shard_index in range(engine.num_shards):
            path = os.path.join(directory, _wal_name(epoch, shard_index))
            if epoch == tail_epoch:
                log, records = DeltaLog.recover(path, fsync=fsync, epoch=epoch)
                _apply_wal_records(engine, shard_index, records)
                engine._shards[shard_index].wal = log
            elif shard_index in wal_map.get(epoch, {}):
                _, records, _ = DeltaLog.scan(path)
                _apply_wal_records(engine, shard_index, records)
    if tail_epoch == base_epoch and not replay_epochs:
        for shard_index in range(engine.num_shards):
            path = os.path.join(directory, _wal_name(tail_epoch, shard_index))
            engine._shards[shard_index].wal = DeltaLog(path, fsync=fsync, epoch=tail_epoch)

    if engine._policy == "round_robin":
        # Invariant of the routing policy: the cursor tracks the global id
        # counter modulo K (both advance together on every insert).
        engine._rr_cursor = int(engine._next_global % engine.num_shards)

    engine._persist_dir = directory
    engine._persist_epoch = tail_epoch
    engine._wal_fsync = fsync
    return engine
