"""repro — Independent Range Sampling on Interval Data (ICDE 2024) reproduction.

The package implements the paper's data structures (AIT, AIT-V, AWIT), every
competitor used in its evaluation (Edelsbrunner interval tree, HINT^m, KDS,
kd-tree), synthetic analogues of the evaluation datasets, statistical
validation utilities and a harness that regenerates every table and figure of
the paper's experimental section.

Quickstart
----------
>>> from repro import AIT, IntervalDataset
>>> data = IntervalDataset.from_pairs([(0, 10), (5, 15), (20, 30)])
>>> tree = AIT(data)
>>> tree.count((4, 12))
2
>>> len(tree.sample((4, 12), 3, random_state=7))
3
"""

from .core import (
    AIT,
    AITV,
    AWIT,
    AITNode,
    EmptyDatasetError,
    EmptyResultError,
    FlatAIT,
    GatewayClosedError,
    GatewayOverloadError,
    Interval,
    IntervalDataset,
    IntervalIndex,
    InvalidIntervalError,
    InvalidQueryError,
    InvalidWeightError,
    ListKind,
    NodeRecord,
    PersistenceError,
    ReproError,
    SamplingIndex,
    SnapshotCorruptError,
    StructureStateError,
    UnsupportedOperationError,
    WALCorruptError,
    WorkerTimeoutError,
)
from .persist import DeltaLog
from .sampling import AliasTable, CumulativeSampler
from .service import RequestGateway, ShardedEngine

__version__ = "1.8.0"

__all__ = [
    "AIT",
    "AITV",
    "AWIT",
    "AITNode",
    "AliasTable",
    "CumulativeSampler",
    "DeltaLog",
    "FlatAIT",
    "Interval",
    "IntervalDataset",
    "IntervalIndex",
    "SamplingIndex",
    "RequestGateway",
    "ShardedEngine",
    "ListKind",
    "NodeRecord",
    "ReproError",
    "InvalidIntervalError",
    "InvalidQueryError",
    "InvalidWeightError",
    "EmptyDatasetError",
    "EmptyResultError",
    "StructureStateError",
    "UnsupportedOperationError",
    "GatewayClosedError",
    "GatewayOverloadError",
    "WorkerTimeoutError",
    "PersistenceError",
    "SnapshotCorruptError",
    "WALCorruptError",
    "__version__",
]
