"""ShardedEngine — scatter-gather query serving on top of FlatAIT snapshots.

This is the serving layer the reproduction grows toward: it partitions an
:class:`~repro.core.dataset.IntervalDataset` across ``K`` shards, keeps one
:class:`~repro.core.flat.FlatAIT` snapshot per shard, and answers the full
batch API (``count_many`` / ``report_many`` / ``sample_many`` /
``total_weight_many``) by fanning each batch out over the shards and merging
the partial results:

* **counting** and **weighted counting** merge by summation — each interval
  lives in exactly one shard, so per-shard results partition ``q ∩ X``;
* **reporting** merges by concatenation, with shard-local ids mapped back to
  engine-global ids;
* **sampling** stays *exactly* i.i.d.: for each query the engine first draws
  how many of its ``s`` samples fall into each shard from a multinomial over
  the per-shard overlap counts (overlap *weights* for weighted engines), then
  delegates those draws to each shard's vectorised ``sample_many`` and
  shuffles the merged row.  Conditioning on shard membership, a uniform
  (weight-proportional) draw within the shard is uniform
  (weight-proportional) over all of ``q ∩ X`` — the same two-stage argument
  that makes the paper's record-level alias sampling exact (Theorem 3 /
  Corollary 5), lifted one level up.  See ``docs/ARCHITECTURE.md`` for the
  full derivation.

Writes (:meth:`ShardedEngine.insert` / :meth:`ShardedEngine.delete`) are
routed to the owning shard's buffered delta log and applied by a versioned
snapshot refresh at the next batch boundary — a snapshot is rebuilt lazily,
never mid-batch, so one scatter-gather round always observes one consistent
version per shard.

The scatter-gather step executes through a pluggable executor
(:mod:`repro.service.executor`): a serial loop by default, a thread pool
(``executor="threads"``) when shards are large enough for the GIL-releasing
NumPy kernels to run in parallel, or long-lived worker processes
(``executor="process"``) that attach each shard's snapshot arrays through
``multiprocessing.shared_memory`` and execute the whole per-shard code path
off the owner's GIL.  Whatever the executor, every per-shard op runs the same
module-level implementation over a :class:`~repro.service.shm.ShardView`
(:meth:`ShardedEngine._scatter`), so results are bit-identical across
execution tiers; writes and snapshot refreshes always stay on the owner
process, and a shard's version bump triggers re-publication of its shared
segment.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.dataset import IntervalDataset
from ..core.errors import EmptyResultError, InvalidIntervalError, StructureStateError
from ..core.flat import FlatAIT
from ..core.interval import Interval, validate_endpoints
from ..core.query import QueryLike, validate_sample_size
from ..kernels import resolve_backend
from ..sampling.rng import RandomState, resolve_rng, spawn_seeds
from .executor import resolve_executor
from .shard import Shard
from .shm import ShardView, run_shard_op

__all__ = ["ShardedEngine"]

_ID = np.int64
_F8 = np.float64


class ShardedEngine:
    """Sharded, update-aware, batch-first query service over interval data.

    Parameters
    ----------
    dataset:
        The intervals to serve.  Must contain at least ``num_shards``
        intervals so every shard starts non-empty.
    num_shards:
        Number of partitions (``K``).  ``K = 1`` degenerates to a thin
        wrapper around a single :class:`~repro.core.flat.FlatAIT`.
    policy:
        How intervals map to shards — ``"round_robin"`` (default; balances
        cardinality) or ``"range"`` (contiguous midpoint ranges; narrow
        queries touch few shards).  See
        :meth:`IntervalDataset.partition_indices`.
    weighted:
        Build :class:`~repro.core.awit.AWIT` shards (weight-proportional
        sampling).  Defaults to ``dataset.is_weighted``.  Weighted engines
        reject updates, mirroring the paper's static AWIT (Section IV-A).
    executor:
        ``None`` / ``"serial"``, ``"threads"``, ``"process"`` (long-lived
        worker processes reading shard snapshots from shared memory — true
        multi-core scatter, see :class:`~repro.service.executor.ProcessExecutor`),
        or any object with an order-preserving ``map(fn, items)``.
    scatter:
        Scatter strategy for ``executor="process"``: ``"data"`` (one worker
        per shard), ``"query"`` (query-block tiles over all workers — the
        mode that parallelises counting) or ``"auto"`` (per-batch choice,
        the process default).  Only valid together with
        ``executor="process"``; pre-built executor objects configure scatter
        at construction instead.
    batch_pool_size:
        Forwarded to each shard's tree (capacity of the paper's pooled
        insertion buffer).
    build_backend:
        Forwarded to every shard's tree.  ``"columnar"`` (default) builds
        each shard's snapshot treelessly via
        :meth:`~repro.core.flat.FlatAIT.from_arrays` — engine construction
        and full snapshot rebuilds never allocate Python tree nodes; a
        shard only materialises its node graph when a write batch is
        replayed into it.  ``"tree"`` keeps the legacy eager node build.
    kernel_backend:
        Forwarded to every shard's tree: which kernel implementation the
        shard snapshots run their hot loops on (``"numpy"`` default,
        ``"numba"``, ``"python"``; see :mod:`repro.kernels`).  Process
        executor workers inherit the choice through the shared-memory
        publish descriptor, so all execution tiers run the same kernels.
    parallel_refresh:
        When True, shard construction and delta-log refreshes fan out over
        the engine's executor (one task per shard; shards are disjoint, so
        this is race-free).  Worth turning on with ``executor="threads"``
        on multi-core machines — the per-shard rebuild work is dominated by
        GIL-releasing NumPy kernels.  Defaults to False (serial refresh).

    Examples
    --------
    >>> from repro import IntervalDataset
    >>> from repro.service import ShardedEngine
    >>> data = IntervalDataset.from_pairs([(0, 10), (5, 15), (20, 30), (25, 40)])
    >>> engine = ShardedEngine(data, num_shards=2)
    >>> engine.count_many([(4, 12), (18, 26)]).tolist()
    [2, 2]
    >>> new_id = engine.insert((8, 22))
    >>> engine.count((4, 12))
    3
    >>> engine.delete(new_id)
    True
    >>> engine.count((4, 12))
    2
    """

    def __init__(
        self,
        dataset: IntervalDataset,
        num_shards: int = 4,
        policy: str = "round_robin",
        weighted: Optional[bool] = None,
        executor=None,
        batch_pool_size: Optional[int] = None,
        build_backend: str = "columnar",
        parallel_refresh: bool = False,
        kernel_backend=None,
        scatter: Optional[str] = None,
    ) -> None:
        self._weighted = dataset.is_weighted if weighted is None else bool(weighted)
        parts = dataset.partition_indices(num_shards, policy)
        self._policy = policy
        self._build_backend = build_backend
        # Resolved once so a bad name fails here and every shard shares one
        # backend instance (kernels are stateless — see repro.kernels).
        self._kernel_backend = resolve_backend(kernel_backend)
        self._parallel_refresh = bool(parallel_refresh)
        self._executor, self._owns_executor = resolve_executor(executor, scatter=scatter)
        # Durability attachment (populated by save_snapshot / open).
        self._persist_dir: Optional[str] = None
        self._persist_epoch = 0
        self._wal_fsync: Optional[str] = None

        def build_shard(item: tuple[int, np.ndarray]) -> Shard:
            index, ids = item
            return Shard(
                index,
                dataset,
                ids,
                self._weighted,
                batch_pool_size,
                build_backend,
                kernel_backend=self._kernel_backend,
            )

        try:
            if self._parallel_refresh and len(parts) > 1:
                # list(): the executor contract only promises an order-preserving
                # map; a lazy iterator (e.g. a raw ThreadPoolExecutor) must be
                # drained here, not stored.
                self._shards = list(self._executor.map(build_shard, list(enumerate(parts))))
            else:
                self._shards = [build_shard(item) for item in enumerate(parts)]
        except BaseException:
            # The executor is created before the shards; don't leak an
            # engine-owned thread pool when a shard build fails.
            if self._owns_executor:
                self._executor.shutdown()
            raise

        owner = np.empty(len(dataset), dtype=_ID)
        for i, ids in enumerate(parts):
            owner[ids] = i
        # Global-id -> shard map as a bare int64 array (amortised growth on
        # insert): at the scale this layer targets a boxed-int container
        # would cost an order of magnitude more memory.
        self._owner = owner
        self._owner_count = len(dataset)
        self._next_global = len(dataset)
        self._deleted: set[int] = set()
        self._active = len(dataset)
        self._rr_cursor = len(dataset) % len(self._shards)
        if policy == "range":
            # Upper midpoint of each shard but the last: the routing fence for
            # future inserts (searchsorted keeps new intervals with their
            # nearest midpoint neighbours).
            midpoints = (dataset.lefts + dataset.rights) / 2.0
            self._range_bounds = np.array(
                [float(midpoints[ids].max()) for ids in parts[:-1]], dtype=_F8
            )
        else:
            self._range_bounds = None

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def num_shards(self) -> int:
        """Number of shards (``K``)."""
        return len(self._shards)

    @property
    def is_weighted(self) -> bool:
        """True when shards are AWITs and sampling is weight-proportional."""
        return self._weighted

    @property
    def policy(self) -> str:
        """The partitioning policy this engine was built with."""
        return self._policy

    @property
    def build_backend(self) -> str:
        """The shard-tree build backend this engine was built with."""
        return self._build_backend

    @property
    def kernel_backend(self) -> str:
        """Registry name of the kernel backend the shard snapshots run on."""
        return self._kernel_backend.name

    @property
    def parallel_refresh(self) -> bool:
        """True when shard construction / refreshes fan out over the executor."""
        return self._parallel_refresh

    @property
    def executor_kind(self) -> str:
        """Short name of the executor serving this engine's scatter step.

        ``"serial"`` / ``"threads"`` / ``"process"`` for the built-in
        executors, the class name for a caller-supplied map object.  Exposed
        through :meth:`RequestGateway.stats` so deployments can tell which
        execution tier is live.
        """
        return getattr(self._executor, "kind", type(self._executor).__name__)

    @property
    def scatter(self) -> Optional[str]:
        """The executor's scatter strategy, or ``None`` when it has none.

        ``"data"`` / ``"query"`` / ``"auto"`` for a
        :class:`~repro.service.executor.ProcessExecutor`; ``None`` for the
        in-process executors (the notion does not apply — they always run
        one task per shard).  Exposed through :meth:`RequestGateway.stats`.
        """
        return getattr(self._executor, "scatter", None)

    @property
    def size(self) -> int:
        """Number of active intervals, including writes still in delta logs."""
        return self._active

    def __len__(self) -> int:
        return self._active

    @property
    def shards(self) -> tuple[Shard, ...]:
        """The shard objects, in partition order (read-only view)."""
        return tuple(self._shards)

    def shard_sizes(self) -> list[int]:
        """Active interval count per shard (snapshot view; pending writes excluded)."""
        return [shard.size for shard in self._shards]

    def versions(self) -> list[int]:
        """Current snapshot version of every shard."""
        return [shard.version for shard in self._shards]

    def pending_ops(self) -> int:
        """Total buffered writes not yet folded into shard snapshots."""
        return sum(shard.pending_ops for shard in self._shards)

    def shard_of(self, global_id: int) -> int:
        """Index of the shard owning ``global_id`` (deleted ids keep their owner)."""
        g = int(global_id)
        if g < 0 or g >= self._owner_count or self._owner[g] < 0:
            # Negative entries mark id-space gaps left by crash recovery
            # (ids lost to a torn WAL tail below a surviving shard's ids).
            raise KeyError(f"interval id {global_id} was never assigned")
        return int(self._owner[g])

    def _append_owners(self, owners: np.ndarray) -> None:
        """Record the owning shard of freshly assigned global ids (amortised growth)."""
        need = self._owner_count + int(owners.shape[0])
        if need > self._owner.shape[0]:
            grow = max(16, need - self._owner.shape[0], self._owner.shape[0] // 2)
            # -1 fill: entries beyond _owner_count are unreachable here, but
            # the recovery path can surface id gaps (see shard_of), so the
            # whole array keeps the invariant "unassigned slot == -1".
            self._owner = np.concatenate((self._owner, np.full(grow, -1, dtype=_ID)))
        self._owner[self._owner_count : need] = owners
        self._owner_count = need

    def nbytes(self) -> int:
        """Approximate memory footprint across all shards (trees + snapshots)."""
        return sum(shard.nbytes() for shard in self._shards)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "weighted " if self._weighted else ""
        return (
            f"ShardedEngine({self._active} {kind}intervals, "
            f"shards={self.num_shards}, policy={self._policy!r})"
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def refresh(self, parallel: Optional[bool] = None) -> list[int]:
        """Apply every buffered write and return the new per-shard versions.

        Called automatically at the start of every batch; exposed so callers
        can pay the refresh cost at a moment of their choosing (e.g. off the
        request path).  ``parallel`` overrides the engine's
        ``parallel_refresh`` setting for this call: when on, every shard
        with pending writes rebuilds on the executor concurrently (shards
        are disjoint, so per-shard refresh is race-free).
        """
        use_parallel = self._parallel_refresh if parallel is None else bool(parallel)
        pending = [shard for shard in self._shards if shard.pending_ops]
        if use_parallel and len(pending) > 1:

            def guarded(shard: Shard) -> Optional[Exception]:
                try:
                    shard.refresh()
                    return None
                except Exception as exc:  # surfaced below, once every shard settled
                    return exc

            try:
                # list(): force a lazy executor map to complete before
                # versions() reads the refreshed state.
                results = list(self._executor.map(guarded, pending))
            except Exception:
                # The executor itself failed mid-fan-out (not a shard task).
                # Finish the sweep serially so no shard is left behind with
                # buffered writes, then surface the executor error: callers
                # see an exception, never a half-refreshed engine.
                for shard in pending:
                    if shard.pending_ops:
                        shard.refresh()
                raise
            for shard, error in zip(pending, results):
                if error is not None:
                    # Every other shard has settled; the failing shard kept
                    # its delta log (refresh clears it only after a full
                    # replay), so per-shard versions are consistent and the
                    # failure is retryable.
                    raise error
        else:
            for shard in pending:
                shard.refresh()
        return self.versions()

    def close(self) -> None:
        """Flush and close any write-ahead logs; shut down an owned executor.

        Graceful shutdown fsyncs each shard's WAL, so every buffered write —
        acknowledged or not — survives into the next :meth:`open`.
        Idempotent.
        """
        for shard in self._shards:
            if shard.wal is not None:
                shard.wal.close()
        if self._owns_executor:
            self._executor.shutdown()

    # ------------------------------------------------------------------ #
    # durability
    # ------------------------------------------------------------------ #
    @property
    def snapshot_dir(self) -> Optional[str]:
        """Directory this engine checkpoints to, or None when not attached."""
        return self._persist_dir

    @property
    def snapshot_epoch(self) -> int:
        """Epoch of the newest snapshot/WAL generation this engine is on."""
        return self._persist_epoch

    def save_snapshot(self, directory=None, fsync: bool = True, retain: int = 2) -> int:
        """Checkpoint the whole engine to ``directory``; return the new epoch.

        Folds every buffered write into fresh per-shard snapshot files,
        writes the engine state, rotates the write-ahead logs, and commits
        the epoch with an atomic manifest rename (see
        :mod:`repro.persist.durable`).  ``directory`` defaults to the
        directory the engine is already attached to.  ``retain`` older
        epochs are kept as fallbacks; the rest are garbage-collected.

        Like every engine method this is **not thread-safe**: when the
        engine is served through a running
        :class:`~repro.service.gateway.RequestGateway`, use
        :meth:`RequestGateway.checkpoint` instead, which executes the
        checkpoint on the dispatcher thread, serialised with the write path
        (a concurrent write could otherwise land in the outgoing epoch's WAL
        but miss the new snapshot, and be dropped by recovery).
        """
        from ..persist.durable import save_engine_snapshot

        return save_engine_snapshot(self, directory, fsync=fsync, retain=retain)

    @classmethod
    def open(
        cls,
        directory,
        mmap: bool = True,
        verify: bool = True,
        fsync: str = "batch",
        executor=None,
        parallel_refresh: bool = False,
        batch_pool_size: Optional[int] = None,
        kernel_backend=None,
    ) -> "ShardedEngine":
        """Restore an engine from its newest valid snapshot epoch + WAL chain.

        ``mmap=True`` (default) maps the snapshot arrays read-only with lazy
        page-in — opening a million-interval engine costs a header parse,
        not a rebuild.  ``verify=True`` checks every array checksum.
        ``fsync`` is the durability policy for the write-ahead logs this
        engine will append to.  Recovered-but-unapplied WAL writes sit in
        the shards' delta logs and fold in at the first batch boundary.
        """
        from ..persist.durable import open_engine

        return open_engine(
            cls,
            directory,
            mmap=mmap,
            verify=verify,
            fsync=fsync,
            executor=executor,
            parallel_refresh=parallel_refresh,
            batch_pool_size=batch_pool_size,
            kernel_backend=kernel_backend,
        )

    def sync_wal(self) -> None:
        """fsync every shard's write-ahead log (no-op without WALs).

        Under the ``"batch"`` fsync policy this is the acknowledgement
        barrier: the gateway calls it once per micro-batch, after the write
        dispatch and before completing the write futures.
        """
        for shard in self._shards:
            if shard.wal is not None:
                shard.wal.sync()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _scatter(self, op: str, payload: dict) -> list:
        """Run one named per-shard query op on every shard, in shard order.

        Every executor runs the same module-level op implementations
        (:data:`repro.service.shm.SHARD_OPS`) over :class:`ShardView`\\ s, so
        results are bit-identical regardless of where the work executes.  An
        executor exposing ``run_shard_op`` (the :class:`ProcessExecutor`)
        receives the live shards and handles view placement itself —
        republishing any shard whose snapshot version changed since its last
        publication; plain ``map`` executors get in-process views.
        """
        runner = getattr(self._executor, "run_shard_op", None)
        if runner is not None:
            return runner(self._shards, op, payload)
        views = [ShardView.of_shard(shard) for shard in self._shards]
        # list(): the executor contract only promises an order-preserving
        # map; a lazy iterator (e.g. a raw ThreadPoolExecutor) must be
        # drained before the merge steps index or reduce the rows.
        return list(self._executor.map(lambda view: run_shard_op(op, view, payload), views))

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def insert(self, interval: Interval | tuple[float, float]) -> int:
        """Buffer the insertion of a new interval; return its global id.

        The write lands in the owning shard's delta log and becomes visible
        to the first batch that starts after it (the next snapshot refresh).
        Round-robin engines rotate ownership; range engines route by
        midpoint so the shard keyspace stays contiguous.  Thin wrapper over
        :meth:`insert_many`.
        """
        if isinstance(interval, Interval):
            left, right = interval.left, interval.right
        else:
            try:
                left, right = interval
                left, right = float(left), float(right)
            except (TypeError, ValueError) as exc:
                raise InvalidIntervalError(
                    f"insert expects an Interval or a (left, right) pair, got {interval!r}"
                ) from exc
        validate_endpoints(left, right)
        return int(self.insert_many([left], [right])[0])

    def insert_many(self, lefts, rights) -> np.ndarray:
        """Buffer a whole insertion batch; return the assigned global ids.

        Validation, shard routing and delta-log buffering are all
        vectorised: range engines bucket the batch by midpoint with one
        ``searchsorted``, round-robin engines deal the batch out cyclically,
        and each owning shard receives a single bulk delta-log entry that
        :meth:`Shard.refresh` later replays through the tree's
        ``insert_many``.

        Examples
        --------
        >>> from repro import IntervalDataset
        >>> from repro.service import ShardedEngine
        >>> data = IntervalDataset.from_pairs([(0, 10), (5, 15), (20, 30), (25, 40)])
        >>> engine = ShardedEngine(data, num_shards=2)
        >>> ids = engine.insert_many([8.0, 9.0], [22.0, 23.0])
        >>> ids.tolist()
        [4, 5]
        >>> engine.count((21, 21))
        3
        """
        if self._weighted:
            raise StructureStateError(
                "weighted engines are static: the AWIT does not support updates (Section IV-A)"
            )
        lefts_arr = np.ascontiguousarray(lefts, dtype=np.float64).reshape(-1)
        rights_arr = np.ascontiguousarray(rights, dtype=np.float64).reshape(-1)
        if lefts_arr.shape != rights_arr.shape:
            raise InvalidIntervalError(
                f"insert_many expects equally long columns, got {lefts_arr.shape[0]} "
                f"lefts and {rights_arr.shape[0]} rights"
            )
        count = int(lefts_arr.shape[0])
        bad = ~(np.isfinite(lefts_arr) & np.isfinite(rights_arr)) | (lefts_arr > rights_arr)
        if bad.any():
            first = int(np.flatnonzero(bad)[0])
            raise InvalidIntervalError(
                f"invalid interval [{lefts_arr[first]}, {rights_arr[first]}] "
                f"at position {first}"
            )
        if count == 0:
            return np.empty(0, dtype=_ID)

        if self._range_bounds is not None:
            midpoints = (lefts_arr + rights_arr) / 2.0
            owners = np.searchsorted(self._range_bounds, midpoints, side="left").astype(_ID)
        else:
            owners = (self._rr_cursor + np.arange(count, dtype=_ID)) % len(self._shards)
            self._rr_cursor = int((self._rr_cursor + count) % len(self._shards))
        global_ids = np.arange(self._next_global, self._next_global + count, dtype=_ID)
        self._next_global += count
        self._append_owners(owners)
        for shard_idx in np.unique(owners):
            members = owners == shard_idx
            self._shards[int(shard_idx)].buffer_insert_many(
                global_ids[members], lefts_arr[members], rights_arr[members]
            )
        self._active += count
        return global_ids

    def delete(self, global_id: int) -> bool:
        """Buffer the deletion of ``global_id``; return True when it was active.

        Like :meth:`insert`, the write is applied at the next snapshot
        refresh; double deletes and unknown ids return False immediately.
        Thin wrapper over :meth:`delete_many`.
        """
        return bool(self.delete_many([global_id])[0])

    def delete_many(self, global_ids) -> np.ndarray:
        """Buffer a whole deletion batch; return per-id success flags.

        Unknown ids, already-deleted ids and duplicates within the batch
        report False (after the first occurrence); accepted ids are grouped
        by owning shard and buffered as one bulk delta-log entry each.

        Examples
        --------
        >>> from repro import IntervalDataset
        >>> from repro.service import ShardedEngine
        >>> data = IntervalDataset.from_pairs([(0, 10), (5, 15), (20, 30), (25, 40)])
        >>> engine = ShardedEngine(data, num_shards=2)
        >>> engine.delete_many([3, 3, 99]).tolist()
        [True, False, False]
        >>> engine.size
        3
        """
        if self._weighted:
            raise StructureStateError(
                "weighted engines are static: the AWIT does not support updates (Section IV-A)"
            )
        try:
            requested = list(global_ids)
        except TypeError:
            requested = [global_ids]
        results = np.zeros(len(requested), dtype=bool)
        accepted: list[int] = []
        for position, raw in enumerate(requested):
            try:
                g = int(raw)
            except (TypeError, ValueError):
                continue
            if g < 0 or g >= self._owner_count or g in self._deleted:
                continue
            if self._owner[g] < 0:
                continue  # recovery id gap (torn WAL tail): id never existed here
            self._deleted.add(g)
            accepted.append(g)
            results[position] = True
        if accepted:
            accepted_arr = np.asarray(accepted, dtype=_ID)
            owners = self._owner[accepted_arr]
            for shard_idx in np.unique(owners):
                self._shards[int(shard_idx)].buffer_delete_many(
                    accepted_arr[owners == shard_idx]
                )
            self._active -= len(accepted)
        return results

    # ------------------------------------------------------------------ #
    # batch queries (scatter-gather)
    # ------------------------------------------------------------------ #
    def count_many(self, queries) -> np.ndarray:
        """``|q ∩ X|`` per query: per-shard flat counts, merged by summation."""
        ql, qr = FlatAIT.coerce_queries(queries)
        self.refresh()
        rows = self._scatter("count", {"ql": ql, "qr": qr})
        return np.sum(rows, axis=0, dtype=_ID) if rows else np.zeros(ql.shape[0], dtype=_ID)

    def total_weight_many(self, queries) -> np.ndarray:
        """Total weight of ``q ∩ X`` per query (counts for unweighted engines)."""
        ql, qr = FlatAIT.coerce_queries(queries)
        self.refresh()
        rows = self._scatter("total_weight", {"ql": ql, "qr": qr})
        return np.sum(rows, axis=0, dtype=_F8) if rows else np.zeros(ql.shape[0], dtype=_F8)

    def report_many(self, queries) -> list[np.ndarray]:
        """Overlapping global ids per query, shard-major (per-shard traversal order)."""
        ql, qr = FlatAIT.coerce_queries(queries)
        self.refresh()
        per_shard = self._scatter("report", {"ql": ql, "qr": qr})
        nq = int(ql.shape[0])
        if nq == 0:
            return []
        return [
            np.concatenate([chunks[i] for chunks in per_shard]) for i in range(nq)
        ]

    def sample_many(
        self,
        queries,
        sample_size: int,
        random_state: RandomState = None,
        on_empty: str = "empty",
    ) -> list[np.ndarray]:
        """Draw ``sample_size`` i.i.d. samples per query across all shards.

        Stage 1 allocates each query's draws over the shards with one
        batched multinomial over per-shard overlap counts (weights for
        weighted engines); stage 2 delegates to each shard's vectorised
        ``sample_many`` and keeps the first ``allocated`` draws of every row
        (rows are exchangeable, so a prefix is itself an i.i.d. sample);
        stage 3 merges and shuffles each query's row so the output carries no
        shard-grouping information.  The composite per-draw law is exactly
        ``1/|q ∩ X|`` (``w(x)/W`` when weighted) — see ``docs/ARCHITECTURE.md``.
        """
        if on_empty not in ("empty", "raise"):
            raise ValueError(f"on_empty must be 'empty' or 'raise', got {on_empty!r}")
        sample_size = validate_sample_size(sample_size)
        ql, qr = FlatAIT.coerce_queries(queries)
        self.refresh()
        rng = resolve_rng(random_state)
        nq = int(ql.shape[0])
        num_shards = len(self._shards)

        if self._weighted:
            masses = self._scatter("total_weight", {"ql": ql, "qr": qr})
        else:
            masses = [
                row.astype(_F8) for row in self._scatter("count", {"ql": ql, "qr": qr})
            ]
        mass = np.stack(masses) if nq else np.zeros((num_shards, 0), dtype=_F8)
        totals = mass.sum(axis=0)
        answerable = totals > 0
        if on_empty == "raise" and not answerable.all():
            bad = int(np.flatnonzero(~answerable)[0])
            raise EmptyResultError(f"query [{ql[bad]}, {qr[bad]}] matched no intervals")

        empty = np.empty(0, dtype=_ID)
        if sample_size == 0 or not answerable.any():
            return [empty.copy() for _ in range(nq)]

        live = np.flatnonzero(answerable)
        n_live = live.shape[0]
        # Stage 1: one multinomial row per live query over its shard masses.
        pvals = (mass[:, live] / totals[live]).T  # (n_live, K)
        alloc = rng.multinomial(sample_size, pvals)  # (n_live, K)

        # Independent per-shard seeds, derived *before* dispatch, make the
        # result deterministic under any executor (no shared-stream races):
        # each shard task builds its own generator from its seed, and plain
        # ints cross the process boundary for free.  The per-shard draw
        # itself lives in repro.service.shm._op_sample (power-of-two
        # allocation bucketing, global-id mapping).
        seeds = spawn_seeds(rng, num_shards)
        per_shard = self._scatter(
            "sample",
            {"ql": ql[live], "qr": qr[live], "alloc": alloc, "seeds": seeds},
        )

        # Stage 3: merge per-shard prefixes into one (n_live, s) matrix ...
        merged = np.empty((n_live, sample_size), dtype=_ID)
        cursor = np.zeros(n_live, dtype=_ID)
        for selected, counts, rows in per_shard:
            for row_ids, query_row in zip(rows, selected):
                take = int(counts[query_row])
                start = int(cursor[query_row])
                merged[query_row, start : start + take] = row_ids[:take]
                cursor[query_row] = start + take
        # ... and shuffle each row: the multinomial groups draws by shard, and
        # a uniform per-row permutation restores the exchangeable i.i.d. law
        # (same argument as FlatAIT.sample_many's record-grouping shuffle).
        rng.permuted(merged, axis=1, out=merged)

        out: list[np.ndarray] = [empty] * nq
        for row, query_index in enumerate(live):
            out[int(query_index)] = merged[row]
        return out

    # ------------------------------------------------------------------ #
    # scalar convenience wrappers
    # ------------------------------------------------------------------ #
    def count(self, query: QueryLike) -> int:
        """``|q ∩ X|`` for a single query."""
        return int(self.count_many([query])[0])

    def total_weight(self, query: QueryLike) -> float:
        """Total weight of ``q ∩ X`` for a single query."""
        return float(self.total_weight_many([query])[0])

    def report(self, query: QueryLike) -> np.ndarray:
        """Global ids of the intervals overlapping a single query."""
        return self.report_many([query])[0]

    def sample(
        self,
        query: QueryLike,
        sample_size: int,
        random_state: RandomState = None,
        on_empty: str = "empty",
    ) -> np.ndarray:
        """Draw ``sample_size`` i.i.d. samples from a single query's result set."""
        return self.sample_many([query], sample_size, random_state, on_empty)[0]
