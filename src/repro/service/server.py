"""HttpFrontend — a resilient asyncio HTTP front end over the RequestGateway.

This is the repo's wire tier: a dependency-free HTTP/1.1 server
(:func:`asyncio.start_server`, JSON bodies) that exposes the gateway's
operations as endpoints and wraps them in the overload machinery from
:mod:`repro.service.admission`:

* ``POST /count`` ``/total_weight`` ``/report`` ``/sample`` ``/insert``
  ``/delete`` ``/checkpoint`` — the gateway operations, one JSON object in,
  one JSON object out;
* ``GET /healthz`` — liveness: 200 for as long as the process serves;
* ``GET /readyz`` — readiness: 200 only while ``state == "ready"``; flips
  to 503 while degraded (circuit breaker open) or draining;
* ``GET /stats`` — the gateway/admission/breaker telemetry in one JSON
  document.

Resilience contract
-------------------
**Admission.** Every operation request first passes the
:class:`~repro.service.admission.AdmissionController`; above the
high-water mark it is shed immediately with **429** + ``Retry-After`` —
the server answers "try later" in microseconds instead of queueing
without bound.  A full gateway queue (:class:`GatewayOverloadError`)
maps to the same 429.

**Deadlines.** Each request carries a time budget (body key
``deadline_ms``, default/cap per the constructor) spanning queue wait,
dispatch, and retries.  On expiry the gateway future is *cancelled* — an
unstarted request never executes (no invisible late write) — and the
caller gets **504**.

**Retries.** A request that failed because a process-executor worker died
under it (see :func:`~repro.service.admission.is_worker_failure`) is
retried with jittered exponential backoff — reads only, within the
deadline.

**Circuit breaker.** Worker failures also feed the
:class:`~repro.service.admission.CircuitBreaker`; once it trips the
server enters *degraded read-only mode*: writes get **503** while reads
keep flowing and double as recovery probes.

**Graceful shutdown.** ``stop()`` / ``close()`` refuse new connections,
drain in-flight requests, then close the gateway — which flushes its
queue and fsyncs the engine's write-ahead log.  Every write acked with
200 before the drain is durable.

Examples
--------
>>> from repro import IntervalDataset
>>> from repro.service import ShardedEngine, RequestGateway, HttpFrontend
>>> from repro.service.server import http_request
>>> data = IntervalDataset.from_pairs([(0, 10), (5, 15), (20, 30), (25, 40)])
>>> engine = ShardedEngine(data, num_shards=2)
>>> gateway = RequestGateway(engine, max_wait_ms=0.5)
>>> with HttpFrontend(gateway) as frontend:
...     host, port = frontend.address
...     status, _, body = http_request(host, port, "POST", "/count", {"query": [4, 12]})
...     (status, body["result"])
(200, 2)
>>> engine.close()
"""

from __future__ import annotations

import asyncio
import json
import math
import socket
import threading
import time
from typing import Optional

import numpy as np

from ..core.errors import (
    EmptyResultError,
    GatewayClosedError,
    GatewayOverloadError,
    InvalidIntervalError,
    InvalidQueryError,
)
from .admission import AdmissionController, CircuitBreaker, Deadline, RetryPolicy, is_worker_failure
from .gateway import READ_OPS, RequestGateway

__all__ = ["HttpFrontend", "http_request", "http_request_async"]

#: Operation endpoints: request path -> gateway op.
OP_ROUTES = {
    "/count": "count",
    "/total_weight": "total_weight",
    "/report": "report",
    "/sample": "sample",
    "/insert": "insert",
    "/delete": "delete",
    "/checkpoint": "checkpoint",
}

#: The front-end lifecycle states surfaced by ``/readyz`` and ``stats()``.
FRONTEND_STATES = ("ready", "degraded", "draining", "closed")

_MAX_BODY_BYTES = 1 << 20
_MAX_HEADER_LINES = 100

_STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class _BadRequest(Exception):
    """Client-side malformation; mapped to a 400 response."""


class _DeadlineExceeded(Exception):
    """The request's time budget expired; mapped to a 504 response."""


def _jsonable(value):
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    return value


class HttpFrontend:
    """Serve a :class:`RequestGateway` over HTTP with overload protection.

    Parameters
    ----------
    gateway:
        The gateway to serve.  The front end becomes its only client;
        closing the front end closes the gateway (drain + WAL fsync), but
        the engine stays up unless the gateway owns it.
    host, port:
        Bind address.  ``port=0`` picks a free ephemeral port (read it
        back from :attr:`address`).
    admission:
        The :class:`~repro.service.admission.AdmissionController`
        enforcing the bounded in-flight window (a default one if None).
    retry:
        The :class:`~repro.service.admission.RetryPolicy` applied to
        worker-failure read retries (a default one if None).
    breaker:
        The :class:`~repro.service.admission.CircuitBreaker` guarding the
        degraded read-only transition (a default one if None).
    default_deadline_ms:
        Budget assigned to requests that do not carry ``deadline_ms``.
    max_deadline_ms:
        Upper clamp on client-supplied deadlines — a client cannot pin a
        request (and its admission slot) for longer than this.
    drain_timeout_s:
        How long ``stop()`` waits for in-flight requests before closing
        the gateway anyway.
    """

    def __init__(
        self,
        gateway: RequestGateway,
        host: str = "127.0.0.1",
        port: int = 0,
        admission: Optional[AdmissionController] = None,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        default_deadline_ms: float = 1000.0,
        max_deadline_ms: float = 30000.0,
        drain_timeout_s: float = 10.0,
    ) -> None:
        if default_deadline_ms <= 0:
            raise ValueError(f"default_deadline_ms must be positive, got {default_deadline_ms}")
        if max_deadline_ms < default_deadline_ms:
            raise ValueError(
                f"max_deadline_ms must be >= default_deadline_ms, got {max_deadline_ms}"
            )
        if drain_timeout_s < 0:
            raise ValueError(f"drain_timeout_s must be >= 0, got {drain_timeout_s}")
        self._gateway = gateway
        self._host = host
        self._port = int(port)
        self._admission = admission if admission is not None else AdmissionController()
        self._retry = retry if retry is not None else RetryPolicy()
        self._breaker = breaker if breaker is not None else CircuitBreaker()
        self._default_deadline_s = float(default_deadline_ms) / 1e3
        self._max_deadline_s = float(max_deadline_ms) / 1e3
        self._drain_timeout_s = float(drain_timeout_s)

        self._server: Optional[asyncio.base_events.Server] = None
        self._address: Optional[tuple[str, int]] = None
        self._draining = False
        self._closed = False
        self._inflight = 0
        self._idle: Optional[asyncio.Event] = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._counters = {
            "requests_total": 0,
            "responses_2xx": 0,
            "responses_4xx": 0,
            "responses_5xx": 0,
            "shed_429": 0,
            "deadline_504": 0,
            "degraded_503": 0,
            "retries_total": 0,
            "worker_failures_total": 0,
        }
        self._counter_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (resolves ``port=0``)."""
        if self._address is None:
            raise RuntimeError("frontend is not started")
        return self._address

    @property
    def state(self) -> str:
        """One of :data:`FRONTEND_STATES`."""
        if self._closed:
            return "closed"
        if self._draining:
            return "draining"
        if not self._breaker.allows_writes():
            return "degraded"
        return "ready"

    async def start(self) -> tuple[str, int]:
        """Bind and start serving on the running event loop; return the address."""
        if self._server is not None:
            raise RuntimeError("frontend is already started")
        self._loop = asyncio.get_running_loop()
        self._idle = asyncio.Event()
        self._idle.set()
        self._server = await asyncio.start_server(
            self._serve_connection, self._host, self._port
        )
        bound = self._server.sockets[0].getsockname()
        self._address = (bound[0], bound[1])
        return self._address

    async def stop(self) -> None:
        """Graceful shutdown: refuse, drain, then close the gateway.

        Ordering is the durability contract: (1) the listener closes, so
        no new connection is accepted; (2) in-flight requests drain (up to
        ``drain_timeout_s``); (3) the gateway closes, flushing its queue
        and fsyncing the engine WAL — every 200-acked write is on disk
        before ``stop()`` returns.  Idempotent.
        """
        if self._closed:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._idle is not None and self._inflight > 0:
            try:
                await asyncio.wait_for(self._idle.wait(), self._drain_timeout_s or None)
            except TimeoutError:
                pass
        await asyncio.get_running_loop().run_in_executor(None, self._gateway.close)
        self._closed = True
        for writer in list(self._writers):
            writer.close()
        await asyncio.sleep(0)

    # Thread-embedded mode --------------------------------------------- #
    def start_in_thread(self) -> tuple[str, int]:
        """Run the frontend on a dedicated event-loop thread; return the address.

        The embedding used by the tests, the benchmark, and the example:
        the caller keeps its thread, the server spins on its own daemon
        thread until :meth:`close`.
        """
        if self._thread is not None:
            raise RuntimeError("frontend thread is already running")
        loop = asyncio.new_event_loop()
        started = threading.Event()
        failures: list[BaseException] = []

        def run() -> None:
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self.start())
            except BaseException as exc:  # noqa: BLE001 - surfaced to the caller
                failures.append(exc)
                started.set()
                loop.close()
                return
            self._loop = loop
            started.set()
            loop.run_forever()
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

        self._thread = threading.Thread(target=run, name="repro-http-frontend", daemon=True)
        self._thread.start()
        started.wait()
        if failures:
            self._thread.join()
            self._thread = None
            raise failures[0]
        return self.address

    def close(self, timeout: Optional[float] = None) -> None:
        """Graceful drain from any thread (the thread-mode face of :meth:`stop`)."""
        thread, loop = self._thread, self._loop
        if thread is None or loop is None or not thread.is_alive():
            return
        asyncio.run_coroutine_threadsafe(self.stop(), loop).result(timeout)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout)
        self._thread = None

    def __enter__(self) -> "HttpFrontend":
        self.start_in_thread()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> dict:
        """One JSON document: frontend state + gateway/admission/breaker telemetry."""
        with self._counter_lock:
            counters = dict(self._counters)
        return {
            "state": self.state,
            "frontend": counters,
            "admission": self._admission.stats(),
            "breaker": self._breaker.stats(),
            "gateway": self._gateway.stats(),
        }

    def _count(self, key: str) -> None:
        with self._counter_lock:
            self._counters[key] += 1

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _BadRequest as exc:
                    await self._respond(writer, 400, {"error": str(exc)}, close=True)
                    break
                if request is None:
                    break
                keep_alive = await self._handle_request(request, writer)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader) -> Optional[dict]:
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = line.decode("latin-1").split()
        except ValueError:
            raise _BadRequest(f"malformed request line: {line!r}") from None
        headers: dict[str, str] = {}
        for _ in range(_MAX_HEADER_LINES):
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            key, sep, value = raw.decode("latin-1").partition(":")
            if not sep:
                raise _BadRequest(f"malformed header line: {raw!r}")
            headers[key.strip().lower()] = value.strip()
        else:
            raise _BadRequest("too many header lines")
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _BadRequest("malformed Content-Length") from None
        if not 0 <= length <= _MAX_BODY_BYTES:
            raise _BadRequest(f"Content-Length out of range: {length}")
        body = await reader.readexactly(length) if length else b""
        return {
            "method": method.upper(),
            "path": target.split("?", 1)[0],
            "headers": headers,
            "body": body,
        }

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        retry_after_s: Optional[float] = None,
        close: bool = False,
    ) -> None:
        if 200 <= status < 300:
            self._count("responses_2xx")
        elif 400 <= status < 500:
            self._count("responses_4xx")
        elif status >= 500:
            self._count("responses_5xx")
        body = json.dumps(payload).encode()
        headers = [
            f"HTTP/1.1 {status} {_STATUS_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        if retry_after_s is not None:
            headers.append(f"Retry-After: {max(1, math.ceil(retry_after_s))}")
        writer.write("\r\n".join(headers).encode() + b"\r\n\r\n" + body)
        await writer.drain()

    # ------------------------------------------------------------------ #
    # request handling
    # ------------------------------------------------------------------ #
    async def _handle_request(self, request: dict, writer: asyncio.StreamWriter) -> bool:
        """Route one parsed request; return False to close the connection."""
        self._count("requests_total")
        method, path = request["method"], request["path"]
        # Honour the client's framing choice: a ``Connection: close`` request
        # gets a closing response (the minimal clients below rely on EOF).
        close = request["headers"].get("connection", "").lower() == "close"

        if method == "GET":
            if path == "/healthz":
                await self._respond(
                    writer, 200, {"status": "alive", "state": self.state}, close=close
                )
            elif path == "/readyz":
                state = self.state
                if state == "ready":
                    await self._respond(writer, 200, {"status": "ready"}, close=close)
                else:
                    await self._respond(
                        writer,
                        503,
                        {"status": state},
                        retry_after_s=self._admission.retry_after_s,
                        close=close,
                    )
            elif path == "/stats":
                await self._respond(writer, 200, self.stats(), close=close)
            else:
                await self._respond(
                    writer, 404, {"error": f"unknown path {path!r}"}, close=close
                )
            return not close

        op = OP_ROUTES.get(path)
        if method != "POST" or op is None:
            await self._respond(
                writer, 404, {"error": f"unknown endpoint {method} {path}"}, close=close
            )
            return not close

        if self._draining:
            await self._respond(writer, 503, {"error": "draining"}, close=True)
            return False

        if not self._admission.acquire():
            # The fast path out: one latch check, no parsing, no queueing.
            self._count("shed_429")
            await self._respond(
                writer,
                429,
                {"error": "overloaded: admission queue past high-water mark"},
                retry_after_s=self._admission.retry_after_s,
                close=close,
            )
            return not close
        self._inflight += 1
        if self._idle is not None:
            self._idle.clear()
        try:
            status, payload, retry_after = await self._execute_op(op, request)
        finally:
            self._inflight -= 1
            if self._inflight == 0 and self._idle is not None:
                self._idle.set()
            self._admission.release()
        await self._respond(writer, status, payload, retry_after_s=retry_after, close=close)
        return not close

    def _parse_op(self, op: str, request: dict) -> tuple[tuple, dict, Deadline]:
        if request["body"]:
            try:
                body = json.loads(request["body"])
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise _BadRequest(f"body is not valid JSON: {exc}") from None
            if not isinstance(body, dict):
                raise _BadRequest("body must be a JSON object")
        else:
            body = {}

        deadline_ms = body.get("deadline_ms", request["headers"].get("x-deadline-ms"))
        if deadline_ms is None:
            deadline_s = self._default_deadline_s
        else:
            try:
                deadline_s = float(deadline_ms) / 1e3
            except (TypeError, ValueError):
                raise _BadRequest(f"deadline_ms must be a number, got {deadline_ms!r}") from None
            if deadline_s <= 0:
                raise _BadRequest(f"deadline_ms must be positive, got {deadline_ms!r}")
            deadline_s = min(deadline_s, self._max_deadline_s)

        try:
            if op in ("count", "total_weight", "report"):
                args, kwargs = (tuple(body["query"]),), {}
            elif op == "sample":
                args = (tuple(body["query"]), int(body["sample_size"]))
                kwargs = {"on_empty": body.get("on_empty", "empty")}
            elif op == "insert":
                args, kwargs = (tuple(body["interval"]),), {}
            elif op == "delete":
                args, kwargs = (int(body["id"]),), {}
            else:  # checkpoint
                args = (body["directory"],) if body.get("directory") is not None else ()
                kwargs = {
                    "fsync": bool(body.get("fsync", True)),
                    "retain": int(body.get("retain", 2)),
                }
        except KeyError as exc:
            raise _BadRequest(f"{op} request body is missing key {exc}") from None
        except (TypeError, ValueError) as exc:
            raise _BadRequest(f"malformed {op} request body: {exc}") from None
        return args, kwargs, Deadline(deadline_s)

    async def _execute_op(self, op: str, request: dict) -> tuple[int, dict, Optional[float]]:
        """Run one operation through admission/deadline/retry/breaker; no raising."""
        try:
            args, kwargs, deadline = self._parse_op(op, request)
        except _BadRequest as exc:
            return 400, {"error": str(exc)}, None

        if op not in READ_OPS and not self._breaker.allows_writes():
            self._count("degraded_503")
            return (
                503,
                {"error": "degraded read-only mode: circuit breaker is open"},
                self._breaker.cooldown_s,
            )

        delays = self._retry.delays()
        while True:
            try:
                result = await self._dispatch_once(op, args, kwargs, deadline)
            except _DeadlineExceeded:
                self._count("deadline_504")
                return 504, {"error": f"{op} missed its deadline"}, None
            except GatewayOverloadError as exc:
                return 429, {"error": str(exc)}, self._admission.retry_after_s
            except GatewayClosedError as exc:
                return 503, {"error": str(exc)}, None
            except (InvalidQueryError, InvalidIntervalError, ValueError, TypeError) as exc:
                return 400, {"error": str(exc)}, None
            except EmptyResultError as exc:
                return 404, {"error": str(exc)}, None
            except Exception as exc:  # noqa: BLE001 - mapped to a status code
                if is_worker_failure(exc):
                    self._count("worker_failures_total")
                    self._breaker.record_failure()
                    if op in READ_OPS:
                        # Reads are safe to retry: the executor respawned the
                        # worker, and no state changed.  Writes are not — a
                        # failure after apply would double-apply on retry.
                        delay = next(delays, None)
                        if delay is not None and not deadline.expired():
                            self._count("retries_total")
                            await asyncio.sleep(min(delay, deadline.remaining()))
                            continue
                return 500, {"error": f"{type(exc).__name__}: {exc}"}, None
            else:
                if op in READ_OPS:
                    self._breaker.record_success()
                return 200, {"result": _jsonable(result)}, None

    async def _dispatch_once(self, op: str, args: tuple, kwargs: dict, deadline: Deadline):
        remaining = deadline.remaining()
        if remaining <= 0:
            raise _DeadlineExceeded
        future = self._gateway.submit(op, *args, **kwargs)
        try:
            return await asyncio.wait_for(asyncio.wrap_future(future), remaining)
        except (TimeoutError, asyncio.TimeoutError):
            # Either our wait expired or the request failed with a
            # timeout-class error of its own (WorkerTimeoutError) — a done
            # future carries the request's outcome and must surface it.
            if future.done() and future.exception() is not None:
                raise future.exception() from None
            future.cancel()
            raise _DeadlineExceeded from None


# ---------------------------------------------------------------------- #
# minimal JSON-over-HTTP clients (tests, example, load generator)
# ---------------------------------------------------------------------- #
def _encode_request(method: str, path: str, body: Optional[dict]) -> bytes:
    payload = b"" if body is None else json.dumps(body).encode()
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        "Host: repro\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "Connection: close\r\n\r\n"
    )
    return head.encode() + payload


def _decode_response(raw: bytes) -> tuple[int, dict, dict]:
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers: dict[str, str] = {}
    for line in lines[1:]:
        key, _, value = line.partition(":")
        headers[key.strip().lower()] = value.strip()
    payload = json.loads(body) if body else {}
    return status, headers, payload


def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: Optional[dict] = None,
    timeout: float = 30.0,
) -> tuple[int, dict, dict]:
    """One blocking JSON request; returns ``(status, headers, payload)``."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(_encode_request(method, path, body))
        chunks = []
        deadline = time.monotonic() + timeout
        while True:
            sock.settimeout(max(0.01, deadline - time.monotonic()))
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return _decode_response(b"".join(chunks))


async def http_request_async(
    host: str,
    port: int,
    method: str,
    path: str,
    body: Optional[dict] = None,
    timeout: float = 30.0,
) -> tuple[int, dict, dict]:
    """One async JSON request; returns ``(status, headers, payload)``."""
    reader, writer = await asyncio.wait_for(asyncio.open_connection(host, port), timeout)
    try:
        writer.write(_encode_request(method, path, body))
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return _decode_response(raw)
