"""Resilience primitives for the serving front end: shed, retry, trip, expire.

The HTTP front end (:mod:`repro.service.server`) composes four small,
independently testable mechanisms, all pure bookkeeping with no I/O:

* :class:`AdmissionController` — bounded in-flight admission with
  high/low-water hysteresis.  Above the high-water mark every new request
  is shed *fast* (the caller gets a 429 + ``Retry-After`` in microseconds,
  not a queue slot); shedding stays on until depth falls back below the
  low-water mark, so a saturated server oscillates between "admit a
  batch" and "shed a burst" instead of flapping per-request.
* :class:`Deadline` — a monotonic-clock budget carried through a request's
  whole lifetime: queue wait, dispatch, retries.  Every await and every
  backoff sleep is clamped to ``remaining()``.
* :class:`RetryPolicy` — jittered exponential backoff schedule for
  requests that failed on a *dying worker* (see :func:`is_worker_failure`)
  — the one failure class where the request itself is innocent and the
  executor's respawn makes a retry likely to succeed.
* :class:`CircuitBreaker` — consecutive-worker-failure trip switch.  Open
  means *degraded read-only mode*: writes are refused (durability must not
  ride on a worker storm) while reads keep flowing — each successful read
  is the health probe that closes the breaker again after its cooldown.

Everything takes an injectable ``clock`` so the chaos tests can drive the
state machines deterministically.

Examples
--------
>>> controller = AdmissionController(max_pending=2)
>>> controller.acquire(), controller.acquire(), controller.acquire()
(True, True, False)
>>> controller.release(); controller.release()
>>> controller.acquire()
True

>>> breaker = CircuitBreaker(failure_threshold=2, cooldown_s=10.0, clock=lambda: 0.0)
>>> breaker.record_failure(); breaker.record_failure()
>>> breaker.state, breaker.allows_writes()
('open', False)
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Iterator, Optional

from ..core.errors import WorkerTimeoutError

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "Deadline",
    "RetryPolicy",
    "BREAKER_STATES",
    "is_worker_failure",
]

#: The circuit breaker's states, in trip order.
BREAKER_STATES = ("closed", "open", "half_open")


def is_worker_failure(exc: BaseException) -> bool:
    """True when ``exc`` means "a process-executor worker died under me".

    Two shapes escape the executor today: the typed
    :class:`~repro.core.errors.WorkerTimeoutError` (op timeout) and the
    respawn-cap ``RuntimeError`` whose message names the shard worker.
    These are the only failures the front end retries and counts against
    the circuit breaker — the request itself is well-formed; the substrate
    failed under it.
    """
    if isinstance(exc, WorkerTimeoutError):
        return True
    return isinstance(exc, RuntimeError) and "shard worker" in str(exc)


class Deadline:
    """A monotonic-clock time budget threaded through one request.

    Examples
    --------
    >>> deadline = Deadline(5.0, clock=lambda: 100.0)
    >>> round(deadline.remaining(now=103.0), 1)
    2.0
    >>> deadline.expired(now=106.0)
    True
    """

    __slots__ = ("expires_at", "_clock")

    def __init__(self, seconds: float, clock: Callable[[], float] = time.monotonic) -> None:
        if seconds <= 0:
            raise ValueError(f"deadline must be positive, got {seconds}")
        self._clock = clock
        self.expires_at = clock() + float(seconds)

    def remaining(self, now: Optional[float] = None) -> float:
        """Seconds left in the budget (never negative)."""
        now = self._clock() if now is None else now
        return max(0.0, self.expires_at - now)

    def expired(self, now: Optional[float] = None) -> bool:
        """True once the budget is spent."""
        return self.remaining(now) <= 0.0


class AdmissionController:
    """Bounded in-flight admission with high/low-water shed hysteresis.

    Parameters
    ----------
    max_pending:
        Hard cap on concurrently admitted requests.
    high_water:
        Depth at which shedding *starts* (default: ``max_pending``).  The
        controller sheds while latched even below the cap, which is what
        makes overload answers fast: one comparison, no allocation.
    low_water:
        Depth at which shedding *stops* once latched (default: half the
        high-water mark).  The gap is the hysteresis band that prevents
        per-request flapping around the threshold.
    retry_after_s:
        Advisory client backoff, surfaced as the HTTP ``Retry-After``
        header (rounded up to whole seconds on the wire).
    """

    __slots__ = ("_lock", "_max_pending", "_high", "_low", "_depth", "_shedding",
                 "retry_after_s", "_admitted_total", "_shed_total")

    def __init__(
        self,
        max_pending: int = 256,
        high_water: Optional[int] = None,
        low_water: Optional[int] = None,
        retry_after_s: float = 0.5,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        high = max_pending if high_water is None else int(high_water)
        if not 1 <= high <= max_pending:
            raise ValueError(f"high_water must be in [1, max_pending], got {high}")
        low = high // 2 if low_water is None else int(low_water)
        if not 0 <= low < high:
            raise ValueError(f"low_water must be in [0, high_water), got {low}")
        if retry_after_s <= 0:
            raise ValueError(f"retry_after_s must be positive, got {retry_after_s}")
        self._lock = threading.Lock()
        self._max_pending = int(max_pending)
        self._high = high
        self._low = low
        self._depth = 0
        self._shedding = False
        self.retry_after_s = float(retry_after_s)
        self._admitted_total = 0
        self._shed_total = 0

    @property
    def depth(self) -> int:
        """Requests currently admitted and not yet released."""
        return self._depth

    @property
    def shedding(self) -> bool:
        """True while the shed latch is on (between high- and low-water)."""
        return self._shedding

    def acquire(self) -> bool:
        """Try to admit one request; False means shed it (429) now."""
        with self._lock:
            if self._shedding:
                if self._depth > self._low:
                    self._shed_total += 1
                    return False
                self._shedding = False
            if self._depth >= self._high:
                self._shedding = True
                self._shed_total += 1
                return False
            self._depth += 1
            self._admitted_total += 1
            return True

    def release(self) -> None:
        """Mark one admitted request finished (success or failure alike)."""
        with self._lock:
            if self._depth <= 0:
                raise RuntimeError("release() without a matching acquire()")
            self._depth -= 1

    def stats(self) -> dict:
        """JSON-ready counters for the front end's ``/stats`` endpoint."""
        with self._lock:
            return {
                "depth": self._depth,
                "max_pending": self._max_pending,
                "high_water": self._high,
                "low_water": self._low,
                "shedding": self._shedding,
                "admitted_total": self._admitted_total,
                "shed_total": self._shed_total,
            }


class RetryPolicy:
    """Jittered exponential backoff schedule for worker-failure retries.

    ``delays()`` yields ``max_attempts - 1`` backoff sleeps (the first
    attempt is free): attempt *i* retries after
    ``min(max_backoff_s, base_backoff_s * 2**i)`` scaled by a uniform
    jitter in ``[1 - jitter, 1]``.  Jitter decorrelates the retry storms
    of concurrent callers who all saw the same worker die.

    Examples
    --------
    >>> policy = RetryPolicy(max_attempts=4, base_backoff_s=0.1, jitter=0.0)
    >>> [round(d, 2) for d in policy.delays()]
    [0.1, 0.2, 0.4]
    """

    __slots__ = ("max_attempts", "base_backoff_s", "max_backoff_s", "jitter", "_rng")

    def __init__(
        self,
        max_attempts: int = 3,
        base_backoff_s: float = 0.02,
        max_backoff_s: float = 0.5,
        jitter: float = 0.5,
        seed: Optional[int] = None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if base_backoff_s < 0 or max_backoff_s < base_backoff_s:
            raise ValueError(
                f"need 0 <= base_backoff_s <= max_backoff_s, "
                f"got {base_backoff_s} / {max_backoff_s}"
            )
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        self.max_attempts = int(max_attempts)
        self.base_backoff_s = float(base_backoff_s)
        self.max_backoff_s = float(max_backoff_s)
        self.jitter = float(jitter)
        self._rng = random.Random(seed)

    def delays(self) -> Iterator[float]:
        """Yield the backoff sleep before each retry attempt."""
        for attempt in range(self.max_attempts - 1):
            base = min(self.max_backoff_s, self.base_backoff_s * (2.0**attempt))
            yield base * (1.0 - self.jitter * self._rng.random())


class CircuitBreaker:
    """Trip to degraded read-only mode after consecutive worker failures.

    State machine (``closed`` → ``open`` → ``half_open`` → ...):

    * **closed** — healthy; writes allowed.  ``failure_threshold``
      *consecutive* worker failures trip the breaker (any success resets
      the streak).
    * **open** — degraded read-only mode: ``allows_writes()`` is False, so
      the front end refuses writes with 503 while reads keep flowing.
      After ``cooldown_s`` the next recorded outcome is a probe.
    * **half_open** — cooldown elapsed; one successful read closes the
      breaker, one more failure re-opens it (and restarts the cooldown).

    Examples
    --------
    >>> now = [0.0]
    >>> breaker = CircuitBreaker(failure_threshold=2, cooldown_s=5.0, clock=lambda: now[0])
    >>> breaker.record_failure(); breaker.record_failure()
    >>> breaker.state
    'open'
    >>> now[0] = 6.0; breaker.state
    'half_open'
    >>> breaker.record_success(); breaker.state, breaker.allows_writes()
    ('closed', True)
    """

    __slots__ = ("_lock", "failure_threshold", "cooldown_s", "_clock",
                 "_failures", "_open", "_opened_at", "_trip_total", "_recover_total")

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if cooldown_s <= 0:
            raise ValueError(f"cooldown_s must be positive, got {cooldown_s}")
        self._lock = threading.Lock()
        self.failure_threshold = int(failure_threshold)
        self.cooldown_s = float(cooldown_s)
        self._clock = clock
        self._failures = 0
        self._open = False
        self._opened_at = 0.0
        self._trip_total = 0
        self._recover_total = 0

    @property
    def state(self) -> str:
        """One of :data:`BREAKER_STATES`."""
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if not self._open:
            return "closed"
        if self._clock() - self._opened_at >= self.cooldown_s:
            return "half_open"
        return "open"

    def allows_writes(self) -> bool:
        """False while degraded (open *or* probing): reads-only until recovered."""
        with self._lock:
            return not self._open

    def record_success(self) -> None:
        """A read completed without a worker failure; closes a half-open breaker."""
        with self._lock:
            self._failures = 0
            if self._open and self._state_locked() == "half_open":
                self._open = False
                self._recover_total += 1

    def record_failure(self) -> None:
        """A worker failure; trips a closed breaker, re-arms an open one."""
        with self._lock:
            self._failures += 1
            if self._open:
                # A half-open probe failed (or the storm continues): restart
                # the cooldown so recovery waits for a full quiet window.
                self._opened_at = self._clock()
            elif self._failures >= self.failure_threshold:
                self._open = True
                self._opened_at = self._clock()
                self._trip_total += 1

    def stats(self) -> dict:
        """JSON-ready state for the front end's ``/stats`` endpoint."""
        with self._lock:
            return {
                "state": self._state_locked(),
                "failure_threshold": self.failure_threshold,
                "cooldown_s": self.cooldown_s,
                "consecutive_failures": self._failures,
                "trips_total": self._trip_total,
                "recoveries_total": self._recover_total,
            }
