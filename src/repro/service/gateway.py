"""RequestGateway — transparent micro-batching for concurrent single-query traffic.

The batch engines built by the earlier layers (:class:`~repro.core.flat.FlatAIT`,
:class:`~repro.service.engine.ShardedEngine`) answer *batches* an order of
magnitude faster than query-at-a-time loops — but real serving traffic
arrives as independent single requests from many concurrent callers, none of
whom can assemble a batch on their own.  The gateway closes that gap:

* callers submit single ``count`` / ``report`` / ``sample`` /
  ``total_weight`` requests (plus ``insert`` / ``delete`` writes and
  ``checkpoint`` snapshots) from any thread and get a
  :class:`concurrent.futures.Future` back;
* a single dispatcher thread coalesces queued requests into **micro-batches**
  under a tunable window — a batch closes when it holds ``max_batch_size``
  requests or the oldest request has waited ``max_wait_ms`` milliseconds,
  whichever comes first;
* each micro-batch is dispatched **grouped by operation** through the
  engine's vectorised ``*_many`` APIs, so a burst of 64 concurrent ``count``
  calls costs one level-synchronous traversal instead of 64.

Consistency
-----------
The engine applies buffered writes at batch boundaries only (see
:meth:`ShardedEngine.refresh`), and the gateway preserves exactly that
invariant one level up: writes drained into a micro-batch are applied
*before* the batch's read groups are dispatched, and never between them.
Every read in a micro-batch therefore observes one snapshot version — the
one containing all writes that arrived before the batch closed.  A write
never splits a micro-batch of reads, and a micro-batch never observes a
half-applied write burst.

Failure isolation
-----------------
Requests are validated at submit time (malformed queries fail their own
future immediately, before ever joining a batch), and if a *grouped*
dispatch raises mid-batch — e.g. one ``sample(..., on_empty="raise")``
request with an empty result set — the gateway falls back to per-request
dispatch within that group, so the exception lands only on the future that
caused it and its batch-mates still succeed.

Telemetry from :mod:`repro.service.metrics` is surfaced via
:meth:`RequestGateway.stats`: per-operation counters, the micro-batch size
histogram, and p50/p95/p99 end-to-end latency per operation.
"""

from __future__ import annotations

import queue as queue_module
import threading
import time
from concurrent.futures import Future
from typing import Optional

import numpy as np

from ..core.errors import (
    GatewayClosedError,
    GatewayOverloadError,
    InvalidIntervalError,
    InvalidQueryError,
)
from ..core.flat import FlatAIT
from ..core.interval import Interval, validate_endpoints
from ..core.query import QueryLike, validate_sample_size
from ..sampling.rng import RandomState, resolve_rng
from .metrics import GatewayMetrics

__all__ = ["RequestGateway"]

#: Read operations, dispatched grouped through the engine's ``*_many`` APIs.
READ_OPS = frozenset({"count", "total_weight", "report", "sample"})

#: Write operations, applied in bulk at the head of every micro-batch.
WRITE_OPS = frozenset({"insert", "delete"})

#: Control operations, executed on the dispatcher thread between the write
#: and read groups of their micro-batch.
CONTROL_OPS = frozenset({"checkpoint"})

_STOP = object()


class _Request:
    """One queued request: operation, validated payload, and its future."""

    __slots__ = ("op", "payload", "group_key", "future", "enqueued_at")

    def __init__(self, op: str, payload: tuple, group_key: tuple) -> None:
        self.op = op
        self.payload = payload
        self.group_key = group_key
        self.future: Future = Future()
        self.enqueued_at = time.perf_counter()


class RequestGateway:
    """Coalesce concurrent single-query requests into engine micro-batches.

    Parameters
    ----------
    engine:
        Any object exposing the batch API (``count_many`` /
        ``total_weight_many`` / ``report_many`` / ``sample_many`` and, for
        write traffic, ``insert_many`` / ``delete_many``) — typically a
        :class:`~repro.service.engine.ShardedEngine`.  The gateway is the
        engine's **only** caller while it is running: all engine access is
        serialised through the dispatcher thread, which is what makes the
        (thread-unsafe) engine safe to share between callers.
    max_batch_size:
        Maximum requests per micro-batch.  ``1`` degenerates to scalar
        dispatch (useful as an experimental baseline).
    max_wait_ms:
        Maximum time the *oldest* request in a forming batch waits for
        batch-mates, i.e. the latency the gateway may add when traffic is
        light.  ``0`` dispatches whatever is queued without waiting.
    max_queue_depth:
        Bounded-intake cap: when the dispatch queue already holds this many
        requests, :meth:`submit` sheds the newcomer with
        :class:`~repro.core.errors.GatewayOverloadError` instead of growing
        memory without bound.  ``None`` disables shedding (the pre-bounded
        legacy behaviour).
    random_state:
        Seed/generator for ``sample`` dispatch.  One stream is used for all
        sampling batches, so results are reproducible given a deterministic
        arrival order (e.g. a paused gateway in tests).
    metrics:
        A :class:`~repro.service.metrics.GatewayMetrics` to record into
        (a fresh one by default).
    start:
        When False the dispatcher thread is not started; requests queue up
        until :meth:`process_pending` is called (deterministic batch
        formation — used by tests and the latency experiment's replay mode).

    Examples
    --------
    >>> from repro import IntervalDataset
    >>> from repro.service import ShardedEngine, RequestGateway
    >>> data = IntervalDataset.from_pairs([(0, 10), (5, 15), (20, 30), (25, 40)])
    >>> with ShardedEngine(data, num_shards=2) as engine:
    ...     with RequestGateway(engine, max_wait_ms=1.0) as gateway:
    ...         future = gateway.submit("count", (4, 12))
    ...         future.result()
    ...         gateway.count((18, 26))        # blocking convenience wrapper
    ...         new_id = gateway.insert((8, 22))
    ...         gateway.count((4, 12))
    2
    2
    3
    >>> isinstance(gateway.stats()["batches"]["dispatched"], int)
    True
    """

    def __init__(
        self,
        engine,
        max_batch_size: int = 64,
        max_wait_ms: float = 2.0,
        max_queue_depth: Optional[int] = 8192,
        random_state: RandomState = 0,
        metrics: Optional[GatewayMetrics] = None,
        start: bool = True,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1 or None, got {max_queue_depth}")
        self._engine = engine
        self._max_batch_size = int(max_batch_size)
        self._max_wait = float(max_wait_ms) / 1e3
        self._max_queue_depth = None if max_queue_depth is None else int(max_queue_depth)
        self._rng = resolve_rng(random_state)
        self._metrics = metrics if metrics is not None else GatewayMetrics()
        self._queue: queue_module.Queue = queue_module.Queue()
        self._closed = False
        self._close_lock = threading.Lock()
        self._dispatcher: Optional[threading.Thread] = None
        if start:
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop, name="repro-gateway-dispatcher", daemon=True
            )
            self._dispatcher.start()

    # ------------------------------------------------------------------ #
    # accessors / lifecycle
    # ------------------------------------------------------------------ #
    @property
    def max_batch_size(self) -> int:
        """Maximum number of requests coalesced into one micro-batch."""
        return self._max_batch_size

    @property
    def max_wait_ms(self) -> float:
        """Maximum milliseconds the oldest queued request waits for batch-mates."""
        return self._max_wait * 1e3

    @property
    def max_queue_depth(self) -> Optional[int]:
        """Intake bound; submits shed with ``GatewayOverloadError`` beyond it."""
        return self._max_queue_depth

    @property
    def queue_depth(self) -> int:
        """Requests currently queued and not yet drained into a micro-batch."""
        return self._queue.qsize()

    @property
    def is_running(self) -> bool:
        """True while the dispatcher thread is alive and accepting requests."""
        return (
            not self._closed
            and self._dispatcher is not None
            and self._dispatcher.is_alive()
        )

    def stats(self) -> dict:
        """JSON-ready telemetry snapshot (counters, batch histogram, latency percentiles).

        Besides the request/batch counters the snapshot reports an
        ``"engine"`` section describing the serving stack behind the
        gateway — most usefully which execution tier is live
        (``executor: "serial" | "threads" | "process"``, plus the process
        executor's ``scatter`` strategy, ``None`` for in-process executors).
        """
        out = self._metrics.snapshot()
        out["queue"] = {
            "depth": self._queue.qsize(),
            "max_queue_depth": self._max_queue_depth,
        }
        engine = self._engine
        out["engine"] = {
            "executor": getattr(engine, "executor_kind", type(engine).__name__),
            "num_shards": getattr(engine, "num_shards", 1),
            "kernel_backend": getattr(engine, "kernel_backend", "numpy"),
            "scatter": getattr(engine, "scatter", None),
        }
        return out

    def close(self, timeout: Optional[float] = None, close_engine: bool = False) -> None:
        """Stop accepting requests, flush everything queued, join the dispatcher.

        Pending futures are *completed*, not cancelled: the dispatcher
        drains the queue into final micro-batches before exiting, and any
        engine write-ahead log is fsynced before close returns — every
        acknowledged write is durable by the time the caller regains
        control.  Idempotent; submits after close raise
        :class:`~repro.core.errors.GatewayClosedError`.

        ``close_engine=True`` additionally closes the engine once the
        dispatcher has drained — the one-call teardown for process-executor
        deployments: the engine's ``close`` shuts down an owned executor,
        which stops its worker processes and unlinks every shared-memory
        segment.  The ordering matters and is guaranteed here: workers go
        down only *after* the last micro-batch has been answered.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
            self._queue.put(_STOP)
        if self._dispatcher is not None:
            self._dispatcher.join(timeout)
        else:
            self._drain_all()
        self._sync_writes()
        if close_engine:
            closer = getattr(self._engine, "close", None)
            if closer is not None:
                closer()

    def __enter__(self) -> "RequestGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def submit(self, op: str, *args, **kwargs) -> Future:
        """Enqueue one request; return the future carrying its result.

        ``op`` is one of ``count`` / ``total_weight`` / ``report`` /
        ``sample`` / ``insert`` / ``delete`` / ``checkpoint``; positional
        arguments mirror the engine's scalar API (``sample`` additionally
        accepts the ``on_empty`` keyword, ``checkpoint`` the ``fsync`` and
        ``retain`` keywords).  Validation runs *here*, on the submitting
        thread — a malformed request raises immediately and never enters a
        batch.
        """
        if self._closed:
            raise GatewayClosedError("gateway is closed")  # fast path; re-checked at enqueue
        if op in ("count", "total_weight", "report"):
            (query,) = args
            payload = (self._coerce_query(query),)
            group_key = (op,)
        elif op == "sample":
            query, sample_size = args
            on_empty = kwargs.pop("on_empty", "empty")
            if on_empty not in ("empty", "raise"):
                raise ValueError(f"on_empty must be 'empty' or 'raise', got {on_empty!r}")
            sample_size = validate_sample_size(sample_size)
            payload = (self._coerce_query(query), sample_size, on_empty)
            group_key = (op, sample_size, on_empty)
        elif op == "insert":
            (interval,) = args
            payload = (self._coerce_interval(interval),)
            group_key = (op,)
        elif op == "delete":
            (global_id,) = args
            payload = (int(global_id),)
            group_key = (op,)
        elif op == "checkpoint":
            if not hasattr(self._engine, "save_snapshot"):
                raise ValueError(
                    f"engine {type(self._engine).__name__} does not support snapshots"
                )
            if len(args) > 1:
                raise TypeError(f"checkpoint takes at most one positional argument, got {len(args)}")
            directory = args[0] if args else None
            fsync = bool(kwargs.pop("fsync", True))
            retain = int(kwargs.pop("retain", 2))
            payload = (directory, fsync, retain)
            group_key = (op,)
        else:
            raise ValueError(
                f"unknown operation {op!r}; expected one of "
                f"{sorted(READ_OPS | WRITE_OPS | CONTROL_OPS)}"
            )
        if kwargs:
            raise TypeError(f"unexpected keyword arguments for {op!r}: {sorted(kwargs)}")
        request = _Request(op, payload, group_key)
        # Enqueue under the close lock: close() sets the flag and enqueues its
        # stop sentinel under the same lock, so a request can never land
        # *behind* the sentinel on a dispatcher that already drained and
        # exited — which would strand the future forever.
        with self._close_lock:
            if self._closed:
                raise GatewayClosedError("gateway is closed")
            if (
                self._max_queue_depth is not None
                and self._queue.qsize() >= self._max_queue_depth
            ):
                # Shed *before* enqueueing: the overloaded path must stay
                # O(1) and allocation-free so the gateway answers "try again
                # later" faster than it could ever answer the query.
                self._metrics.record_shed(op)
                raise GatewayOverloadError(
                    f"gateway overloaded: {self._queue.qsize()} requests queued "
                    f"(max_queue_depth={self._max_queue_depth})"
                )
            self._metrics.record_request(op)
            self._queue.put(request)
        return request.future

    def _await_result(self, op: str, future: Future, timeout: Optional[float]):
        """Wait out a blocking wrapper; cancel the request on wait-timeout.

        Without the cancel, a timed-out wrapper would leave its request
        queued: the dispatcher would still execute it and the outcome —
        including a *write* — would land invisibly after the caller already
        gave up.  Cancelling the future means a not-yet-started request is
        dropped at dispatch (``set_running_or_notify_cancel`` filters it out
        of its micro-batch); a request already mid-dispatch completes, which
        the re-raised error spells out.
        """
        try:
            return future.result(timeout)
        except TimeoutError:
            # Distinguish "the wait expired" from "the request itself failed
            # with a timeout-class error" (e.g. WorkerTimeoutError): a done
            # future carries the request's own outcome and must surface it.
            if future.done():
                if future.exception() is not None:
                    raise
                return future.result()
            cancelled = future.cancel()
            self._metrics.record_timeout(op)
            detail = (
                "request cancelled before dispatch"
                if cancelled
                else "request already dispatching; its result is discarded"
            )
            raise TimeoutError(
                f"{op} did not complete within {timeout}s ({detail})"
            ) from None

    # Blocking convenience wrappers -------------------------------------- #
    def count(self, query: QueryLike, timeout: Optional[float] = None) -> int:
        """``|q ∩ X|`` for one query (blocks until its micro-batch completes)."""
        return self._await_result("count", self.submit("count", query), timeout)

    def total_weight(self, query: QueryLike, timeout: Optional[float] = None) -> float:
        """Total weight of ``q ∩ X`` for one query (blocking)."""
        return self._await_result(
            "total_weight", self.submit("total_weight", query), timeout
        )

    def report(self, query: QueryLike, timeout: Optional[float] = None) -> np.ndarray:
        """Ids of the intervals overlapping one query (blocking)."""
        return self._await_result("report", self.submit("report", query), timeout)

    def sample(
        self,
        query: QueryLike,
        sample_size: int,
        on_empty: str = "empty",
        timeout: Optional[float] = None,
    ) -> np.ndarray:
        """``sample_size`` i.i.d. draws from one query's result set (blocking)."""
        return self._await_result(
            "sample", self.submit("sample", query, sample_size, on_empty=on_empty), timeout
        )

    def insert(
        self, interval: Interval | tuple[float, float], timeout: Optional[float] = None
    ) -> int:
        """Insert one interval; returns its global id (blocking)."""
        return self._await_result("insert", self.submit("insert", interval), timeout)

    def delete(self, global_id: int, timeout: Optional[float] = None) -> bool:
        """Delete one interval by global id; True when it was active (blocking)."""
        return self._await_result("delete", self.submit("delete", global_id), timeout)

    def checkpoint(
        self,
        directory=None,
        fsync: bool = True,
        retain: int = 2,
        timeout: Optional[float] = None,
    ) -> int:
        """Snapshot the engine on the dispatcher thread; return the new epoch.

        This is the only safe way to checkpoint an engine behind a *running*
        gateway: the checkpoint executes inside the dispatch loop, after the
        writes of its micro-batch and never concurrently with any other
        engine call, so a write can never land in the outgoing epoch's WAL
        while missing from the new snapshot.  Arguments mirror
        :meth:`ShardedEngine.save_snapshot` (blocking).
        """
        future = self.submit(
            "checkpoint",
            *(() if directory is None else (directory,)),
            fsync=fsync,
            retain=retain,
        )
        return self._await_result("checkpoint", future, timeout)

    # ------------------------------------------------------------------ #
    # validation helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _coerce_query(query: QueryLike) -> tuple[float, float]:
        """Validate one query now so a bad one cannot poison a batch later."""
        try:
            ql, qr = FlatAIT.coerce_queries([query])
        except (InvalidQueryError, InvalidIntervalError):
            raise
        except (TypeError, ValueError) as exc:
            raise InvalidQueryError(f"malformed query {query!r}") from exc
        return float(ql[0]), float(qr[0])

    @staticmethod
    def _coerce_interval(interval) -> tuple[float, float]:
        """Validate one to-be-inserted interval on the submitting thread."""
        if isinstance(interval, Interval):
            left, right = interval.left, interval.right
        else:
            try:
                left, right = interval
                left, right = float(left), float(right)
            except (TypeError, ValueError) as exc:
                raise InvalidIntervalError(
                    f"insert expects an Interval or a (left, right) pair, got {interval!r}"
                ) from exc
        validate_endpoints(left, right)
        return left, right

    # ------------------------------------------------------------------ #
    # dispatcher
    # ------------------------------------------------------------------ #
    def _dispatch_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                break
            self._execute_batch(self._fill_batch(item))
        self._drain_all()

    def _fill_batch(self, first: _Request) -> list[_Request]:
        """Grow a micro-batch from ``first`` until full or the window expires."""
        batch = [first]
        deadline = first.enqueued_at + self._max_wait
        while len(batch) < self._max_batch_size:
            # Backlogged requests join without waiting ...
            try:
                item = self._queue.get_nowait()
            except queue_module.Empty:
                # ... then the window keeps the batch open for late arrivals.
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                try:
                    item = self._queue.get(timeout=remaining)
                except queue_module.Empty:
                    break
            if item is _STOP:
                # Preserve shutdown: re-enqueue so the outer loop sees it
                # right after this batch completes.
                self._queue.put(_STOP)
                break
            batch.append(item)
        return batch

    def _drain_all(self) -> None:
        """Flush every queued request into final micro-batches (shutdown path)."""
        pending: list[_Request] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue_module.Empty:
                break
            if item is not _STOP:
                pending.append(item)
        for start in range(0, len(pending), self._max_batch_size):
            self._execute_batch(pending[start : start + self._max_batch_size])

    def process_pending(self) -> int:
        """Synchronously form and execute micro-batches from the current queue.

        Only meaningful on a paused gateway (``start=False``): batches are
        formed deterministically in arrival order, honouring
        ``max_batch_size`` but not the wait window (there is no dispatcher
        to race against).  Returns the number of requests processed.
        """
        if self._dispatcher is not None:
            raise RuntimeError(
                "process_pending is only available on a paused gateway (start=False)"
            )
        before = self._queue.qsize()
        self._drain_all()
        return before

    # ------------------------------------------------------------------ #
    # batch execution
    # ------------------------------------------------------------------ #
    def _execute_batch(self, batch: list[_Request]) -> None:
        batch = [r for r in batch if r.future.set_running_or_notify_cancel()]
        if not batch:
            return

        # Writes first, checkpoints second, reads last: every read in the
        # micro-batch observes the same snapshot, which already contains the
        # batch's writes (the engine folds buffered writes in at its own
        # batch boundary), and a checkpoint folds in every write dispatched
        # before it.
        writes = [r for r in batch if r.op in WRITE_OPS]
        controls = [r for r in batch if r.op in CONTROL_OPS]
        reads = [r for r in batch if r.op in READ_OPS]

        groups: dict[tuple, list[_Request]] = {}
        for request in writes + controls + reads:
            groups.setdefault(request.group_key, []).append(request)
        self._metrics.record_batch(len(batch), groups=len(groups))

        for key in list(groups):
            if key[0] == "insert":
                self._run_group(groups[key], self._dispatch_inserts, self._scalar_insert)
            elif key[0] == "delete":
                self._run_group(groups[key], self._dispatch_deletes, self._scalar_delete)
        for key in list(groups):
            if key[0] == "checkpoint":
                self._dispatch_checkpoints(groups[key])
        for key, members in groups.items():
            if key[0] in WRITE_OPS or key[0] in CONTROL_OPS:
                continue
            if key[0] == "sample":

                def grouped(reqs, s=key[1], oe=key[2]):
                    self._dispatch_samples(reqs, s, oe)

                def scalar(req, s=key[1], oe=key[2]):
                    self._scalar_sample(req, s, oe)

            else:

                def grouped(reqs, op=key[0]):
                    self._dispatch_reads(reqs, op)

                def scalar(req, op=key[0]):
                    self._dispatch_reads([req], op)

            self._run_group(members, grouped, scalar)

    def _run_group(self, requests: list[_Request], grouped, scalar) -> None:
        """Dispatch one group; on failure, isolate the error per request."""
        try:
            grouped(requests)
        except Exception:
            # One request's failure must not poison its batch-mates: retry
            # each request alone so exceptions land only where they belong.
            self._metrics.record_fallback()
            for request in requests:
                if request.future.done():
                    continue
                try:
                    scalar(request)
                except Exception as exc:
                    self._finish(request, error=exc)

    def _finish(self, request: _Request, result=None, error: Exception | None = None) -> None:
        latency = time.perf_counter() - request.enqueued_at
        if error is not None:
            self._metrics.record_completion(request.op, latency, error=True)
            request.future.set_exception(error)
        else:
            self._metrics.record_completion(request.op, latency)
            request.future.set_result(result)

    # Read dispatch ------------------------------------------------------ #
    def _query_array(self, requests: list[_Request]) -> np.ndarray:
        out = np.empty((len(requests), 2), dtype=np.float64)
        for i, request in enumerate(requests):
            out[i, 0], out[i, 1] = request.payload[0]
        return out

    def _dispatch_reads(self, requests: list[_Request], op: str) -> None:
        queries = self._query_array(requests)
        if op == "count":
            values = self._engine.count_many(queries)
            for request, value in zip(requests, values):
                self._finish(request, int(value))
        elif op == "total_weight":
            values = self._engine.total_weight_many(queries)
            for request, value in zip(requests, values):
                self._finish(request, float(value))
        else:  # report
            rows = self._engine.report_many(queries)
            for request, row in zip(requests, rows):
                self._finish(request, row)

    def _dispatch_samples(
        self, requests: list[_Request], sample_size: int, on_empty: str
    ) -> None:
        rows = self._engine.sample_many(
            self._query_array(requests),
            sample_size,
            random_state=self._rng,
            on_empty=on_empty,
        )
        for request, row in zip(requests, rows):
            self._finish(request, row)

    def _scalar_sample(self, request: _Request, sample_size: int, on_empty: str) -> None:
        self._dispatch_samples([request], sample_size, on_empty)

    # Control dispatch --------------------------------------------------- #
    def _dispatch_checkpoints(self, requests: list[_Request]) -> None:
        """Run queued checkpoints sequentially; errors stay on their future."""
        for request in requests:
            directory, fsync, retain = request.payload
            try:
                epoch = self._engine.save_snapshot(directory, fsync=fsync, retain=retain)
            except Exception as exc:
                self._finish(request, error=exc)
            else:
                self._finish(request, int(epoch))

    # Write dispatch ----------------------------------------------------- #
    def _sync_writes(self) -> None:
        """Durability barrier: fsync the engine's write-ahead logs (if any).

        Runs after every write dispatch, *before* the write futures
        complete — under the WAL's ``"batch"`` fsync policy this is exactly
        what makes a completed write future an acknowledged-durable write.
        """
        sync = getattr(self._engine, "sync_wal", None)
        if sync is not None:
            sync()

    def _dispatch_inserts(self, requests: list[_Request]) -> None:
        lefts = [request.payload[0][0] for request in requests]
        rights = [request.payload[0][1] for request in requests]
        ids = self._engine.insert_many(lefts, rights)
        self._sync_writes()
        for request, new_id in zip(requests, ids):
            self._finish(request, int(new_id))

    def _scalar_insert(self, request: _Request) -> None:
        left, right = request.payload[0]
        new_id = int(self._engine.insert_many([left], [right])[0])
        self._sync_writes()
        self._finish(request, new_id)

    def _dispatch_deletes(self, requests: list[_Request]) -> None:
        flags = self._engine.delete_many([request.payload[0] for request in requests])
        self._sync_writes()
        for request, flag in zip(requests, flags):
            self._finish(request, bool(flag))

    def _scalar_delete(self, request: _Request) -> None:
        flag = bool(self._engine.delete_many([request.payload[0]])[0])
        self._sync_writes()
        self._finish(request, flag)
