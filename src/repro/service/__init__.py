"""Serving layer: sharded, update-aware batch query execution over FlatAIT.

The :mod:`repro.service` subsystem turns the single-snapshot batch engine of
:class:`~repro.core.flat.FlatAIT` into something deployable: a
:class:`ShardedEngine` that partitions the dataset across shards, answers
batches by scatter-gather with exact (counting/reporting) or
distribution-identical (sampling) semantics, and absorbs writes through
per-shard delta logs with versioned snapshot refresh.  See
``docs/ARCHITECTURE.md`` for the layer map and the sampling-correctness
argument.
"""

from .engine import ShardedEngine
from .executor import SerialExecutor, ThreadedExecutor, resolve_executor
from .shard import Shard

__all__ = [
    "ShardedEngine",
    "Shard",
    "SerialExecutor",
    "ThreadedExecutor",
    "resolve_executor",
]
