"""Serving layer: sharded, update-aware batch query execution over FlatAIT.

The :mod:`repro.service` subsystem turns the single-snapshot batch engine of
:class:`~repro.core.flat.FlatAIT` into something deployable: a
:class:`ShardedEngine` that partitions the dataset across shards, answers
batches by scatter-gather with exact (counting/reporting) or
distribution-identical (sampling) semantics, and absorbs writes through
per-shard delta logs with versioned snapshot refresh; a
:class:`RequestGateway` that transparently coalesces concurrent single-query
traffic into the engine's batch API under a tunable micro-batching window;
and :class:`GatewayMetrics` telemetry (counters, batch-size histogram,
latency percentiles).  On top of the gateway sits the wire tier: an
:class:`HttpFrontend` (:mod:`repro.service.server`) serving JSON-over-HTTP
with admission control, per-request deadlines, worker-failure retries, a
:class:`CircuitBreaker` guarding a degraded read-only mode, and graceful
drain (:mod:`repro.service.admission`).  Scatter-gather execution is pluggable
(:class:`SerialExecutor` / :class:`ThreadedExecutor` /
:class:`ProcessExecutor` — the latter fans shard ops out to long-lived
worker processes over shared-memory snapshots, see :mod:`repro.service.shm`).
See ``docs/ARCHITECTURE.md`` for the layer map, the sampling-correctness
argument, and the batch-boundary consistency argument.
"""

from .admission import (
    BREAKER_STATES,
    AdmissionController,
    CircuitBreaker,
    Deadline,
    RetryPolicy,
    is_worker_failure,
)
from .engine import ShardedEngine
from .executor import (
    EXECUTOR_NAMES,
    SCATTER_NAMES,
    ProcessExecutor,
    SerialExecutor,
    ThreadedExecutor,
    resolve_executor,
)
from .gateway import RequestGateway
from .metrics import BatchSizeHistogram, GatewayMetrics, LatencyReservoir
from .server import HttpFrontend, http_request, http_request_async
from .shard import Shard
from .shm import ShardView

__all__ = [
    "ShardedEngine",
    "Shard",
    "ShardView",
    "RequestGateway",
    "HttpFrontend",
    "AdmissionController",
    "CircuitBreaker",
    "Deadline",
    "RetryPolicy",
    "BREAKER_STATES",
    "is_worker_failure",
    "http_request",
    "http_request_async",
    "GatewayMetrics",
    "BatchSizeHistogram",
    "LatencyReservoir",
    "SerialExecutor",
    "ThreadedExecutor",
    "ProcessExecutor",
    "resolve_executor",
    "EXECUTOR_NAMES",
    "SCATTER_NAMES",
]
