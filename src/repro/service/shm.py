"""Shared-memory shard views and the process-executor worker protocol.

The engine's scatter-gather step runs one *op* per shard per batch.  For the
in-process executors the op closes over the live :class:`~repro.service.shard.Shard`;
for :class:`~repro.service.executor.ProcessExecutor` the shard must be visible
from another process without pickling an engine.  This module provides both
sides of that bridge:

* :class:`ShardView` — the minimal read surface an op needs: shard id, the
  :class:`~repro.core.flat.FlatAIT` snapshot, and the local→global id map.
  Every executor runs the *same* module-level op functions over views, so
  results are bit-identical by construction; only where the view's arrays
  live differs.
* :func:`publish_shard` / :func:`attach_segment` — one
  ``multiprocessing.shared_memory`` segment per (shard, version): the
  snapshot's arrays (:meth:`FlatAIT.to_buffers`, derived rank keys included
  so workers never recompute) plus the global id map, copied once behind a
  JSON-able manifest of (name, dtype, shape, offset) entries.  Workers
  rebuild zero-copy views with :meth:`FlatAIT.from_buffers`.
* :func:`worker_main` — the long-lived worker loop: attach segments on
  ``publish`` messages (replacing any prior version of the same shard), run
  op batches on ``op`` messages, exit on ``stop``.  Workers never mutate
  anything: writes and snapshot refreshes stay on the owner process, and a
  version bump simply republishes the shard's segment.

The op payloads are compact per-batch task descriptors — query endpoint
arrays, per-shard draw allocations, per-shard RNG *seeds* (plain ints, see
:func:`repro.sampling.rng.spawn_seeds`) — never engines or closures.

Query-parallel tiles.  An ``op`` message addresses work as *specs*: either a
bare segment key (the whole query batch — the data-parallel scatter) or a
``(key, start, stop)`` tile (a contiguous query block — the query-parallel
scatter, see ``ProcessExecutor(scatter=...)``).  :func:`slice_payload` cuts a
tile's payload out of the batch payload, and :func:`merge_block_results`
reassembles per-tile results into the exact value the whole-batch op would
have returned.  Sampling stays bit-identical under any tiling because
:func:`_op_sample` never draws from one batch-wide stream: every canonical
:data:`SEED_BLOCK`-query block derives its own generator from the shard seed
(``SeedSequence(seed, spawn_key=(block,))``), so a block's draws depend only
on that block's queries — executors merely have to cut tiles on
:data:`SEED_BLOCK` boundaries.
"""

from __future__ import annotations

import sys
import traceback
from multiprocessing import resource_tracker, shared_memory
from typing import Optional

import numpy as np

from ..core.flat import FlatAIT

__all__ = [
    "ShardView",
    "run_shard_op",
    "slice_payload",
    "merge_block_results",
    "publish_shard",
    "attach_segment",
    "worker_main",
    "SHARD_OPS",
    "SEED_BLOCK",
]

_ID = np.int64
_F8 = np.float64

#: Canonical sampling seed-block width, in queries.  ``_op_sample`` derives
#: one child generator per (shard, block of SEED_BLOCK consecutive batch
#: positions) instead of one stream per shard, so the draws for a block are a
#: pure function of that block's queries.  Any query tiling whose cuts land
#: on multiples of SEED_BLOCK therefore reproduces the whole-batch draws bit
#: for bit.  Changing this value changes which i.i.d. sample a given seed
#: yields (still exactly i.i.d. — just a different, equally valid draw).
SEED_BLOCK = 16

#: Segment alignment for array starts — one cache line, and a multiple of
#: every dtype itemsize in the schema.
_ALIGN = 64


class ShardView:
    """The read-only face of one shard: snapshot + id map, nothing else.

    Built either from a live :class:`~repro.service.shard.Shard` (in-process
    executors; the arrays are the shard's own) or from a shared-memory
    segment (:func:`attach_segment`; the arrays are zero-copy views into the
    segment, and ``segment`` pins the mapping alive).
    """

    __slots__ = ("shard_id", "snapshot", "global_map", "segment")

    def __init__(
        self,
        shard_id: int,
        snapshot: FlatAIT,
        global_map: np.ndarray,
        segment: Optional[shared_memory.SharedMemory] = None,
    ) -> None:
        self.shard_id = int(shard_id)
        self.snapshot = snapshot
        self.global_map = global_map
        self.segment = segment

    @classmethod
    def of_shard(cls, shard) -> "ShardView":
        """View a live shard directly (serial / threaded execution)."""
        return cls(shard.shard_id, shard.snapshot, shard.global_map)

    def to_global(self, local_ids: np.ndarray) -> np.ndarray:
        """Map shard-local interval ids to engine-global ids."""
        if local_ids.shape[0] == 0:
            return local_ids
        return self.global_map[local_ids]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = "shm" if self.segment is not None else "local"
        return f"ShardView(shard_id={self.shard_id}, backing={where!r})"


# ---------------------------------------------------------------------- #
# per-shard ops (the one implementation every executor runs)
# ---------------------------------------------------------------------- #
def _op_count(view: ShardView, payload: dict) -> np.ndarray:
    return view.snapshot._count_many(payload["ql"], payload["qr"])


def _op_total_weight(view: ShardView, payload: dict) -> np.ndarray:
    return view.snapshot._total_weight_many(payload["ql"], payload["qr"])


def _op_report(view: ShardView, payload: dict) -> list[np.ndarray]:
    return [
        view.to_global(chunk)
        for chunk in view.snapshot._report_many(payload["ql"], payload["qr"])
    ]


def _block_rng(seed, block_id: int) -> np.random.Generator:
    """The canonical generator for one (shard seed, seed-block) pair.

    ``SeedSequence(seed, spawn_key=(block,))`` is exactly the stream the
    ``block``-th spawned child of ``SeedSequence(seed)`` would get — derived
    directly so block ``b`` costs O(1) instead of spawning ``b`` children.
    """
    return np.random.default_rng(
        np.random.SeedSequence(int(seed), spawn_key=(int(block_id),))
    )


def _op_sample(view: ShardView, payload: dict):
    """Stage 2 of the engine's two-stage sampler, for one shard.

    ``payload`` carries the *live* query endpoints, the stage-1 multinomial
    allocation matrix ``alloc`` (queries x shards), one integer RNG seed per
    shard, and optionally ``offset`` — the batch-global position of this
    payload's first query (0 for a whole batch; the tile start under the
    query-parallel scatter).  This shard reads its own column and seed.

    The draw schedule is *seed-blocked*: queries are grouped by their
    canonical :data:`SEED_BLOCK`-wide batch-position block, and every block
    draws from its own generator (:func:`_block_rng`).  Within a block,
    queries are bucketed by the power-of-two ceiling of their allocation —
    the flat engine draws one fixed sample count per batch call, so each
    bucket draws its own max (over-draw bounded at 2x) instead of every
    query drawing the shard-wide max.  Returns ``(selected, counts, rows)``
    with rows already mapped to global ids.
    """
    counts = payload["alloc"][:, view.shard_id]
    selected = np.flatnonzero(counts > 0)
    if selected.shape[0] == 0:
        return selected, counts, []
    ql, qr = payload["ql"], payload["qr"]
    offset = int(payload.get("offset", 0))
    seed = payload["seeds"][view.shard_id]
    caps = counts[selected]
    levels = np.ceil(np.log2(caps)).astype(_ID)
    blocks = (offset + selected) // SEED_BLOCK
    empty = np.empty(0, dtype=_ID)
    rows: list[np.ndarray] = [empty] * selected.shape[0]
    for block_id in np.unique(blocks):
        rng = _block_rng(seed, block_id)
        in_block = np.flatnonzero(blocks == block_id)
        for level in np.unique(levels[in_block]):
            members = in_block[levels[in_block] == level]
            bucket = selected[members]
            cap = int(caps[members].max())
            drawn = view.snapshot._sample_many(ql[bucket], qr[bucket], cap, rng)
            for position, row in zip(members, drawn):
                rows[int(position)] = view.to_global(row)
    return selected, counts, rows


#: Op name -> implementation.  Names, not functions, cross the process
#: boundary, so the dispatch table must agree between parent and workers —
#: both sides read this one dict.
SHARD_OPS = {
    "count": _op_count,
    "total_weight": _op_total_weight,
    "report": _op_report,
    "sample": _op_sample,
}


def run_shard_op(op: str, view: ShardView, payload: dict):
    """Execute one named per-shard op over a view (any executor, any process)."""
    return SHARD_OPS[op](view, payload)


# ---------------------------------------------------------------------- #
# query-parallel tiling: payload slicing + result reassembly
# ---------------------------------------------------------------------- #
def slice_payload(op: str, payload: dict, start: int, stop: int) -> dict:
    """Cut the payload for queries ``[start, stop)`` out of a batch payload.

    ``ql``/``qr`` are sliced for every op; ``sample`` additionally slices the
    allocation rows, keeps the per-shard seed list whole (the seed schedule
    is shard-wide), and advances ``offset`` so :func:`_op_sample` still sees
    batch-global positions for its seed-block ids.  Slices are views, not
    copies — a tile ships no more bytes than its own queries.
    """
    sliced = {"ql": payload["ql"][start:stop], "qr": payload["qr"][start:stop]}
    if op == "sample":
        sliced["alloc"] = payload["alloc"][start:stop]
        sliced["seeds"] = payload["seeds"]
        sliced["offset"] = int(payload.get("offset", 0)) + int(start)
    return sliced


def merge_block_results(op: str, parts: list):
    """Reassemble per-tile op results into the whole-batch result.

    ``parts`` is a non-empty list of ``(start, result)`` pairs whose tiles
    partition ``[0, nq)``, sorted by ``start``.  The merged value is exactly
    (bit for bit) what the op would have returned over the whole batch:
    count/total_weight concatenate their per-query vectors, report
    concatenates its per-query row lists, and sample re-bases each tile's
    ``selected`` positions by the tile start and concatenates the per-query
    count columns and row lists.
    """
    if op == "report":
        rows: list[np.ndarray] = []
        for _, part in parts:
            rows.extend(part)
        return rows
    if op == "sample":
        selected = np.concatenate(
            [part[0] + int(start) for start, part in parts]
        )
        counts = np.concatenate([part[1] for _, part in parts])
        rows = []
        for _, part in parts:
            rows.extend(part[2])
        return selected, counts, rows
    return np.concatenate([part for _, part in parts])


# ---------------------------------------------------------------------- #
# shared-memory publication
# ---------------------------------------------------------------------- #
def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class ShardSegment:
    """Parent-side handle for one published (shard, version) segment.

    Owns the :class:`SharedMemory` block — the parent must keep the handle
    alive while any worker might (re)attach by name, and calls
    :meth:`unlink` exactly once when the segment is superseded by a newer
    version or the executor shuts down.
    """

    __slots__ = ("shm", "manifest")

    def __init__(self, shm: shared_memory.SharedMemory, manifest: dict) -> None:
        self.shm = shm
        self.manifest = manifest

    def unlink(self) -> None:
        """Release the parent mapping and remove the segment's name.

        Workers still holding the old mapping keep reading it safely (POSIX
        shm lives until the last close); no new attach can find it.
        """
        try:
            self.shm.close()
            self.shm.unlink()
        except (OSError, BufferError):  # already gone / still exported
            pass


def publish_shard(shard) -> ShardSegment:
    """Copy one shard's snapshot + id map into a fresh shared-memory segment.

    The segment packs every array of :meth:`FlatAIT.to_buffers` (core arrays
    *and* the derived rank-key pools — attaching must not recompute them)
    plus the shard's ``global_map``, each aligned to ``_ALIGN`` bytes, behind
    a picklable manifest.  One segment per (shard, version): the caller
    republishes on version bumps and unlinks the superseded segment.
    """
    arrays = dict(shard.snapshot.to_buffers())
    arrays["global_map"] = shard.global_map

    entries: list[dict] = []
    sized: list[tuple[dict, np.ndarray]] = []
    offset = 0
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        offset = _aligned(offset)
        entry = {
            "name": name,
            "dtype": array.dtype.str,
            "shape": list(array.shape),
            "offset": offset,
        }
        entries.append(entry)
        sized.append((entry, array))
        offset += int(array.nbytes)

    shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    for entry, array in sized:
        if array.nbytes == 0:
            continue
        dst = np.ndarray(
            array.shape, dtype=array.dtype, buffer=shm.buf, offset=entry["offset"]
        )
        dst[...] = array
        del dst  # drop the buffer export before any later close()

    manifest = {
        "shm": shm.name,
        "shard_id": int(shard.shard_id),
        "version": int(shard.version),
        "weighted": bool(shard.snapshot.is_weighted),
        "kernel": shard.snapshot.kernel_backend,
        "arrays": entries,
    }
    return ShardSegment(shm, manifest)


def _attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting cleanup responsibility.

    Python < 3.13 registers *every* attach with the resource tracker, whose
    exit handler would unlink the segment out from under its owner (and,
    when parent and children share one tracker process, an attach-side
    register/unregister pair corrupts the owner's bookkeeping).  Suppress
    the registration during the attach instead; 3.13+ has ``track=False``
    for exactly this.  Worker processes handle one message at a time, so the
    temporary monkeypatch cannot race.
    """
    if sys.version_info >= (3, 13):
        return shared_memory.SharedMemory(name=name, track=False)
    original = resource_tracker.register

    def _skip_shared_memory(rname, rtype):  # pragma: no cover - trivial shim
        if rtype != "shared_memory":
            original(rname, rtype)

    resource_tracker.register = _skip_shared_memory
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def attach_segment(manifest: dict) -> ShardView:
    """Rebuild a zero-copy :class:`ShardView` from a published manifest.

    Every array is an ``np.ndarray`` view straight into the mapped segment
    (read-only — snapshot state is immutable by construction), assembled
    into a :class:`FlatAIT` via :meth:`FlatAIT.from_buffers` so the saved
    rank-key pools are adopted, not recomputed.  The returned view holds the
    ``SharedMemory`` object so the mapping outlives the attach scope.
    """
    shm = _attach_shm(manifest["shm"])
    arrays: dict[str, np.ndarray] = {}
    for entry in manifest["arrays"]:
        dtype = np.dtype(entry["dtype"])
        shape = tuple(entry["shape"])
        if int(np.prod(shape)) == 0:
            array = np.empty(shape, dtype=dtype)
        else:
            array = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=entry["offset"])
        array.setflags(write=False)
        arrays[entry["name"]] = array
    global_map = arrays.pop("global_map")
    snapshot = FlatAIT.from_buffers(
        arrays, bool(manifest["weighted"]), kernel_backend=manifest.get("kernel")
    )
    return ShardView(manifest["shard_id"], snapshot, global_map, segment=shm)


def _release_view(view: ShardView) -> None:
    """Drop a view's arrays and close its segment mapping (best effort)."""
    shm = view.segment
    view.segment = None
    view.snapshot = None
    view.global_map = None
    if shm is not None:
        try:
            shm.close()
        except BufferError:  # a stray export keeps the mapping until exit
            pass


# ---------------------------------------------------------------------- #
# worker process
# ---------------------------------------------------------------------- #
def worker_main(tasks, results) -> None:
    """Long-lived worker loop for :class:`ProcessExecutor`.

    Messages (FIFO per worker; the parent awaits one reply per request, so
    replies never interleave):

    * ``("publish", key, manifest)`` — attach the segment and serve ``key``
      from it, replacing (and closing) any previous version; reply
      ``("ok", None)``.
    * ``("op", op, payload, specs)`` — run the named op for every spec in
      order; reply ``("ok", [result, ...])``.  A spec is either a bare
      segment ``key`` (whole batch) or a ``(key, start, stop)`` query tile
      executed over :func:`slice_payload`.
    * ``("stop",)`` — release every mapping and exit (no reply).

    Any exception is caught and reported as ``("error", traceback_text)`` —
    the worker survives and keeps serving.
    """
    views: dict[str, ShardView] = {}
    try:
        while True:
            message = tasks.get()
            kind = message[0]
            if kind == "stop":
                break
            try:
                if kind == "publish":
                    _, key, manifest = message
                    old = views.pop(key, None)
                    views[key] = attach_segment(manifest)
                    if old is not None:
                        _release_view(old)
                    results.put(("ok", None))
                elif kind == "op":
                    _, op, payload, specs = message
                    out = []
                    for spec in specs:
                        if isinstance(spec, str):
                            out.append(run_shard_op(op, views[spec], payload))
                        else:
                            key, start, stop = spec
                            out.append(
                                run_shard_op(
                                    op, views[key], slice_payload(op, payload, start, stop)
                                )
                            )
                    results.put(("ok", out))
                else:
                    results.put(("error", f"unknown worker message kind {kind!r}"))
            except BaseException as exc:
                results.put(
                    ("error", "".join(traceback.format_exception(exc)).strip())
                )
    finally:
        for view in views.values():
            _release_view(view)
