"""Pluggable batch executors for scatter-gather over shards.

A :class:`~repro.service.engine.ShardedEngine` answers every batch query by
running the same per-shard function over all of its shards and merging the
results.  How those per-shard calls execute is a deployment decision, not a
correctness one, so it is factored out behind a tiny executor protocol: any
object with ``map(fn, items) -> list`` (order-preserving) works.

Three implementations ship with the library:

* :class:`SerialExecutor` — a plain loop.  Zero overhead, the right default
  for small batches and for debugging.
* :class:`ThreadedExecutor` — a ``concurrent.futures.ThreadPoolExecutor``
  wrapper.  The per-shard work is dominated by NumPy kernels that release the
  GIL, so threads give real parallelism on multi-core machines without any
  serialisation cost — but the Python-level dispatch around those kernels
  still contends on one GIL.
* :class:`ProcessExecutor` — long-lived worker *processes* that attach each
  shard's snapshot arrays once via ``multiprocessing.shared_memory`` and then
  receive only compact per-batch task descriptors (op name + query arrays +
  per-shard RNG seeds).  True multi-core execution for the whole per-shard
  code path, not just the kernels.  Two scatter strategies (the ``scatter``
  knob): partition the *data* (one worker per shard — cannot speed up
  counting, every shard still classifies every query) or partition the
  *query batch* (shard x query-block tiles round-robined over workers — the
  strategy that divides the actual counting work).  See
  :mod:`repro.service.shm` for the segment layout and worker protocol, and
  ``docs/ARCHITECTURE.md`` for the scaling model behind the ``auto`` choice.

Determinism note: the engine never shares one RNG across concurrently
executing shard tasks — it derives one integer seed per shard up front
(:func:`repro.sampling.rng.spawn_seeds`) and each shard task builds its own
generator from it, so sampling results are bit-identical under every
executor, across process boundaries included.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Optional, TypeVar

from ..core.errors import WorkerTimeoutError
from .shm import SEED_BLOCK, merge_block_results, publish_shard, worker_main

__all__ = [
    "SerialExecutor",
    "ThreadedExecutor",
    "ProcessExecutor",
    "resolve_executor",
    "EXECUTOR_NAMES",
    "SCATTER_NAMES",
]

T = TypeVar("T")
R = TypeVar("R")

#: Executor names accepted by :func:`resolve_executor` (and therefore by the
#: ``executor=`` argument of :class:`ShardedEngine` and the service CLIs).
EXECUTOR_NAMES = ("serial", "threads", "process")

#: Scatter strategies accepted by :class:`ProcessExecutor` (and by the
#: ``scatter=`` argument of :class:`ShardedEngine`).
SCATTER_NAMES = ("data", "query", "auto")

#: Batch size at which ``scatter="auto"`` switches from the data scatter to
#: the query scatter (given more than one worker).  Below this the per-tile
#: IPC + reassembly overhead outweighs the divided classification work; at
#: and above it, splitting the query batch wins.  See the scaling-model
#: section of ``docs/ARCHITECTURE.md`` for the cost model this threshold
#: falls out of.
AUTO_QUERY_THRESHOLD = 64


class SerialExecutor:
    """Run per-shard work as a plain in-process loop.

    Examples
    --------
    >>> SerialExecutor().map(lambda x: x * x, [1, 2, 3])
    [1, 4, 9]
    """

    kind = "serial"

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item, in order."""
        return [fn(item) for item in items]

    def shutdown(self) -> None:
        """Nothing to release."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialExecutor()"


class ThreadedExecutor:
    """Run per-shard work on a thread pool (NumPy kernels release the GIL).

    Parameters
    ----------
    max_workers:
        Pool size; defaults to the ``ThreadPoolExecutor`` heuristic.  A value
        of ``min(num_shards, cores)`` is a good explicit choice.

    Examples
    --------
    >>> executor = ThreadedExecutor(max_workers=2)
    >>> executor.map(lambda x: x + 1, [1, 2, 3])
    [2, 3, 4]
    >>> executor.shutdown()
    """

    kind = "threads"

    def __init__(self, max_workers: int | None = None) -> None:
        self._pool = ThreadPoolExecutor(max_workers=max_workers)

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item concurrently; results keep item order."""
        return list(self._pool.map(fn, items))

    def shutdown(self) -> None:
        """Tear down the underlying thread pool."""
        self._pool.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ThreadedExecutor()"


class _Worker:
    """Parent-side record of one worker process and its published shards."""

    __slots__ = ("process", "tasks", "results", "manifests")

    def __init__(self, process, tasks, results) -> None:
        self.process = process
        self.tasks = tasks
        self.results = results
        #: key -> manifest of the *current* segment served by this worker;
        #: replayed verbatim into a respawned worker after a crash.
        self.manifests: dict[str, dict] = {}


class ProcessExecutor:
    """Scatter per-shard query ops over long-lived worker processes.

    Workers are spawned lazily on the first :meth:`run_shard_op` call (one
    per CPU core, capped at ``max_workers`` — and additionally at the shard
    count when ``scatter="data"``, where extra workers could never be busy)
    with the ``spawn`` start method — safe regardless of what threads the
    parent runs (gateway dispatcher, WAL fsyncs).  Every worker attaches
    every shard's shared-memory segment once per published version (POSIX
    shm pages are shared, so N attachments cost one physical copy) and
    serves every later batch from those mappings, so steady-state batches
    ship only task descriptors.

    Two scatter strategies decide what a task descriptor covers:

    * ``scatter="data"`` — one task per shard, shard ``i`` always on worker
      ``i mod workers`` (the PR 7 behaviour).  Parallel over shards only:
      cannot speed up counting, because every shard classifies every query.
    * ``scatter="query"`` — the query batch is cut into contiguous blocks
      (``block_size`` queries; default one block per worker) and the
      resulting shard x block tiles are round-robined over the workers, each
      executing the op over a payload slice.  Results are reassembled in
      submission order and are bit-identical to the serial executor:
      counting/reporting tiles are independent by construction, and sampling
      tiles are cut on the canonical :data:`repro.service.shm.SEED_BLOCK`
      boundaries its per-(shard, block) seed schedule is defined on.
    * ``scatter="auto"`` (default) — per batch: query when there is more
      than one worker and the batch has at least
      :data:`AUTO_QUERY_THRESHOLD` queries, data otherwise.

    For the engine's *structural* work — shard construction, delta-log
    refreshes — :meth:`map` degrades to a serial in-process loop on purpose:
    writes mutate the owner's trees and must stay on the owner process (the
    snapshot refresh then republishes, see :meth:`run_shard_op`).

    A ``ProcessExecutor`` is engine-affine: share one instance across engines
    only sequentially, never concurrently.  Crashed workers are respawned
    transparently: the parent keeps every current segment and manifest, and a
    replacement worker re-attaches before the interrupted batch (or tile) is
    retried (ops are read-only, so retries are safe).

    Parameters
    ----------
    max_workers:
        Worker-process cap; defaults to the CPU count.
    op_timeout:
        Seconds to wait for one worker reply before declaring the batch hung
        (a deadlocked-but-alive worker); generous by default because CI
        machines stall.
    scatter:
        ``"data"``, ``"query"`` or ``"auto"`` (see above).
    block_size:
        Query-block width for the query scatter; defaults to an even split
        of the batch across workers.  Sampling rounds it up to a multiple of
        :data:`repro.service.shm.SEED_BLOCK` to keep draws bit-identical.
    """

    kind = "process"

    def __init__(
        self,
        max_workers: int | None = None,
        op_timeout: float = 120.0,
        scatter: str = "auto",
        block_size: int | None = None,
    ) -> None:
        if scatter not in SCATTER_NAMES:
            names = ", ".join(repr(name) for name in SCATTER_NAMES)
            raise ValueError(f"unknown scatter mode {scatter!r}: expected one of {names}")
        if block_size is not None and int(block_size) < 1:
            raise ValueError(f"block_size must be a positive integer, got {block_size!r}")
        self._ctx = multiprocessing.get_context("spawn")
        self._max_workers = max_workers
        self._op_timeout = float(op_timeout)
        self._scatter = scatter
        self._block_size = None if block_size is None else int(block_size)
        self._workers: list[_Worker] = []
        #: key -> (published shard version, parent-held ShardSegment).
        self._published: dict[str, tuple[int, object]] = {}
        self._closed = False

    # -- executor protocol ---------------------------------------------- #
    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Structural fallback: apply ``fn`` in-process, in order.

        Shard builds and refreshes mutate owner-process state that cannot
        (and must not) cross the process boundary; only the read-only query
        ops of :meth:`run_shard_op` fan out to the workers.
        """
        return [fn(item) for item in items]

    def shutdown(self) -> None:
        """Stop every worker, release every shared-memory segment.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            if worker.process.is_alive():
                try:
                    worker.tasks.put(("stop",))
                except (OSError, ValueError):  # queue already torn down
                    pass
        for worker in self._workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover - wedged worker
                worker.process.kill()
                worker.process.join(timeout=5.0)
            worker.tasks.close()
            worker.results.close()
        self._workers.clear()
        for _, segment in self._published.values():
            segment.unlink()
        self._published.clear()

    def __del__(self):  # pragma: no cover - gc-time best effort
        try:
            self.shutdown()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessExecutor(workers={len(self._workers)}, scatter={self._scatter!r})"

    # -- introspection / test hooks ------------------------------------- #
    @property
    def scatter(self) -> str:
        """The configured scatter strategy (``data`` / ``query`` / ``auto``)."""
        return self._scatter

    @property
    def block_size(self) -> int | None:
        """Configured query-block width (``None`` = even split over workers)."""
        return self._block_size

    @property
    def num_workers(self) -> int:
        """Live worker-process count (0 before the first scatter)."""
        return len(self._workers)

    def worker_pids(self) -> list[int]:
        """PIDs of the worker processes (test / ops introspection)."""
        return [worker.process.pid for worker in self._workers]

    def kill_worker(self, index: int = 0) -> None:
        """SIGKILL one worker (crash-recovery tests); the next scatter respawns it."""
        worker = self._workers[index]
        worker.process.kill()
        worker.process.join(timeout=10.0)

    # -- scatter-gather -------------------------------------------------- #
    def run_shard_op(self, shards, op: str, payload: dict) -> list:
        """Run one named per-shard op over every shard, in shard order.

        Publishes (or republishes) to *every* worker any shard whose snapshot
        version differs from the last published one — the refresh/publish
        protocol: writes fold into snapshots on the owner process at batch
        boundaries, and the version bump is what triggers re-exporting the
        shared segment here.  Superseded segments are unlinked once their
        replacements are attached.  The batch is then dispatched under the
        configured ``scatter`` strategy (``auto`` resolves per batch).
        """
        if self._closed:
            raise RuntimeError("ProcessExecutor is shut down")
        shards = list(shards)
        self._ensure_workers(len(shards))
        width = len(self._workers)

        keys = [f"shard-{id(shard):x}" for shard in shards]
        for shard, key in zip(shards, keys):
            entry = self._published.get(key)
            if entry is not None and entry[0] == shard.version:
                continue
            segment = publish_shard(shard)
            for worker in self._workers:
                self._request(worker, ("publish", key, segment.manifest))
                worker.manifests[key] = segment.manifest
            if entry is not None:
                entry[1].unlink()
            self._published[key] = (shard.version, segment)

        nq = len(payload["ql"])
        mode = self._scatter
        if mode == "auto":
            mode = "query" if (width > 1 and nq >= AUTO_QUERY_THRESHOLD) else "data"
        if mode == "query" and nq > 0:
            return self._run_query_scatter(keys, op, payload, nq)
        return self._run_data_scatter(keys, op, payload)

    def _run_data_scatter(self, keys: list, op: str, payload: dict) -> list:
        """One task per shard, shard ``i`` on worker ``i mod width``."""
        width = len(self._workers)
        per_worker: list[list[int]] = [[] for _ in range(width)]
        for index in range(len(keys)):
            per_worker[index % width].append(index)
        busy = [w for w in range(width) if per_worker[w]]
        for w in busy:
            self._send(
                self._workers[w], ("op", op, payload, [keys[i] for i in per_worker[w]])
            )

        results: list = [None] * len(keys)
        for w in busy:
            worker = self._workers[w]
            replay = ("op", op, payload, [keys[i] for i in per_worker[w]])
            rows = self._await(worker, resend=replay)
            for index, row in zip(per_worker[w], rows):
                results[index] = row
        return results

    def _run_query_scatter(self, keys: list, op: str, payload: dict, nq: int) -> list:
        """Shard x query-block tiles, round-robined over the workers.

        The block width defaults to an even split of the batch across
        workers; sampling rounds it up to the canonical ``SEED_BLOCK``
        multiple so every seed-block lands whole inside one tile (the
        bit-identity requirement of the blocked draw schedule).  Per-shard
        tile results are reassembled in ascending tile order, which restores
        exactly the whole-batch result.
        """
        width = len(self._workers)
        block = self._block_size or -(-nq // width)
        if op == "sample":
            block = -(-block // SEED_BLOCK) * SEED_BLOCK
        tiles = [
            (shard_index, start, min(start + block, nq))
            for shard_index in range(len(keys))
            for start in range(0, nq, block)
        ]
        per_worker: list[list[tuple]] = [[] for _ in range(width)]
        for position, tile in enumerate(tiles):
            per_worker[position % width].append(tile)
        busy = [w for w in range(width) if per_worker[w]]
        for w in busy:
            specs = [(keys[k], start, stop) for k, start, stop in per_worker[w]]
            self._send(self._workers[w], ("op", op, payload, specs))

        parts: list[list] = [[] for _ in keys]
        for w in busy:
            worker = self._workers[w]
            specs = [(keys[k], start, stop) for k, start, stop in per_worker[w]]
            replay = ("op", op, payload, specs)
            rows = self._await(worker, resend=replay)
            for (k, start, _stop), result in zip(per_worker[w], rows):
                parts[k].append((start, result))
        return [
            merge_block_results(op, sorted(shard_parts, key=lambda pair: pair[0]))
            for shard_parts in parts
        ]

    # -- internals ------------------------------------------------------- #
    def _ensure_workers(self, num_shards: int) -> None:
        if self._workers:
            return
        width = self._max_workers or os.cpu_count() or 1
        width = max(1, int(width))
        if self._scatter == "data":
            # Extra workers could never be busy under the data scatter; under
            # query/auto the query blocks keep them all fed regardless of K.
            width = min(width, int(num_shards) or 1)
        for _ in range(width):
            self._workers.append(self._spawn())

    def _spawn(self) -> _Worker:
        tasks = self._ctx.Queue()
        results = self._ctx.Queue()
        process = self._ctx.Process(
            target=worker_main, args=(tasks, results), daemon=True
        )
        process.start()
        return _Worker(process, tasks, results)

    def _respawn(self, worker: _Worker) -> None:
        """Replace a dead worker in place and replay its current manifests."""
        worker.process.join(timeout=1.0)
        worker.tasks.close()
        worker.results.close()
        fresh = self._spawn()
        worker.process, worker.tasks, worker.results = (
            fresh.process,
            fresh.tasks,
            fresh.results,
        )
        for key, manifest in worker.manifests.items():
            self._request(worker, ("publish", key, manifest))

    def _send(self, worker: _Worker, message: tuple) -> None:
        if not worker.process.is_alive():
            self._respawn(worker)
        worker.tasks.put(message)

    def _request(self, worker: _Worker, message: tuple):
        """Send one message and wait for its reply (used for publishes)."""
        self._send(worker, message)
        return self._await(worker, resend=message)

    def _await(self, worker: _Worker, resend: Optional[tuple] = None):
        """Collect one reply; on worker death, respawn, replay, and retry.

        Liveness-checked waiting, not sleeps: the queue is polled on a short
        timeout purely so a crashed worker is noticed promptly; a successful
        reply returns as soon as it arrives.  Respawns are capped — a worker
        that cannot survive long enough to answer (e.g. an environment where
        the spawned interpreter cannot re-import the program) surfaces as an
        error instead of an endless crash/respawn loop.
        """
        deadline = time.monotonic() + self._op_timeout
        respawns = 0
        while True:
            try:
                status, value = worker.results.get(timeout=0.1)
            except queue_module.Empty:
                if not worker.process.is_alive():
                    respawns += 1
                    if resend is None or respawns > 3:
                        raise RuntimeError(
                            "shard worker died "
                            + (f"{respawns} times in a row" if resend else "during publish replay")
                            + "; if this happened at the first scatter, the usual cause "
                            "is a __main__ module the spawned interpreter cannot "
                            "re-import (run under an `if __name__ == '__main__':` "
                            "guard, and not from stdin)"
                        )
                    self._respawn(worker)
                    worker.tasks.put(resend)
                    deadline = time.monotonic() + self._op_timeout
                    continue
                if time.monotonic() > deadline:
                    raise WorkerTimeoutError(
                        f"shard worker (pid {worker.process.pid}) did not reply "
                        f"within {self._op_timeout:.0f}s"
                    )
                continue
            if status == "error":
                raise RuntimeError(f"shard worker failed:\n{value}")
            return value


def resolve_executor(executor, scatter: str | None = None) -> tuple[object, bool]:
    """Coerce the ``executor`` argument of :class:`ShardedEngine`.

    Accepts ``None`` / ``"serial"`` (a :class:`SerialExecutor`),
    ``"threads"`` (a fresh :class:`ThreadedExecutor`), ``"process"`` (a fresh
    :class:`ProcessExecutor`) or any object exposing an order-preserving
    ``map(fn, items)``.  Returns ``(executor, owned)`` where ``owned`` tells
    the engine whether it created the executor and is therefore responsible
    for shutting it down.  Unknown names raise :class:`ValueError`; objects
    without a ``map`` method raise :class:`TypeError`.

    ``scatter`` configures the process executor's scatter strategy and is
    only meaningful with ``executor="process"`` — pre-built executor objects
    carry their own configuration, and the in-process executors have no
    scatter choice to make — so any other combination raises
    :class:`ValueError`.
    """
    if scatter is not None and executor != "process":
        raise ValueError(
            f"scatter={scatter!r} requires executor='process' "
            f"(got executor={executor!r}); pre-built executors configure "
            "scatter at construction"
        )
    if executor is None or executor == "serial":
        return SerialExecutor(), True
    if executor == "threads":
        return ThreadedExecutor(), True
    if executor == "process":
        return ProcessExecutor(scatter=scatter or "auto"), True
    if isinstance(executor, str):
        names = ", ".join(repr(name) for name in EXECUTOR_NAMES)
        raise ValueError(f"unknown executor name {executor!r}: expected one of {names}")
    if callable(getattr(executor, "map", None)):
        return executor, False
    raise TypeError(
        "executor must be None, 'serial', 'threads', 'process' or an object "
        f"with a map(fn, items) method, got {executor!r}"
    )
