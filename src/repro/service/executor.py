"""Pluggable batch executors for scatter-gather over shards.

A :class:`~repro.service.engine.ShardedEngine` answers every batch query by
running the same per-shard function over all of its shards and merging the
results.  How those per-shard calls execute is a deployment decision, not a
correctness one, so it is factored out behind a tiny executor protocol: any
object with ``map(fn, items) -> list`` (order-preserving) works.

Two implementations ship with the library:

* :class:`SerialExecutor` — a plain loop.  Zero overhead, the right default
  for small batches and for debugging.
* :class:`ThreadedExecutor` — a ``concurrent.futures.ThreadPoolExecutor``
  wrapper.  The per-shard work is dominated by NumPy kernels that release the
  GIL, so threads give real parallelism on multi-core machines without any
  serialisation cost.

Determinism note: the engine never shares one RNG across concurrently
executing shard tasks — it derives one child generator per shard up front
(:func:`repro.sampling.rng.spawn_rngs`), so sampling results are identical
under either executor.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, TypeVar

__all__ = ["SerialExecutor", "ThreadedExecutor", "resolve_executor"]

T = TypeVar("T")
R = TypeVar("R")


class SerialExecutor:
    """Run per-shard work as a plain in-process loop.

    Examples
    --------
    >>> SerialExecutor().map(lambda x: x * x, [1, 2, 3])
    [1, 4, 9]
    """

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item, in order."""
        return [fn(item) for item in items]

    def shutdown(self) -> None:
        """Nothing to release."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialExecutor()"


class ThreadedExecutor:
    """Run per-shard work on a thread pool (NumPy kernels release the GIL).

    Parameters
    ----------
    max_workers:
        Pool size; defaults to the ``ThreadPoolExecutor`` heuristic.  A value
        of ``min(num_shards, cores)`` is a good explicit choice.

    Examples
    --------
    >>> executor = ThreadedExecutor(max_workers=2)
    >>> executor.map(lambda x: x + 1, [1, 2, 3])
    [2, 3, 4]
    >>> executor.shutdown()
    """

    def __init__(self, max_workers: int | None = None) -> None:
        self._pool = ThreadPoolExecutor(max_workers=max_workers)

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item concurrently; results keep item order."""
        return list(self._pool.map(fn, items))

    def shutdown(self) -> None:
        """Tear down the underlying thread pool."""
        self._pool.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ThreadedExecutor()"


def resolve_executor(executor) -> tuple[object, bool]:
    """Coerce the ``executor`` argument of :class:`ShardedEngine`.

    Accepts ``None`` / ``"serial"`` (a :class:`SerialExecutor`),
    ``"threads"`` (a fresh :class:`ThreadedExecutor`) or any object exposing
    an order-preserving ``map(fn, items)``.  Returns ``(executor, owned)``
    where ``owned`` tells the engine whether it created the executor and is
    therefore responsible for shutting it down.
    """
    if executor is None or executor == "serial":
        return SerialExecutor(), True
    if executor == "threads":
        return ThreadedExecutor(), True
    if callable(getattr(executor, "map", None)):
        return executor, False
    raise TypeError(
        "executor must be None, 'serial', 'threads' or an object with a "
        f"map(fn, items) method, got {executor!r}"
    )
