"""Pluggable batch executors for scatter-gather over shards.

A :class:`~repro.service.engine.ShardedEngine` answers every batch query by
running the same per-shard function over all of its shards and merging the
results.  How those per-shard calls execute is a deployment decision, not a
correctness one, so it is factored out behind a tiny executor protocol: any
object with ``map(fn, items) -> list`` (order-preserving) works.

Three implementations ship with the library:

* :class:`SerialExecutor` — a plain loop.  Zero overhead, the right default
  for small batches and for debugging.
* :class:`ThreadedExecutor` — a ``concurrent.futures.ThreadPoolExecutor``
  wrapper.  The per-shard work is dominated by NumPy kernels that release the
  GIL, so threads give real parallelism on multi-core machines without any
  serialisation cost — but the Python-level dispatch around those kernels
  still contends on one GIL.
* :class:`ProcessExecutor` — long-lived worker *processes* that attach each
  shard's snapshot arrays once via ``multiprocessing.shared_memory`` and then
  receive only compact per-batch task descriptors (op name + query arrays +
  per-shard RNG seeds).  True multi-core execution for the whole per-shard
  code path, not just the kernels.  See :mod:`repro.service.shm` for the
  segment layout and worker protocol.

Determinism note: the engine never shares one RNG across concurrently
executing shard tasks — it derives one integer seed per shard up front
(:func:`repro.sampling.rng.spawn_seeds`) and each shard task builds its own
generator from it, so sampling results are bit-identical under every
executor, across process boundaries included.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Optional, TypeVar

from .shm import publish_shard, worker_main

__all__ = [
    "SerialExecutor",
    "ThreadedExecutor",
    "ProcessExecutor",
    "resolve_executor",
    "EXECUTOR_NAMES",
]

T = TypeVar("T")
R = TypeVar("R")

#: Executor names accepted by :func:`resolve_executor` (and therefore by the
#: ``executor=`` argument of :class:`ShardedEngine` and the service CLIs).
EXECUTOR_NAMES = ("serial", "threads", "process")


class SerialExecutor:
    """Run per-shard work as a plain in-process loop.

    Examples
    --------
    >>> SerialExecutor().map(lambda x: x * x, [1, 2, 3])
    [1, 4, 9]
    """

    kind = "serial"

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item, in order."""
        return [fn(item) for item in items]

    def shutdown(self) -> None:
        """Nothing to release."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialExecutor()"


class ThreadedExecutor:
    """Run per-shard work on a thread pool (NumPy kernels release the GIL).

    Parameters
    ----------
    max_workers:
        Pool size; defaults to the ``ThreadPoolExecutor`` heuristic.  A value
        of ``min(num_shards, cores)`` is a good explicit choice.

    Examples
    --------
    >>> executor = ThreadedExecutor(max_workers=2)
    >>> executor.map(lambda x: x + 1, [1, 2, 3])
    [2, 3, 4]
    >>> executor.shutdown()
    """

    kind = "threads"

    def __init__(self, max_workers: int | None = None) -> None:
        self._pool = ThreadPoolExecutor(max_workers=max_workers)

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item concurrently; results keep item order."""
        return list(self._pool.map(fn, items))

    def shutdown(self) -> None:
        """Tear down the underlying thread pool."""
        self._pool.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ThreadedExecutor()"


class _Worker:
    """Parent-side record of one worker process and its published shards."""

    __slots__ = ("process", "tasks", "results", "manifests")

    def __init__(self, process, tasks, results) -> None:
        self.process = process
        self.tasks = tasks
        self.results = results
        #: key -> manifest of the *current* segment served by this worker;
        #: replayed verbatim into a respawned worker after a crash.
        self.manifests: dict[str, dict] = {}


class ProcessExecutor:
    """Scatter per-shard query ops over long-lived worker processes.

    Workers are spawned lazily on the first :meth:`run_shard_op` call (one
    per CPU core, capped at ``max_workers`` and at the shard count) with the
    ``spawn`` start method — safe regardless of what threads the parent runs
    (gateway dispatcher, WAL fsyncs).  Shards are assigned to workers
    statically (``shard index mod workers``); each worker attaches a shard's
    shared-memory segment once per published version and serves every later
    batch from that mapping, so steady-state batches ship only task
    descriptors.

    For the engine's *structural* work — shard construction, delta-log
    refreshes — :meth:`map` degrades to a serial in-process loop on purpose:
    writes mutate the owner's trees and must stay on the owner process (the
    snapshot refresh then republishes, see :meth:`run_shard_op`).

    A ``ProcessExecutor`` is engine-affine: share one instance across engines
    only sequentially, never concurrently.  Crashed workers are respawned
    transparently: the parent keeps every current segment and manifest, and a
    replacement worker re-attaches before the interrupted batch is retried
    (ops are read-only, so retries are safe).

    Parameters
    ----------
    max_workers:
        Worker-process cap; defaults to the CPU count.
    op_timeout:
        Seconds to wait for one worker reply before declaring the batch hung
        (a deadlocked-but-alive worker); generous by default because CI
        machines stall.
    """

    kind = "process"

    def __init__(self, max_workers: int | None = None, op_timeout: float = 120.0) -> None:
        self._ctx = multiprocessing.get_context("spawn")
        self._max_workers = max_workers
        self._op_timeout = float(op_timeout)
        self._workers: list[_Worker] = []
        #: key -> (published shard version, parent-held ShardSegment).
        self._published: dict[str, tuple[int, object]] = {}
        self._closed = False

    # -- executor protocol ---------------------------------------------- #
    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Structural fallback: apply ``fn`` in-process, in order.

        Shard builds and refreshes mutate owner-process state that cannot
        (and must not) cross the process boundary; only the read-only query
        ops of :meth:`run_shard_op` fan out to the workers.
        """
        return [fn(item) for item in items]

    def shutdown(self) -> None:
        """Stop every worker, release every shared-memory segment.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            if worker.process.is_alive():
                try:
                    worker.tasks.put(("stop",))
                except (OSError, ValueError):  # queue already torn down
                    pass
        for worker in self._workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover - wedged worker
                worker.process.kill()
                worker.process.join(timeout=5.0)
            worker.tasks.close()
            worker.results.close()
        self._workers.clear()
        for _, segment in self._published.values():
            segment.unlink()
        self._published.clear()

    def __del__(self):  # pragma: no cover - gc-time best effort
        try:
            self.shutdown()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessExecutor(workers={len(self._workers)})"

    # -- introspection / test hooks ------------------------------------- #
    @property
    def num_workers(self) -> int:
        """Live worker-process count (0 before the first scatter)."""
        return len(self._workers)

    def worker_pids(self) -> list[int]:
        """PIDs of the worker processes (test / ops introspection)."""
        return [worker.process.pid for worker in self._workers]

    def kill_worker(self, index: int = 0) -> None:
        """SIGKILL one worker (crash-recovery tests); the next scatter respawns it."""
        worker = self._workers[index]
        worker.process.kill()
        worker.process.join(timeout=10.0)

    # -- scatter-gather -------------------------------------------------- #
    def run_shard_op(self, shards, op: str, payload: dict) -> list:
        """Run one named per-shard op over every shard, in shard order.

        Publishes (or republishes) any shard whose snapshot version differs
        from the last published one — the refresh/publish protocol: writes
        fold into snapshots on the owner process at batch boundaries, and the
        version bump is what triggers re-exporting the shared segment here.
        Superseded segments are unlinked once their replacement is attached.
        """
        if self._closed:
            raise RuntimeError("ProcessExecutor is shut down")
        shards = list(shards)
        self._ensure_workers(len(shards))
        width = len(self._workers)

        keys = [f"shard-{id(shard):x}" for shard in shards]
        for index, (shard, key) in enumerate(zip(shards, keys)):
            entry = self._published.get(key)
            if entry is not None and entry[0] == shard.version:
                continue
            segment = publish_shard(shard)
            worker = self._workers[index % width]
            self._request(worker, ("publish", key, segment.manifest))
            worker.manifests[key] = segment.manifest
            if entry is not None:
                entry[1].unlink()
            self._published[key] = (shard.version, segment)

        per_worker: list[list[int]] = [[] for _ in range(width)]
        for index in range(len(shards)):
            per_worker[index % width].append(index)
        busy = [w for w in range(width) if per_worker[w]]
        for w in busy:
            self._send(
                self._workers[w], ("op", op, payload, [keys[i] for i in per_worker[w]])
            )

        results: list = [None] * len(shards)
        for w in busy:
            worker = self._workers[w]
            replay = ("op", op, payload, [keys[i] for i in per_worker[w]])
            rows = self._await(worker, resend=replay)
            for index, row in zip(per_worker[w], rows):
                results[index] = row
        return results

    # -- internals ------------------------------------------------------- #
    def _ensure_workers(self, num_shards: int) -> None:
        if self._workers:
            return
        width = self._max_workers or os.cpu_count() or 1
        width = max(1, min(int(width), int(num_shards) or 1))
        for _ in range(width):
            self._workers.append(self._spawn())

    def _spawn(self) -> _Worker:
        tasks = self._ctx.Queue()
        results = self._ctx.Queue()
        process = self._ctx.Process(
            target=worker_main, args=(tasks, results), daemon=True
        )
        process.start()
        return _Worker(process, tasks, results)

    def _respawn(self, worker: _Worker) -> None:
        """Replace a dead worker in place and replay its current manifests."""
        worker.process.join(timeout=1.0)
        worker.tasks.close()
        worker.results.close()
        fresh = self._spawn()
        worker.process, worker.tasks, worker.results = (
            fresh.process,
            fresh.tasks,
            fresh.results,
        )
        for key, manifest in worker.manifests.items():
            self._request(worker, ("publish", key, manifest))

    def _send(self, worker: _Worker, message: tuple) -> None:
        if not worker.process.is_alive():
            self._respawn(worker)
        worker.tasks.put(message)

    def _request(self, worker: _Worker, message: tuple):
        """Send one message and wait for its reply (used for publishes)."""
        self._send(worker, message)
        return self._await(worker, resend=message)

    def _await(self, worker: _Worker, resend: Optional[tuple] = None):
        """Collect one reply; on worker death, respawn, replay, and retry.

        Liveness-checked waiting, not sleeps: the queue is polled on a short
        timeout purely so a crashed worker is noticed promptly; a successful
        reply returns as soon as it arrives.  Respawns are capped — a worker
        that cannot survive long enough to answer (e.g. an environment where
        the spawned interpreter cannot re-import the program) surfaces as an
        error instead of an endless crash/respawn loop.
        """
        deadline = time.monotonic() + self._op_timeout
        respawns = 0
        while True:
            try:
                status, value = worker.results.get(timeout=0.1)
            except queue_module.Empty:
                if not worker.process.is_alive():
                    respawns += 1
                    if resend is None or respawns > 3:
                        raise RuntimeError(
                            "shard worker died "
                            + (f"{respawns} times in a row" if resend else "during publish replay")
                            + "; if this happened at the first scatter, the usual cause "
                            "is a __main__ module the spawned interpreter cannot "
                            "re-import (run under an `if __name__ == '__main__':` "
                            "guard, and not from stdin)"
                        )
                    self._respawn(worker)
                    worker.tasks.put(resend)
                    deadline = time.monotonic() + self._op_timeout
                    continue
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"shard worker (pid {worker.process.pid}) did not reply "
                        f"within {self._op_timeout:.0f}s"
                    )
                continue
            if status == "error":
                raise RuntimeError(f"shard worker failed:\n{value}")
            return value


def resolve_executor(executor) -> tuple[object, bool]:
    """Coerce the ``executor`` argument of :class:`ShardedEngine`.

    Accepts ``None`` / ``"serial"`` (a :class:`SerialExecutor`),
    ``"threads"`` (a fresh :class:`ThreadedExecutor`), ``"process"`` (a fresh
    :class:`ProcessExecutor`) or any object exposing an order-preserving
    ``map(fn, items)``.  Returns ``(executor, owned)`` where ``owned`` tells
    the engine whether it created the executor and is therefore responsible
    for shutting it down.  Unknown names raise :class:`ValueError`; objects
    without a ``map`` method raise :class:`TypeError`.
    """
    if executor is None or executor == "serial":
        return SerialExecutor(), True
    if executor == "threads":
        return ThreadedExecutor(), True
    if executor == "process":
        return ProcessExecutor(), True
    if isinstance(executor, str):
        names = ", ".join(repr(name) for name in EXECUTOR_NAMES)
        raise ValueError(f"unknown executor name {executor!r}: expected one of {names}")
    if callable(getattr(executor, "map", None)):
        return executor, False
    raise TypeError(
        "executor must be None, 'serial', 'threads', 'process' or an object "
        f"with a map(fn, items) method, got {executor!r}"
    )
