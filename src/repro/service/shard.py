"""One shard of a :class:`~repro.service.engine.ShardedEngine`.

A shard owns a disjoint subset of the engine's intervals.  Internally it
keeps three layers of state:

* a **local tree** — an :class:`~repro.core.ait.AIT` (or
  :class:`~repro.core.awit.AWIT` for weighted engines) built over the shard's
  intervals, addressed by *local* ids ``0..m-1`` (vacated local ids are
  recycled by the tree's columnar storage, so the map is positional, not
  append-only);
* an **id map** between local and engine-global ids (``global_ids[local]``
  and its inverse), so query results can be reported in the engine's id
  space;
* a **delta log** of buffered writes plus a **versioned snapshot** — the
  :class:`~repro.core.flat.FlatAIT` the batch queries execute on.

Writes never touch the snapshot directly: the engine appends them to the
delta log (:meth:`Shard.buffer_insert` / :meth:`Shard.buffer_delete`, or the
bulk :meth:`Shard.buffer_insert_many` / :meth:`Shard.buffer_delete_many`) and
the log is replayed into the local tree by :meth:`Shard.refresh` — which the
engine calls at *batch boundaries only*, so a snapshot is never replaced
mid-batch.  Replay groups consecutive operations of the same kind and applies
each run through the tree's vectorised ``insert_many`` / ``delete_many``
bulk APIs, so a long delta log costs one deferred re-sort per touched list
instead of one Python round-trip per op; the re-snapshot that follows is
*incremental* whenever the tree's dirty-node journal allows it (see
``AIT.flat``), and bumps :attr:`Shard.version` exactly when the visible
state changed.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..core.ait import AIT
from ..core.awit import AWIT
from ..core.dataset import IntervalDataset
from ..core.flat import FlatAIT

__all__ = ["Shard", "DeltaOp"]

#: One buffered write batch: ``("insert_many", global_ids, lefts, rights)``
#: or ``("delete_many", global_ids)`` carrying whole arrays (scalar writes
#: buffer as one-element batches).
DeltaOp = Union[
    tuple[str, np.ndarray, np.ndarray, np.ndarray],
    tuple[str, np.ndarray],
]


class Shard:
    """A partition of the engine's dataset with its own tree, snapshot and delta log."""

    __slots__ = (
        "shard_id",
        "tree",
        "wal",
        "_global_ids",
        "_id_count",
        "_local_of",
        "_global_map",
        "_pending",
        "_snapshot",
        "_snapshot_tree_version",
        "_version",
    )

    def __init__(
        self,
        shard_id: int,
        dataset: IntervalDataset,
        global_ids: np.ndarray,
        weighted: bool,
        batch_pool_size: Optional[int] = None,
        build_backend: str = "columnar",
        kernel_backend=None,
    ) -> None:
        self.shard_id = int(shard_id)
        # Local->global id map as a bare int64 array with amortised growth;
        # the inverse dict is only needed on deletes and is built lazily.
        self._global_ids = np.asarray(global_ids, dtype=np.int64).copy()
        self._id_count = int(self._global_ids.shape[0])
        self._local_of: Optional[dict[int, int]] = None
        local_dataset = dataset.subset(global_ids)
        # With the default "columnar" backend the local tree defers its
        # Python node graph entirely: the snapshot below is built treelessly
        # by FlatAIT.from_arrays, and the nodes only materialise if a write
        # batch ever needs to be replayed into this shard.
        if weighted:
            self.tree: AIT = AWIT(
                local_dataset,
                batch_pool_size=batch_pool_size,
                build_backend=build_backend,
                kernel_backend=kernel_backend,
            )
        else:
            self.tree = AIT(
                local_dataset,
                batch_pool_size=batch_pool_size,
                build_backend=build_backend,
                kernel_backend=kernel_backend,
            )
        self._pending: list[DeltaOp] = []
        #: Optional write-ahead log (:class:`repro.persist.DeltaLog`); when
        #: set, every buffered batch is journaled durably *before* joining
        #: the in-memory delta log.
        self.wal = None
        self._snapshot: Optional[FlatAIT] = None
        self._snapshot_tree_version = -1
        self._version = 0
        self.refresh()

    @classmethod
    def restore(
        cls,
        shard_id: int,
        tree: AIT,
        snapshot: FlatAIT,
        global_ids: np.ndarray,
        version: int = 1,
    ) -> "Shard":
        """Reassemble a shard from persisted state without rebuilding anything.

        Used by :func:`repro.persist.durable.open_engine`: ``tree`` is the
        restored local tree (node graph deferred), ``snapshot`` the loaded —
        typically mmap-backed — :class:`FlatAIT` it serves queries from, and
        ``global_ids`` the saved local->global id map.  The delta log starts
        empty; recovered WAL records are re-buffered afterwards and fold in
        through the normal :meth:`refresh`.
        """
        shard = cls.__new__(cls)
        shard.shard_id = int(shard_id)
        shard.tree = tree
        shard.wal = None
        shard._global_ids = np.asarray(global_ids, dtype=np.int64).copy()
        shard._id_count = int(shard._global_ids.shape[0])
        shard._local_of = None
        shard._pending = []
        shard._snapshot = snapshot
        shard._snapshot_tree_version = tree.structure_version
        shard._global_map = shard._global_ids[: shard._id_count]
        shard._version = int(version)
        return shard

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of intervals currently active in this shard (snapshot view)."""
        return self.tree.size

    @property
    def version(self) -> int:
        """Snapshot version; advances whenever :meth:`refresh` changed visible state."""
        return self._version

    @property
    def pending_ops(self) -> int:
        """Number of buffered writes not yet applied to the snapshot."""
        return sum(int(op[1].shape[0]) for op in self._pending)

    @property
    def snapshot(self) -> FlatAIT:
        """The flat engine the current batch executes on (apply deltas via :meth:`refresh`)."""
        assert self._snapshot is not None  # established by __init__
        return self._snapshot

    @property
    def global_map(self) -> np.ndarray:
        """Local→global id map aligned with the current snapshot.

        Frozen at the last :meth:`refresh` alongside the snapshot — buffered
        writes do not move it — so it is safe to publish to executor workers
        together with the snapshot arrays (:mod:`repro.service.shm`).
        """
        return self._global_map

    def nbytes(self) -> int:
        """Approximate memory footprint: tree structure plus flat snapshot.

        Measures what the shard currently holds — a treeless (columnar
        backend) shard that never replayed a write reports only columns plus
        snapshot, without forcing node materialisation.
        """
        return int(self.tree.memory_bytes(materialise=False)) + int(self.snapshot.nbytes())

    def to_global(self, local_ids: np.ndarray) -> np.ndarray:
        """Map an array of shard-local interval ids to engine-global ids."""
        if local_ids.shape[0] == 0:
            return local_ids
        return self._global_map[local_ids]

    def _record_global_ids(self, global_ids: np.ndarray, local_ids: np.ndarray) -> None:
        """Record freshly applied inserts in the id maps.

        Local ids are *positions*, not an append-only sequence — the tree
        recycles vacated slots — so each mapping lands at its local id,
        overwriting whatever dead mapping held the slot before.
        """
        if local_ids.shape[0] == 0:
            return
        top = int(local_ids.max()) + 1
        if top > self._global_ids.shape[0]:
            grow = max(16, top - self._global_ids.shape[0], self._global_ids.shape[0] // 2)
            self._global_ids = np.concatenate(
                (self._global_ids, np.empty(grow, dtype=np.int64))
            )
        if self._local_of is not None:
            recycled = local_ids[local_ids < self._id_count]
            for local in recycled.tolist():
                self._local_of.pop(int(self._global_ids[local]), None)
        self._global_ids[local_ids] = global_ids
        self._id_count = max(self._id_count, top)
        if self._local_of is not None:
            for global_id, local in zip(global_ids.tolist(), local_ids.tolist()):
                self._local_of[int(global_id)] = int(local)

    def _local_ids_of(self, global_ids: np.ndarray) -> np.ndarray:
        """Shard-local ids owning ``global_ids`` (builds the inverse map on demand)."""
        if self._local_of is None:
            self._local_of = {
                int(g): i for i, g in enumerate(self._global_ids[: self._id_count])
            }
        lookup = self._local_of
        return np.asarray([lookup[int(g)] for g in global_ids], dtype=np.int64)

    # ------------------------------------------------------------------ #
    # delta log
    # ------------------------------------------------------------------ #
    def buffer_insert(self, global_id: int, left: float, right: float) -> None:
        """Append one insertion to the delta log (a one-element bulk entry)."""
        self.buffer_insert_many(
            np.asarray([global_id], dtype=np.int64),
            np.asarray([left], dtype=np.float64),
            np.asarray([right], dtype=np.float64),
        )

    def buffer_delete(self, global_id: int) -> None:
        """Append one deletion to the delta log (a one-element bulk entry)."""
        self.buffer_delete_many(np.asarray([global_id], dtype=np.int64))

    def buffer_insert_many(
        self, global_ids: np.ndarray, lefts: np.ndarray, rights: np.ndarray
    ) -> None:
        """Append a whole insertion batch to the delta log as one bulk op.

        With a write-ahead log attached the batch is journaled durably
        first — write-ahead ordering: if the record is not on disk (per the
        log's fsync policy), the write is not in memory either.
        """
        if global_ids.shape[0]:
            gids = np.asarray(global_ids, dtype=np.int64)
            lefts_arr = np.asarray(lefts, dtype=np.float64)
            rights_arr = np.asarray(rights, dtype=np.float64)
            if self.wal is not None:
                self.wal.append_insert(gids, lefts_arr, rights_arr)
            self._pending.append(("insert_many", gids, lefts_arr, rights_arr))

    def buffer_delete_many(self, global_ids: np.ndarray) -> None:
        """Append a whole deletion batch to the delta log as one bulk op."""
        if global_ids.shape[0]:
            gids = np.asarray(global_ids, dtype=np.int64)
            if self.wal is not None:
                self.wal.append_delete(gids)
            self._pending.append(("delete_many", gids))

    def _replay_insert_run(
        self, global_ids: list[np.ndarray], lefts: list[np.ndarray], rights: list[np.ndarray]
    ) -> None:
        gids = np.concatenate(global_ids)
        local_ids = self.tree.insert_many(np.concatenate(lefts), np.concatenate(rights))
        self._record_global_ids(gids, local_ids)

    def _replay_delete_run(self, global_ids: list[np.ndarray]) -> None:
        self.tree.delete_many(self._local_ids_of(np.concatenate(global_ids)))

    def refresh(self) -> bool:
        """Replay the delta log into the tree and re-snapshot if anything changed.

        Returns True when a new snapshot version was produced.  The engine
        calls this at the start of every batch — never while a batch is
        executing — so within one scatter-gather round every shard serves one
        consistent snapshot.  Consecutive operations of the same kind are
        replayed through the tree's bulk ``insert_many`` / ``delete_many``
        APIs (one deferred re-sort per touched list per run), and the
        re-snapshot uses the incremental dirty-node refresh path whenever
        the tree's journal allows it.
        """
        run_kind: Optional[str] = None
        run_gids: list[np.ndarray] = []
        run_lefts: list[np.ndarray] = []
        run_rights: list[np.ndarray] = []

        def flush_run() -> None:
            nonlocal run_kind
            if run_kind == "insert":
                self._replay_insert_run(run_gids, run_lefts, run_rights)
            elif run_kind == "delete":
                self._replay_delete_run(run_gids)
            run_kind = None
            run_gids.clear()
            run_lefts.clear()
            run_rights.clear()

        for op in self._pending:
            kind = "insert" if op[0] == "insert_many" else "delete"
            if kind != run_kind:
                flush_run()
                run_kind = kind
            if kind == "insert":
                _, gids, lefts, rights = op
                run_gids.append(gids)
                run_lefts.append(lefts)
                run_rights.append(rights)
            else:
                run_gids.append(op[1])
        flush_run()

        applied = bool(self._pending)
        self._pending = []
        if applied:
            # Fold any pooled-but-unflushed inserts into the tree so the flat
            # snapshot is self-contained (no pool scan on the batch path).
            self.tree.flush_pool()
        if self._snapshot is None or self.tree.structure_version != self._snapshot_tree_version:
            self._snapshot = self.tree.flat()
            self._snapshot_tree_version = self.tree.structure_version
            self._global_map = self._global_ids[: self._id_count]
            self._version += 1
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Shard(id={self.shard_id}, size={self.size}, version={self._version}, "
            f"pending={len(self._pending)})"
        )
