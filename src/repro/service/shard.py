"""One shard of a :class:`~repro.service.engine.ShardedEngine`.

A shard owns a disjoint subset of the engine's intervals.  Internally it
keeps three layers of state:

* a **local tree** — an :class:`~repro.core.ait.AIT` (or
  :class:`~repro.core.awit.AWIT` for weighted engines) built over the shard's
  intervals, addressed by *local* ids ``0..m-1``;
* an **id map** between local and engine-global ids (``global_ids[local]``
  and its inverse), so query results can be reported in the engine's id
  space;
* a **delta log** of buffered writes plus a **versioned snapshot** — the
  :class:`~repro.core.flat.FlatAIT` the batch queries execute on.

Writes never touch the snapshot directly: the engine appends them to the
delta log (:meth:`Shard.buffer_insert` / :meth:`Shard.buffer_delete`) and the
log is replayed into the local tree by :meth:`Shard.refresh` — which the
engine calls at *batch boundaries only*, so a snapshot is never replaced
mid-batch.  Replay uses the paper's pooled-insertion path and flushes the
pool afterwards, which keeps a refreshed snapshot self-contained (no separate
pool scan on the batch path) and bumps :attr:`Shard.version` exactly when the
visible state changed.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..core.ait import AIT
from ..core.awit import AWIT
from ..core.dataset import IntervalDataset
from ..core.flat import FlatAIT

__all__ = ["Shard", "DeltaOp"]

#: One buffered write: ``("insert", global_id, left, right)`` or
#: ``("delete", global_id)``.
DeltaOp = Union[tuple[str, int, float, float], tuple[str, int]]


class Shard:
    """A partition of the engine's dataset with its own tree, snapshot and delta log."""

    __slots__ = (
        "shard_id",
        "tree",
        "_global_ids",
        "_id_count",
        "_local_of",
        "_global_map",
        "_pending",
        "_snapshot",
        "_snapshot_tree_version",
        "_version",
    )

    def __init__(
        self,
        shard_id: int,
        dataset: IntervalDataset,
        global_ids: np.ndarray,
        weighted: bool,
        batch_pool_size: Optional[int] = None,
    ) -> None:
        self.shard_id = int(shard_id)
        # Local->global id map as a bare int64 array with amortised growth;
        # the inverse dict is only needed on deletes and is built lazily.
        self._global_ids = np.asarray(global_ids, dtype=np.int64).copy()
        self._id_count = int(self._global_ids.shape[0])
        self._local_of: Optional[dict[int, int]] = None
        local_dataset = dataset.subset(global_ids)
        if weighted:
            self.tree: AIT = AWIT(local_dataset, batch_pool_size=batch_pool_size)
        else:
            self.tree = AIT(local_dataset, batch_pool_size=batch_pool_size)
        self._pending: list[DeltaOp] = []
        self._snapshot: Optional[FlatAIT] = None
        self._snapshot_tree_version = -1
        self._version = 0
        self.refresh()

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of intervals currently active in this shard (snapshot view)."""
        return self.tree.size

    @property
    def version(self) -> int:
        """Snapshot version; advances whenever :meth:`refresh` changed visible state."""
        return self._version

    @property
    def pending_ops(self) -> int:
        """Number of buffered writes not yet applied to the snapshot."""
        return len(self._pending)

    @property
    def snapshot(self) -> FlatAIT:
        """The flat engine the current batch executes on (apply deltas via :meth:`refresh`)."""
        assert self._snapshot is not None  # established by __init__
        return self._snapshot

    def nbytes(self) -> int:
        """Approximate memory footprint: tree structure plus flat snapshot."""
        return int(self.tree.memory_bytes()) + int(self.snapshot.nbytes())

    def to_global(self, local_ids: np.ndarray) -> np.ndarray:
        """Map an array of shard-local interval ids to engine-global ids."""
        if local_ids.shape[0] == 0:
            return local_ids
        return self._global_map[local_ids]

    def _append_global_id(self, global_id: int, local_id: int) -> None:
        """Record a freshly applied insert in the id maps (amortised growth)."""
        if self._id_count == self._global_ids.shape[0]:
            grow = max(16, self._global_ids.shape[0] // 2)
            self._global_ids = np.concatenate(
                (self._global_ids, np.empty(grow, dtype=np.int64))
            )
        self._global_ids[self._id_count] = global_id
        self._id_count += 1
        if self._local_of is not None:
            self._local_of[int(global_id)] = int(local_id)

    def _local_id_of(self, global_id: int) -> int:
        """Shard-local id owning ``global_id`` (builds the inverse map on demand)."""
        if self._local_of is None:
            self._local_of = {
                int(g): i for i, g in enumerate(self._global_ids[: self._id_count])
            }
        return self._local_of[int(global_id)]

    # ------------------------------------------------------------------ #
    # delta log
    # ------------------------------------------------------------------ #
    def buffer_insert(self, global_id: int, left: float, right: float) -> None:
        """Append an insertion to the delta log (visible after the next refresh)."""
        self._pending.append(("insert", int(global_id), float(left), float(right)))

    def buffer_delete(self, global_id: int) -> None:
        """Append a deletion to the delta log (visible after the next refresh)."""
        self._pending.append(("delete", int(global_id)))

    def refresh(self) -> bool:
        """Replay the delta log into the tree and re-snapshot if anything changed.

        Returns True when a new snapshot version was produced.  The engine
        calls this at the start of every batch — never while a batch is
        executing — so within one scatter-gather round every shard serves one
        consistent snapshot.
        """
        for op in self._pending:
            if op[0] == "insert":
                _, global_id, left, right = op
                local_id = self.tree.insert((left, right))
                self._append_global_id(global_id, local_id)
            else:
                self.tree.delete(self._local_id_of(op[1]))
        applied = bool(self._pending)
        self._pending = []
        if applied:
            # Fold any pooled-but-unflushed inserts into the tree so the flat
            # snapshot is self-contained (no pool scan on the batch path).
            self.tree.flush_pool()
        if self._snapshot is None or self.tree.structure_version != self._snapshot_tree_version:
            self._snapshot = self.tree.flat()
            self._snapshot_tree_version = self.tree.structure_version
            self._global_map = self._global_ids[: self._id_count]
            self._version += 1
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Shard(id={self.shard_id}, size={self.size}, version={self._version}, "
            f"pending={len(self._pending)})"
        )
