"""Telemetry for the serving layer: counters, histograms, latency reservoirs.

The gateway (:mod:`repro.service.gateway`) needs to answer two operational
questions — *what is the traffic doing* (per-operation request counters,
micro-batch sizes) and *what does it feel like to a caller* (end-to-end
latency percentiles).  This module provides the three primitives it records
into, all safe to share between the submitting threads and the dispatcher:

* :class:`LatencyReservoir` — a fixed-size uniform reservoir sample of
  observed latencies.  Percentiles over the reservoir converge to the
  stream's percentiles without retaining every observation (Vitter's
  Algorithm R with a deterministic seed, so two identical runs report
  identical telemetry);
* :class:`BatchSizeHistogram` — power-of-two buckets over dispatched
  micro-batch sizes.  The shape tells you whether the coalescing window is
  doing anything: a load-saturated gateway fills the top bucket, an idle
  one sits at size 1;
* :class:`GatewayMetrics` — the aggregate the gateway owns: per-operation
  request/completion/error counters, the batch histogram, and one latency
  reservoir per operation, snapshotted by :meth:`GatewayMetrics.snapshot`
  (surfaced as ``RequestGateway.stats()``).

Everything is pure bookkeeping — no numpy in the hot path, one lock per
aggregate, O(1) per observation.
"""

from __future__ import annotations

import math
import random
import threading
from typing import Optional

__all__ = ["LatencyReservoir", "BatchSizeHistogram", "GatewayMetrics"]

#: Default number of latency observations retained per operation.
DEFAULT_RESERVOIR_SIZE = 4096

#: The percentiles reported by every latency snapshot.
REPORTED_PERCENTILES = (50.0, 95.0, 99.0)


class LatencyReservoir:
    """Uniform reservoir sample of a latency stream with percentile queries.

    Parameters
    ----------
    capacity:
        Maximum number of observations retained.  Once the stream exceeds
        the capacity, each new observation replaces a uniformly random slot
        with probability ``capacity / seen`` (Algorithm R), so the retained
        set stays a uniform sample of everything observed.
    seed:
        Seed for the replacement decisions.  Fixed by default so telemetry
        is reproducible run-to-run.

    Examples
    --------
    >>> reservoir = LatencyReservoir(capacity=128)
    >>> for ms in range(1, 101):
    ...     reservoir.record(ms / 1000.0)
    >>> reservoir.count
    100
    >>> round(reservoir.percentile(50.0) * 1000.0)
    50
    >>> round(reservoir.percentile(99.0) * 1000.0)
    99
    """

    __slots__ = ("_capacity", "_values", "_seen", "_total", "_max", "_rng")

    def __init__(self, capacity: int = DEFAULT_RESERVOIR_SIZE, seed: int = 2024) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = int(capacity)
        self._values: list[float] = []
        self._seen = 0
        self._total = 0.0
        self._max = 0.0
        self._rng = random.Random(seed)

    @property
    def count(self) -> int:
        """Total number of observations recorded (not just retained)."""
        return self._seen

    def record(self, seconds: float) -> None:
        """Add one latency observation (in seconds)."""
        value = float(seconds)
        self._seen += 1
        self._total += value
        if value > self._max:
            self._max = value
        if len(self._values) < self._capacity:
            self._values.append(value)
        else:
            slot = self._rng.randrange(self._seen)
            if slot < self._capacity:
                self._values[slot] = value

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile (``q`` in [0, 100]) over the reservoir."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        rank = max(0, min(len(ordered) - 1, math.ceil(q / 100.0 * len(ordered)) - 1))
        return ordered[rank]

    def snapshot_ms(self) -> dict:
        """Summary statistics in milliseconds (count, mean, p50/p95/p99, max)."""
        summary = {
            "count": self._seen,
            "mean_ms": round(self._total / self._seen * 1e3, 3) if self._seen else 0.0,
            "max_ms": round(self._max * 1e3, 3),
        }
        for q in REPORTED_PERCENTILES:
            summary[f"p{q:g}_ms"] = round(self.percentile(q) * 1e3, 3)
        return summary


class BatchSizeHistogram:
    """Power-of-two bucketed histogram of dispatched micro-batch sizes.

    Buckets are ``1``, ``2``, ``3-4``, ``5-8``, ``9-16``, ... — the first
    bucket isolating the degenerate "no coalescing happened" case that the
    gateway exists to avoid under load.

    Examples
    --------
    >>> histogram = BatchSizeHistogram()
    >>> for size in [1, 1, 2, 3, 4, 7, 64]:
    ...     histogram.record(size)
    >>> histogram.snapshot()
    {'1': 2, '2': 1, '3-4': 2, '5-8': 1, '33-64': 1}
    >>> round(histogram.mean(), 2)
    11.71
    """

    __slots__ = ("_buckets", "_total", "_count")

    def __init__(self) -> None:
        self._buckets: dict[int, int] = {}
        self._total = 0
        self._count = 0

    def record(self, size: int) -> None:
        """Add one batch-size observation (must be >= 1)."""
        size = int(size)
        if size < 1:
            raise ValueError(f"batch size must be >= 1, got {size}")
        bucket = (size - 1).bit_length()  # 1 -> 0, 2 -> 1, 3-4 -> 2, 5-8 -> 3, ...
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1
        self._total += size
        self._count += 1

    def mean(self) -> float:
        """Mean dispatched batch size (0.0 before the first batch)."""
        return self._total / self._count if self._count else 0.0

    def snapshot(self) -> dict:
        """Ordered ``{bucket_label: count}`` mapping of non-empty buckets."""
        out: dict[str, int] = {}
        for bucket in sorted(self._buckets):
            lo, hi = (2 ** (bucket - 1) + 1, 2**bucket) if bucket else (1, 1)
            label = str(lo) if lo == hi else f"{lo}-{hi}"
            out[label] = self._buckets[bucket]
        return out


class GatewayMetrics:
    """Aggregate telemetry recorded by a :class:`~repro.service.gateway.RequestGateway`.

    Thread-safe: submitting threads record enqueues while the dispatcher
    records dispatches and completions.  ``snapshot()`` returns plain dicts
    (JSON-ready), computed under the same lock.

    Examples
    --------
    >>> metrics = GatewayMetrics()
    >>> metrics.record_request("count")
    >>> metrics.record_batch(size=1, groups=1)
    >>> metrics.record_completion("count", seconds=0.002)
    >>> stats = metrics.snapshot()
    >>> stats["requests"]
    {'count': 1}
    >>> stats["batches"]["dispatched"]
    1
    >>> stats["latency_ms"]["count"]["count"]
    1
    """

    __slots__ = (
        "_lock",
        "_reservoir_size",
        "_requests",
        "_completions",
        "_errors",
        "_timeouts",
        "_sheds",
        "_fallbacks",
        "_histogram",
        "_groups_total",
        "_latency",
    )

    def __init__(self, reservoir_size: int = DEFAULT_RESERVOIR_SIZE) -> None:
        self._lock = threading.Lock()
        self._reservoir_size = int(reservoir_size)
        self._requests: dict[str, int] = {}
        self._completions: dict[str, int] = {}
        self._errors: dict[str, int] = {}
        self._timeouts: dict[str, int] = {}
        self._sheds: dict[str, int] = {}
        self._fallbacks = 0
        self._histogram = BatchSizeHistogram()
        self._groups_total = 0
        self._latency: dict[str, LatencyReservoir] = {}

    def record_request(self, op: str) -> None:
        """Count one submitted request for operation ``op``."""
        with self._lock:
            self._requests[op] = self._requests.get(op, 0) + 1

    def record_batch(self, size: int, groups: int = 1) -> None:
        """Count one dispatched micro-batch of ``size`` requests in ``groups`` dispatch groups."""
        with self._lock:
            self._histogram.record(size)
            self._groups_total += int(groups)

    def record_timeout(self, op: str) -> None:
        """Count one blocking-wrapper (or front-end deadline) timeout for ``op``."""
        with self._lock:
            self._timeouts[op] = self._timeouts.get(op, 0) + 1

    def record_shed(self, op: str) -> None:
        """Count one request shed at submit time (gateway queue at capacity)."""
        with self._lock:
            self._sheds[op] = self._sheds.get(op, 0) + 1

    def record_fallback(self) -> None:
        """Count one grouped dispatch that fell back to per-request execution."""
        with self._lock:
            self._fallbacks += 1

    def record_completion(
        self, op: str, seconds: float, error: bool = False
    ) -> None:
        """Record one finished request: end-to-end latency plus error accounting."""
        with self._lock:
            self._completions[op] = self._completions.get(op, 0) + 1
            if error:
                self._errors[op] = self._errors.get(op, 0) + 1
            reservoir = self._latency.get(op)
            if reservoir is None:
                reservoir = self._latency[op] = LatencyReservoir(self._reservoir_size)
            reservoir.record(seconds)

    def snapshot(self, percentiles: Optional[tuple[float, ...]] = None) -> dict:
        """A JSON-ready snapshot of every counter, the histogram and all reservoirs."""
        with self._lock:
            dispatched = self._histogram._count
            return {
                "requests": dict(sorted(self._requests.items())),
                "completions": dict(sorted(self._completions.items())),
                "errors": dict(sorted(self._errors.items())),
                "timed_out": dict(sorted(self._timeouts.items())),
                "shed": dict(sorted(self._sheds.items())),
                "batches": {
                    "dispatched": dispatched,
                    "mean_size": round(self._histogram.mean(), 3),
                    "size_histogram": self._histogram.snapshot(),
                    "dispatch_groups": self._groups_total,
                    "fallbacks": self._fallbacks,
                },
                "latency_ms": {
                    op: reservoir.snapshot_ms()
                    for op, reservoir in sorted(self._latency.items())
                },
            }
