"""Throughput — batched (FlatAIT) vs scalar query execution.

Not a table from the paper: this experiment tracks the engineering headroom
of the reproduction itself.  The paper's complexity results fix the *asymptotic*
query cost; what dominates wall-clock time in Python is per-query interpreter
dispatch.  The flat batch engine (:class:`~repro.core.flat.FlatAIT`) amortises
that dispatch across a whole query batch, and this experiment measures the
resulting throughput (queries/second) for counting, reporting and sampling,
per dataset, alongside the scalar-loop baseline and the speedup factor.

``scripts/bench_throughput.py`` runs the same measurement standalone and
emits machine-readable ``BENCH_throughput.json`` so successive PRs have a
perf trajectory to compare against.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from ..core import AIT
from ..sampling.rng import resolve_rng
from .config import ExperimentConfig
from .harness import build_dataset, build_workload
from .report import ExperimentResult

__all__ = ["run", "measure_pair"]


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_pair(
    scalar_fn: Callable[[], object],
    batch_fn: Callable[[], object],
    query_count: int,
    repeats: int = 1,
) -> tuple[float, float, float]:
    """Best-of-N timings for a scalar loop vs its batch counterpart.

    Returns ``(scalar_qps, batch_qps, speedup)``; both callables must answer
    the same ``query_count`` queries.
    """
    scalar_s = _best_of(scalar_fn, repeats)
    batch_s = _best_of(batch_fn, repeats)
    scalar_qps = query_count / scalar_s if scalar_s > 0 else float("inf")
    batch_qps = query_count / batch_s if batch_s > 0 else float("inf")
    return scalar_qps, batch_qps, (batch_qps / scalar_qps if scalar_qps > 0 else float("inf"))


def run(config: ExperimentConfig) -> ExperimentResult:
    """Measure scalar vs batch throughput of the AIT per dataset and operation."""
    result = ExperimentResult(
        experiment_id="throughput",
        title="Batch vs scalar query throughput [queries/sec]",
        columns=["dataset", "operation", "scalar_qps", "batch_qps", "speedup"],
        notes=(
            "Scalar = one Python call per query on the pointer-based AIT; "
            "batch = count_many/report_many/sample_many on the flat "
            "structure-of-arrays engine.  The speedup is pure constant-factor "
            "(identical asymptotics and identical results)."
        ),
    )
    repeats = max(1, config.repeats)
    for dataset_name in config.datasets:
        dataset = build_dataset(config, dataset_name)
        workload = build_workload(config, dataset, dataset_name)
        queries = list(workload)
        query_array = np.asarray(queries, dtype=np.float64)
        tree = AIT(dataset)
        tree.flat()  # snapshot once; both paths then query a warm structure

        def scalar_sample():
            # One Generator per invocation (like a real serving loop), created
            # outside the per-query iteration so its construction cost is not
            # charged to the scalar side.
            rng = resolve_rng(0)
            return [tree.sample(q, config.sample_size, random_state=rng) for q in queries]

        operations = {
            "count": (
                lambda: [tree.count(q) for q in queries],
                lambda: tree.count_many(query_array),
            ),
            "report": (
                lambda: [tree.report(q) for q in queries],
                lambda: tree.report_many(query_array),
            ),
            "sample": (
                scalar_sample,
                lambda: tree.sample_many(query_array, config.sample_size, random_state=0),
            ),
        }
        for operation, (scalar_fn, batch_fn) in operations.items():
            scalar_qps, batch_qps, speedup = measure_pair(
                scalar_fn, batch_fn, len(queries), repeats
            )
            result.add_row(
                dataset=dataset_name,
                operation=operation,
                scalar_qps=scalar_qps,
                batch_qps=batch_qps,
                speedup=speedup,
            )
    return result
