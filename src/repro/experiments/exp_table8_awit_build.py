"""Table VIII — pre-processing time and memory usage of the AWIT (weighted case)."""

from __future__ import annotations

from ..core import AWIT
from .config import ExperimentConfig
from .harness import build_dataset, time_seconds
from .memory import structure_memory_bytes
from .report import ExperimentResult

__all__ = ["PAPER_REFERENCE", "run"]

#: Table VIII of the paper (seconds, GB at full scale).
PAPER_REFERENCE = [
    {"metric": "Pre-processing time [sec]", "book": 3.15, "btc": 6.07, "renfe": 109.86, "taxi": 282.81},
    {"metric": "Memory usage [GB]", "book": 0.44, "btc": 1.13, "renfe": 12.29, "taxi": 46.15},
]


def run(config: ExperimentConfig) -> ExperimentResult:
    """Measure AWIT build time and memory on the weighted dataset analogues."""
    result = ExperimentResult(
        experiment_id="table8",
        title="Pre-processing time [sec] and memory [MB at configured scale] of AWIT",
        columns=["metric", *config.datasets],
        paper_reference=PAPER_REFERENCE,
        notes=(
            "Expected shape: only a modest additional cost over the plain AIT "
            "(Table III / IV), because the AWIT merely adds prefix-sum arrays."
        ),
    )
    time_row = {"metric": "Pre-processing time [sec]"}
    memory_row = {"metric": "Memory usage [MB]"}
    for dataset_name in config.datasets:
        dataset = build_dataset(config, dataset_name, weighted=True)
        # Pin the eager backend: Table VIII measures the paper's node-tree
        # build, which the default lazy columnar backend would defer.
        tree, seconds = time_seconds(lambda: AWIT(dataset, build_backend="tree"))
        time_row[dataset_name] = seconds
        memory_row[dataset_name] = structure_memory_bytes(tree) / 1e6
    result.add_row(**time_row)
    result.add_row(**memory_row)
    return result
