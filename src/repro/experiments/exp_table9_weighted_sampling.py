"""Table IX — sampling time in the weighted case (alias building included)."""

from __future__ import annotations

from .config import ExperimentConfig
from .grid import run_grid
from .harness import WEIGHTED_ALGORITHMS
from .report import ExperimentResult

__all__ = ["PAPER_REFERENCE", "run"]

#: Table IX of the paper (microseconds).  Interval tree and HINT^m share a row.
PAPER_REFERENCE = [
    {"algorithm": "Interval tree & HINT^m", "book": 6594.67, "btc": 6593.22, "renfe": 122169.91, "taxi": 389509.09},
    {"algorithm": "KDS", "book": 1307.50, "btc": 1442.94, "renfe": 1917.36, "taxi": 2101.71},
    {"algorithm": "AWIT", "book": 136.39, "btc": 134.06, "renfe": 347.94, "taxi": 446.72},
]


def run(config: ExperimentConfig) -> ExperimentResult:
    """Measure the weighted sampling phase for every weighted-case competitor."""
    cells = run_grid(config, WEIGHTED_ALGORITHMS, weighted=True)
    result = ExperimentResult(
        experiment_id="table9",
        title="Sampling time [microsec] (weighted case, alias building included)",
        columns=["algorithm", *config.datasets],
        paper_reference=PAPER_REFERENCE,
        notes=(
            "Expected shape: search-based algorithms now pay O(|q ∩ X|) to build a "
            "per-query alias table, so AWIT wins on both phases; AWIT is slower than "
            "the unweighted AIT because each draw costs O(log n)."
        ),
    )
    for algorithm in WEIGHTED_ALGORITHMS:
        row = {"algorithm": algorithm}
        for cell in cells:
            if cell.algorithm == algorithm:
                row[cell.dataset] = cell.timings.sampling_us
        result.add_row(**row)
    return result
