"""Experiment result containers and text/CSV rendering.

Every experiment returns an :class:`ExperimentResult`: a labelled table of
measured values, optionally carrying the corresponding numbers published in
the paper so the harness can print a side-by-side "paper vs measured"
comparison (EXPERIMENTS.md is generated from exactly these tables).
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

__all__ = ["ExperimentResult", "format_table"]


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, Any]], columns: Sequence[str]) -> str:
    """Render rows as a fixed-width text table."""
    headers = list(columns)
    rendered = [[_format_value(row.get(col, "")) for col in headers] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


@dataclass(slots=True)
class ExperimentResult:
    """Measured output of one experiment (one paper table or figure).

    Attributes
    ----------
    experiment_id:
        Identifier such as ``"table5"`` or ``"fig6"``.
    title:
        Human-readable description matching the paper caption.
    columns:
        Ordered column names; every row dict uses these keys.
    rows:
        Measured rows.
    paper_reference:
        Optional rows holding the values published in the paper (same column
        convention) for side-by-side comparison.
    notes:
        Free-form commentary, e.g. the qualitative shape the reproduction is
        expected to (and does) exhibit.
    """

    experiment_id: str
    title: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    paper_reference: list[dict[str, Any]] | None = None
    notes: str = ""

    def add_row(self, **values: Any) -> None:
        """Append one measured row."""
        self.rows.append(dict(values))

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        return [row.get(name) for row in self.rows]

    def row_by(self, **match: Any) -> dict[str, Any]:
        """First row whose values match all the given key/value pairs."""
        for row in self.rows:
            if all(row.get(k) == v for k, v in match.items()):
                return row
        raise KeyError(f"no row matching {match!r}")

    # ------------------------------------------------------------------ #
    def to_text(self) -> str:
        """Render the result (and the paper reference, when present) as text."""
        parts = [f"== {self.experiment_id}: {self.title} ==", format_table(self.rows, self.columns)]
        if self.paper_reference:
            parts.append("-- paper reference (published values) --")
            reference_columns = list(self.paper_reference[0].keys())
            parts.append(format_table(self.paper_reference, reference_columns))
        if self.notes:
            parts.append(f"notes: {self.notes}")
        return "\n".join(parts)

    def to_csv(self, path: str | Path) -> None:
        """Write the measured rows to a CSV file."""
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=self.columns)
            writer.writeheader()
            for row in self.rows:
                writer.writerow({col: row.get(col, "") for col in self.columns})

    def to_markdown(self) -> str:
        """Render the measured rows as a GitHub-flavoured markdown table."""
        header = "| " + " | ".join(self.columns) + " |"
        separator = "| " + " | ".join("---" for _ in self.columns) + " |"
        body = [
            "| " + " | ".join(_format_value(row.get(col, "")) for col in self.columns) + " |"
            for row in self.rows
        ]
        return "\n".join([header, separator, *body])
