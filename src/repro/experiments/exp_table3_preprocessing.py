"""Table III — pre-processing (index construction) time, non-weighted case."""

from __future__ import annotations

from .config import ExperimentConfig
from .grid import run_grid
from .harness import NON_WEIGHTED_ALGORITHMS
from .report import ExperimentResult

__all__ = ["PAPER_REFERENCE", "run"]

#: Table III of the paper (seconds).
PAPER_REFERENCE = [
    {"algorithm": "Interval tree", "book": 1.45, "btc": 2.93, "renfe": 52.62, "taxi": 147.19},
    {"algorithm": "HINT^m", "book": 0.60, "btc": 0.20, "renfe": 3.26, "taxi": 4.67},
    {"algorithm": "KDS", "book": 2.15, "btc": 3.43, "renfe": 36.16, "taxi": 210.36},
    {"algorithm": "AIT", "book": 3.02, "btc": 7.00, "renfe": 103.52, "taxi": 274.02},
    {"algorithm": "AIT-V", "book": 0.26, "btc": 0.28, "renfe": 3.91, "taxi": 9.40},
]


#: Build-backend axis: the paper's AIT row (eager node tree, the "tree"
#: backend) plus the repo's treeless columnar builder measured side by side.
BACKEND_AXIS: tuple[str, ...] = (*NON_WEIGHTED_ALGORITHMS, "ait_columnar")


def run(config: ExperimentConfig) -> ExperimentResult:
    """Measure index-construction time for every non-weighted competitor.

    Beyond the paper's five algorithms the grid carries a *build backend*
    axis for the AIT: the ``ait`` row times the eager recursive node-tree
    build (what Table III reports), the ``ait_columnar`` row times the
    treeless ``FlatAIT.from_arrays`` route that serves the same queries
    from flat arrays without ever allocating a Python node.
    """
    cells = run_grid(config, BACKEND_AXIS, weighted=False)
    result = ExperimentResult(
        experiment_id="table3",
        title="Pre-processing time [sec] (non-weighted case)",
        columns=["algorithm", *config.datasets],
        paper_reference=PAPER_REFERENCE,
        notes=(
            "Expected shape: AIT is the most expensive build (it materialises the "
            "augmented AL lists), AIT-V the cheapest of the tree builds (only n/log n "
            "virtual intervals); absolute values are pure-Python and not comparable to "
            "the paper's C++ numbers.  The extra ait_columnar row is the repo's "
            "treeless FlatAIT.from_arrays build of the same index — it beats the "
            "ait row wherever the tree has real node fan-out (all datasets but "
            "book, whose few hundred nodes leave little Python to avoid), "
            "increasingly so at scale."
        ),
    )
    for algorithm in BACKEND_AXIS:
        row = {"algorithm": algorithm}
        for cell in cells:
            if cell.algorithm == algorithm:
                row[cell.dataset] = cell.build_seconds
        result.add_row(**row)
    return result
