"""Structure-size estimation used by the memory experiments (Tables IV and VIII)."""

from __future__ import annotations

import sys
from typing import Any

import numpy as np

__all__ = ["structure_memory_bytes", "deep_sizeof"]


def structure_memory_bytes(index: Any) -> int:
    """Memory footprint of an index structure in bytes.

    Structures in this library expose ``memory_bytes()``; anything else falls
    back to a conservative recursive ``sys.getsizeof`` walk.
    """
    probe = getattr(index, "memory_bytes", None)
    if callable(probe):
        return int(probe())
    return deep_sizeof(index)


def deep_sizeof(obj: Any, _seen: set[int] | None = None) -> int:
    """Recursive ``sys.getsizeof`` covering containers, __dict__/__slots__ and numpy arrays."""
    if _seen is None:
        _seen = set()
    identity = id(obj)
    if identity in _seen:
        return 0
    _seen.add(identity)

    if isinstance(obj, np.ndarray):
        return int(obj.nbytes) + sys.getsizeof(obj, 0)

    size = sys.getsizeof(obj, 64)
    if isinstance(obj, dict):
        size += sum(deep_sizeof(k, _seen) + deep_sizeof(v, _seen) for k, v in obj.items())
    elif isinstance(obj, (list, tuple, set, frozenset)):
        size += sum(deep_sizeof(item, _seen) for item in obj)
    else:
        attrs = getattr(obj, "__dict__", None)
        if attrs:
            size += deep_sizeof(attrs, _seen)
        slots = getattr(type(obj), "__slots__", ())
        for slot in slots:
            if hasattr(obj, slot):
                size += deep_sizeof(getattr(obj, slot), _seen)
    return size
