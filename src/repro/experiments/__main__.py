"""Allow ``python -m repro.experiments`` as an alias for the CLI."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
