"""Service throughput — shard-count scaling of the ShardedEngine.

Not a table from the paper: like ``throughput``, this experiment tracks the
engineering headroom of the reproduction's serving layer.  It builds a
:class:`~repro.service.ShardedEngine` at several shard counts over each
dataset, answers one batch workload per operation (count / report / sample),
and reports queries/second next to the unsharded ``FlatAIT`` baseline
(``shards = 0`` row) plus the relative throughput.

Two executors are measured for every shard count: the serial scatter-gather
loop (isolates pure partitioning overhead/benefit) and the thread pool
(adds real parallelism — the per-shard kernels are NumPy calls that release
the GIL).  ``scripts/bench_service.py`` runs the same measurement standalone
and emits ``BENCH_service.json`` so successive PRs can compare scaling
curves.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from ..core import AIT, AWIT
from ..service import ShardedEngine
from .config import ExperimentConfig
from .harness import build_dataset, build_workload
from .report import ExperimentResult

__all__ = ["run", "measure_qps", "SHARD_SWEEP"]

#: Shard counts measured by default (0 = the unsharded FlatAIT baseline).
SHARD_SWEEP: tuple[int, ...] = (1, 2, 4)


def measure_qps(fn: Callable[[], object], query_count: int, repeats: int = 1) -> float:
    """Best-of-N throughput of ``fn`` in queries/second."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return query_count / best if best > 0 else float("inf")


def run(config: ExperimentConfig) -> ExperimentResult:
    """Measure batch throughput of the sharded service vs the unsharded engine."""
    result = ExperimentResult(
        experiment_id="service_throughput",
        title="Sharded service throughput vs shard count [queries/sec]",
        columns=["dataset", "operation", "shards", "executor", "qps", "vs_unsharded"],
        notes=(
            "Baseline (shards=0) = the unsharded FlatAIT batch engine; other "
            "rows = ShardedEngine scatter-gather at K shards with a serial "
            "loop or a thread pool.  Results are exactly equal (count/report) "
            "or distribution-identical (sample) across all rows."
        ),
    )
    repeats = max(1, config.repeats)
    sample_size = min(config.sample_size, 100)
    for dataset_name in config.datasets:
        dataset = build_dataset(config, dataset_name)
        workload = build_workload(config, dataset, dataset_name)
        query_array = np.asarray(list(workload), dtype=np.float64)
        query_count = int(query_array.shape[0])

        tree = AWIT(dataset) if dataset.is_weighted else AIT(dataset)
        flat = tree.flat()
        operations = {
            "count": lambda engine: engine.count_many(query_array),
            "report": lambda engine: engine.report_many(query_array),
            "sample": lambda engine: engine.sample_many(
                query_array, sample_size, random_state=0
            ),
        }

        baselines: dict[str, float] = {}
        for operation, run_batch in operations.items():
            qps = measure_qps(lambda: run_batch(flat), query_count, repeats)
            baselines[operation] = qps
            result.add_row(
                dataset=dataset_name,
                operation=operation,
                shards=0,
                executor="none",
                qps=qps,
                vs_unsharded=1.0,
            )

        for shards in SHARD_SWEEP:
            for executor in ("serial", "threads"):
                with ShardedEngine(
                    dataset, num_shards=shards, executor=executor
                ) as engine:
                    engine.refresh()
                    for operation, run_batch in operations.items():
                        qps = measure_qps(
                            lambda: run_batch(engine), query_count, repeats
                        )
                        result.add_row(
                            dataset=dataset_name,
                            operation=operation,
                            shards=shards,
                            executor=executor,
                            qps=qps,
                            vs_unsharded=qps / baselines[operation]
                            if baselines[operation] > 0
                            else float("inf"),
                        )
    return result
