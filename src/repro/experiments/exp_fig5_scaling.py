"""Fig. 5 — pre-processing time and memory of AIT / AIT-V vs dataset size.

The paper varies the dataset size from 20% to 100% of each dataset and shows
that both build time and memory scale (near-)linearly for AIT and AIT-V.
"""

from __future__ import annotations

from ..core import AIT, AITV
from .config import ExperimentConfig
from .harness import build_dataset, time_seconds
from .memory import structure_memory_bytes
from .report import ExperimentResult

__all__ = ["PAPER_REFERENCE", "run"]

#: Fig. 5 is plotted on log scale without tabulated values; the qualitative
#: reference is linear growth of both build time and memory in n.
PAPER_REFERENCE = [
    {"series": "AIT pre-processing time", "shape": "linear in n"},
    {"series": "AIT-V pre-processing time", "shape": "linear in n"},
    {"series": "AIT memory", "shape": "linear in n (better than the O(n log n) bound)"},
    {"series": "AIT-V memory", "shape": "linear in n"},
]


def run(config: ExperimentConfig) -> ExperimentResult:
    """Measure AIT / AIT-V build time and memory at several dataset-size fractions."""
    result = ExperimentResult(
        experiment_id="fig5",
        title="Pre-processing time [sec] and memory [MB] of AIT and AIT-V vs dataset size",
        columns=[
            "dataset",
            "fraction",
            "n",
            "ait_build_sec",
            "ait_memory_mb",
            "ait_v_build_sec",
            "ait_v_memory_mb",
        ],
        paper_reference=PAPER_REFERENCE,
        notes="Expected shape: every column grows roughly linearly with n.",
    )
    for dataset_name in config.datasets:
        for fraction in config.dataset_size_fractions:
            size = max(1_000, int(config.dataset_size * fraction))
            dataset = build_dataset(config, dataset_name, size=size)
            # Pin the eager backend: Fig. 5 measures the paper's node-tree
            # build, which the default lazy columnar backend would defer.
            ait, ait_seconds = time_seconds(lambda: AIT(dataset, build_backend="tree"))
            ait_v, ait_v_seconds = time_seconds(lambda: AITV(dataset, build_backend="tree"))
            result.add_row(
                dataset=dataset_name,
                fraction=fraction,
                n=size,
                ait_build_sec=ait_seconds,
                ait_memory_mb=structure_memory_bytes(ait) / 1e6,
                ait_v_build_sec=ait_v_seconds,
                ait_v_memory_mb=structure_memory_bytes(ait_v) / 1e6,
            )
    return result
