"""Fig. 9 — running time vs query interval length (domain extent), weighted case."""

from __future__ import annotations

from .config import ExperimentConfig
from .harness import (
    WEIGHTED_ALGORITHMS,
    build_dataset,
    build_workload,
    make_adapters,
    measure_build,
    measure_query_timings,
)
from .report import ExperimentResult

__all__ = ["PAPER_REFERENCE", "run"]

PAPER_REFERENCE = [
    {"series": "Interval tree", "trend": "grows with extent"},
    {"series": "HINT^m", "trend": "grows with extent"},
    {"series": "KDS", "trend": "grows slightly with extent"},
    {"series": "AWIT", "trend": "nearly flat; slight growth from the cumulative-sum binary search"},
]


def run(config: ExperimentConfig) -> ExperimentResult:
    """Measure total weighted query time for every competitor across the extent sweep."""
    adapters = make_adapters(WEIGHTED_ALGORITHMS, weighted=True)
    result = ExperimentResult(
        experiment_id="fig9",
        title="Running time [microsec] vs domain extent (weighted case)",
        columns=["dataset", "extent_pct", *WEIGHTED_ALGORITHMS],
        paper_reference=PAPER_REFERENCE,
        notes="Expected shape: AWIT stays orders of magnitude below the search-based algorithms.",
    )
    for dataset_name in config.datasets:
        dataset = build_dataset(config, dataset_name, weighted=True)
        indexes = {adapter.name: measure_build(adapter, dataset)[0] for adapter in adapters}
        for extent in config.extent_sweep:
            workload = build_workload(config, dataset, dataset_name, extent_fraction=extent)
            row = {"dataset": dataset_name, "extent_pct": extent * 100.0}
            for adapter in adapters:
                timings = measure_query_timings(
                    adapter, indexes[adapter.name], workload, config.sample_size, seed=config.seed
                )
                row[adapter.name] = timings.total_us
            result.add_row(**row)
    return result
