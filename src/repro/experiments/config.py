"""Experiment configuration.

Every experiment module takes an :class:`ExperimentConfig`.  The defaults are
scaled down from the paper (pure-Python timings at 2.3M-107M intervals would
be prohibitive and would not change the qualitative comparison); the
``paper_scale`` preset restores the published cardinalities for users with
the patience (and RAM) to run them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

__all__ = ["ExperimentConfig", "DEFAULT_DATASETS"]

#: Dataset order used throughout the paper's tables.
DEFAULT_DATASETS: tuple[str, ...] = ("book", "btc", "renfe", "taxi")


@dataclass(frozen=True, slots=True)
class ExperimentConfig:
    """Parameters shared by all experiments.

    Attributes
    ----------
    datasets:
        Which synthetic dataset analogues to run on.
    dataset_size:
        Number of intervals generated per dataset (the paper uses the full
        cardinalities of Table II; see :meth:`paper_scale`).
    query_count:
        Number of queries per measurement (1,000 in the paper).
    extent_fraction:
        Query interval length as a fraction of the domain (8% in the paper).
    sample_size:
        Number of samples per query (1,000 in the paper).
    update_count:
        Number of insertions/deletions for the update experiment (5,000 in
        the paper).
    repeats:
        Timing repetitions per measurement point.
    seed:
        Root seed; every dataset/workload derives a child seed from it.
    """

    datasets: Sequence[str] = DEFAULT_DATASETS
    dataset_size: int = 100_000
    query_count: int = 200
    extent_fraction: float = 0.08
    sample_size: int = 1_000
    update_count: int = 1_000
    repeats: int = 1
    seed: int = 42
    extent_sweep: Sequence[float] = (0.01, 0.04, 0.08, 0.16, 0.32)
    sample_size_sweep: Sequence[int] = (100, 1_000, 10_000)
    dataset_size_fractions: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0)

    # ------------------------------------------------------------------ #
    # presets
    # ------------------------------------------------------------------ #
    @classmethod
    def default(cls) -> "ExperimentConfig":
        """Laptop-scale defaults used by ``repro-experiments`` and EXPERIMENTS.md."""
        return cls()

    @classmethod
    def smoke(cls) -> "ExperimentConfig":
        """Tiny configuration used by the pytest benchmarks (seconds, not minutes)."""
        return cls(
            dataset_size=20_000,
            query_count=20,
            sample_size=500,
            update_count=200,
            extent_sweep=(0.02, 0.08, 0.32),
            sample_size_sweep=(100, 500, 2_000),
            dataset_size_fractions=(0.25, 0.5, 1.0),
        )

    @classmethod
    def paper_scale(cls) -> "ExperimentConfig":
        """The paper's workload sizes (very slow in pure Python; provided for completeness)."""
        return cls(
            dataset_size=2_000_000,
            query_count=1_000,
            sample_size=1_000,
            update_count=5_000,
        )

    # ------------------------------------------------------------------ #
    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **kwargs)

    def dataset_seed(self, dataset_name: str) -> int:
        """Deterministic per-dataset seed derived from the root seed."""
        return _stable_seed(self.seed, dataset_name, "dataset")

    def query_seed(self, dataset_name: str) -> int:
        """Deterministic per-dataset query-workload seed."""
        return _stable_seed(self.seed, dataset_name, "queries")


def _stable_seed(*parts) -> int:
    """Process-independent seed derived from the given parts (unlike built-in hash)."""
    import zlib

    text = "|".join(str(part) for part in parts)
    return (zlib.crc32(text.encode("utf-8")) & 0x7FFFFFFF) or 1
