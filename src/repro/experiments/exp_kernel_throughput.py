"""Kernel throughput — pluggable FlatAIT backends vs the NumPy reference.

Not a table from the paper: this experiment tracks the kernel tier added
with ISSUE 8.  The FlatAIT hot loops (batch traversal, counting, segmented
prefix sums, weighted position picks) run behind the
:mod:`repro.kernels` backend interface; this experiment times
``count_many`` / ``report_many`` / ``sample_many`` on the *same* snapshot
arrays under every available backend and — the part that gates — asserts
that every backend's answers are **bit-identical** to the NumPy reference
backend's (``identical`` column; exact array equality on counts, on report
chunks, and on fixed-seed sample draws).

Throughput expectations are backend-honest.  The ``python`` backend exists
as a portable mirror of the compiled kernels (same loop structure, no JIT) —
it is *expected* to be far slower than NumPy and its ratios are advisory
diagnostics, not targets.  The ``numba`` backend appears only when numba is
importable (``pip install repro[accel]``); its first call per kernel pays
JIT compilation, which the measurement loop absorbs in an un-timed warm-up
pass so the timed passes see steady-state compiled throughput.
"""

from __future__ import annotations

import numpy as np

from ..core.ait import AIT
from ..core.awit import AWIT
from ..core.flat import FlatAIT
from ..kernels import numba_available
from .config import ExperimentConfig
from .exp_service_throughput import measure_qps
from .harness import build_dataset, build_workload
from .report import ExperimentResult

__all__ = [
    "run",
    "KERNEL_SAMPLE_SEED",
    "backend_names",
    "flat_with_backend",
    "measure_flat",
    "answers_identical",
]

#: Fixed seed for the sample_many bit-identity check (same seed, same draws).
KERNEL_SAMPLE_SEED = 20240

#: Operations timed per backend (method name on FlatAIT, batch form).
KERNEL_OPERATIONS: tuple[str, ...] = ("count", "report", "sample")


def backend_names() -> tuple[str, ...]:
    """Backends to sweep: the reference first, then every alternative present."""
    names = ["numpy", "python"]
    if numba_available():
        names.append("numba")
    return tuple(names)


def flat_with_backend(flat: FlatAIT, name: str) -> FlatAIT:
    """Rebind one snapshot's arrays to a named backend (zero copy, same data)."""
    return FlatAIT.from_buffers(
        dict(flat.to_buffers()), flat.is_weighted, kernel_backend=name
    )


def measure_flat(flat: FlatAIT, ql, qr, sample_size: int, repeats: int) -> dict:
    """``{operation: (qps, answer)}`` for one snapshot under its backend.

    Every operation runs once un-timed first: for a JIT backend that pass
    absorbs kernel compilation, so the timed passes measure steady-state
    throughput (the quantity the backend interface exists to move), not
    compiler start-up.
    """
    query_count = int(ql.shape[0])
    out: dict[str, tuple[float, object]] = {}

    counts = flat._count_many(ql, qr)
    out["count"] = (
        measure_qps(lambda: flat._count_many(ql, qr), query_count, repeats),
        counts,
    )
    reported = flat._report_many(ql, qr)
    out["report"] = (
        measure_qps(lambda: flat._report_many(ql, qr), query_count, repeats),
        reported,
    )

    def draw():
        return flat._sample_many(
            ql, qr, sample_size, np.random.default_rng(KERNEL_SAMPLE_SEED)
        )

    drawn = draw()
    out["sample"] = (measure_qps(draw, query_count, repeats), drawn)
    return out


def answers_identical(reference, candidate) -> bool:
    """True when two operation answers are bit-identical (arrays or chunk lists)."""
    if isinstance(reference, np.ndarray):
        return bool(np.array_equal(reference, candidate))
    if len(reference) != len(candidate):
        return False
    return all(np.array_equal(a, b) for a, b in zip(reference, candidate))


def run(config: ExperimentConfig) -> ExperimentResult:
    """Measure per-backend kernel throughput and verify backend bit-identity."""
    result = ExperimentResult(
        experiment_id="kernel_throughput",
        title="FlatAIT kernel backends vs the NumPy reference [queries/sec]",
        columns=[
            "dataset",
            "weighted",
            "operation",
            "backend",
            "qps",
            "vs_numpy",
            "identical",
        ],
        notes=(
            "identical = bit-identity of the row's answers vs the numpy "
            "backend on the same snapshot arrays (hard invariant; exact "
            "equality on counts, report chunks, and fixed-seed sample "
            "draws).  vs_numpy = throughput relative to the numpy backend "
            "(advisory; the python backend is a portable loop mirror and is "
            "expected to be slow, the numba backend rows appear only when "
            "numba is importable)."
        ),
    )
    repeats = max(1, config.repeats)
    sample_size = min(config.sample_size, 100)
    for dataset_name in config.datasets:
        for weighted in (False, True):
            dataset = build_dataset(config, dataset_name, weighted=weighted)
            workload = build_workload(config, dataset, dataset_name)
            query_array = np.asarray(list(workload), dtype=np.float64)
            tree = AWIT(dataset) if weighted else AIT(dataset)
            base = tree.flat()
            ql, qr = base.coerce_queries(query_array)

            reference: dict[str, tuple[float, object]] = {}
            for backend in backend_names():
                measured = measure_flat(
                    flat_with_backend(base, backend), ql, qr, sample_size, repeats
                )
                if backend == "numpy":
                    reference = measured
                for operation in KERNEL_OPERATIONS:
                    qps, answer = measured[operation]
                    ref_qps, ref_answer = reference[operation]
                    result.add_row(
                        dataset=dataset_name,
                        weighted=weighted,
                        operation=operation,
                        backend=backend,
                        qps=qps,
                        vs_numpy=qps / ref_qps if ref_qps > 0 else float("inf"),
                        identical=answers_identical(ref_answer, answer),
                    )
    return result
