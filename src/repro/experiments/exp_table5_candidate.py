"""Table V — candidate computation time, non-weighted case.

The candidate set is ``q ∩ X`` for the search-based algorithms, the node
record set ``R`` for AIT / AIT-V, and the canonical kd-tree cover for KDS.
"""

from __future__ import annotations

from .config import ExperimentConfig
from .grid import run_grid
from .harness import NON_WEIGHTED_ALGORITHMS
from .report import ExperimentResult

__all__ = ["PAPER_REFERENCE", "run"]

#: Table V of the paper (microseconds).
PAPER_REFERENCE = [
    {"algorithm": "Interval tree", "book": 4353.58, "btc": 3345.17, "renfe": 76304.50, "taxi": 177287.52},
    {"algorithm": "HINT^m", "book": 4115.27, "btc": 2183.65, "renfe": 34264.49, "taxi": 131061.57},
    {"algorithm": "KDS", "book": 105.29, "btc": 16.37, "renfe": 9.40, "taxi": 44.24},
    {"algorithm": "AIT", "book": 0.83, "btc": 0.37, "renfe": 1.20, "taxi": 2.08},
    {"algorithm": "AIT-V", "book": 0.02, "btc": 0.01, "renfe": 0.94, "taxi": 1.01},
]


def run(config: ExperimentConfig) -> ExperimentResult:
    """Measure the candidate-computation phase for every non-weighted competitor."""
    cells = run_grid(config, NON_WEIGHTED_ALGORITHMS, weighted=False)
    result = ExperimentResult(
        experiment_id="table5",
        title="Candidate computation time [microsec] (non-weighted case)",
        columns=["algorithm", *config.datasets],
        paper_reference=PAPER_REFERENCE,
        notes=(
            "Expected shape: the AIT family is orders of magnitude below the "
            "search-based algorithms (which pay Ω(|q ∩ X|)) and clearly below KDS."
        ),
    )
    for algorithm in NON_WEIGHTED_ALGORITHMS:
        row = {"algorithm": algorithm}
        for cell in cells:
            if cell.algorithm == algorithm:
                row[cell.dataset] = cell.timings.candidate_us
        result.add_row(**row)
    return result
