"""Table X — range counting time: AIT vs HINT^m (counting version) vs kd-tree."""

from __future__ import annotations

from .config import ExperimentConfig
from .harness import (
    COUNTING_ALGORITHMS,
    build_dataset,
    build_workload,
    make_adapters,
    measure_build,
    measure_counting,
)
from .report import ExperimentResult

__all__ = ["PAPER_REFERENCE", "run"]

#: Table X of the paper (microseconds).
PAPER_REFERENCE = [
    {"algorithm": "AIT", "book": 0.91, "btc": 0.75, "renfe": 1.40, "taxi": 1.66},
    {"algorithm": "HINT^m", "book": 46.60, "btc": 51.05, "renfe": 1156.20, "taxi": 3276.87},
    {"algorithm": "kd-tree", "book": 83.55, "btc": 12.51, "renfe": 7.09, "taxi": 41.02},
]


def run(config: ExperimentConfig) -> ExperimentResult:
    """Measure range-counting time for AIT, HINT^m and the kd-tree."""
    adapters = make_adapters(COUNTING_ALGORITHMS, weighted=False)
    result = ExperimentResult(
        experiment_id="table10",
        title="Range counting time [microsec]",
        columns=["algorithm", *config.datasets],
        paper_reference=PAPER_REFERENCE,
        notes=(
            "Expected shape: AIT counts in O(log^2 n) and is far below HINT^m "
            "(which enumerates the result) and below the kd-tree's O(sqrt n) cover."
        ),
    )
    rows = {name: {"algorithm": name} for name in COUNTING_ALGORITHMS}
    for dataset_name in config.datasets:
        dataset = build_dataset(config, dataset_name)
        workload = build_workload(config, dataset, dataset_name)
        for adapter in adapters:
            index, _ = measure_build(adapter, dataset)
            rows[adapter.name][dataset_name] = measure_counting(index, workload)
    for name in COUNTING_ALGORITHMS:
        result.add_row(**rows[name])
    return result
