"""Parallel scaling — process-executor scatter vs the serial loop.

Not a table from the paper: this experiment tracks the engineering headroom
of the process-parallel execution tier added with ISSUE 7 (and the
query-parallel scatter of ISSUE 9).  For each dataset it sweeps shard counts
K with the serial scatter loop and the
:class:`~repro.service.ProcessExecutor` under both scatter strategies
(``data`` — one worker per shard; ``query`` — shard x query-block tiles over
all workers), measures ``count_many`` and ``sample_many`` throughput, and —
the part that gates — asserts that every process-executor answer is
**bit-identical** to the serial executor's at the same K (``identical``
column; exact array equality on counts and on sample draws under a fixed
seed).

Throughput expectations are hardware-honest.  ``count_many`` per shard is
two ``searchsorted`` passes, O(Q·log n): data sharding *splits the data*,
not the work (every shard still classifies every query against log(n/K)
levels), so even on a many-core box the data scatter's count speedup is
bounded by log n / log(n/K) — barely above 1.  The query scatter divides
the batch itself — per-worker work drops to O((Q/W)·K·log(n/K)) — and is
the strategy that can exceed 1x on count given real cores.  On a
single-core runner every process row pays IPC without any gain.  That is
why the committed baseline records ``cpu_count`` and why the scaling ratios
are advisory (compared under the regression gate's wide tolerance) while
``identical`` is a hard 1.0 invariant.
"""

from __future__ import annotations

import numpy as np

from ..service import ProcessExecutor, ShardedEngine
from .config import ExperimentConfig
from .exp_service_throughput import measure_qps
from .harness import build_dataset, build_workload
from .report import ExperimentResult

__all__ = ["run", "PARALLEL_SHARD_SWEEP", "measure_engine", "results_identical"]

#: Shard counts swept by the parallel-scaling experiment.
PARALLEL_SHARD_SWEEP: tuple[int, ...] = (1, 2, 4)

#: Fixed seed for the sample_many bit-identity check (same seed, same draws).
SAMPLE_SEED = 12345


def measure_engine(engine, query_array, sample_size: int, repeats: int):
    """(count_qps, sample_qps, count_rows, sample_draws) for one engine.

    The first call of each operation runs un-timed: for the process executor
    it absorbs the one-off worker spawn + segment publish cost, so the timed
    passes measure steady-state scatter throughput (the quantity that should
    scale), not process start-up.
    """
    query_count = int(query_array.shape[0])
    counts = engine.count_many(query_array)
    count_qps = measure_qps(lambda: engine.count_many(query_array), query_count, repeats)
    draws = engine.sample_many(
        query_array, sample_size, random_state=np.random.default_rng(SAMPLE_SEED)
    )
    sample_qps = measure_qps(
        lambda: engine.sample_many(
            query_array, sample_size, random_state=np.random.default_rng(SAMPLE_SEED)
        ),
        query_count,
        repeats,
    )
    return count_qps, sample_qps, counts, draws


def results_identical(reference, candidate) -> bool:
    """True when two (counts, draws) pairs are bit-identical."""
    ref_counts, ref_draws = reference
    cand_counts, cand_draws = candidate
    if not np.array_equal(ref_counts, cand_counts):
        return False
    if len(ref_draws) != len(cand_draws):
        return False
    return all(np.array_equal(a, b) for a, b in zip(ref_draws, cand_draws))


def run(config: ExperimentConfig) -> ExperimentResult:
    """Measure process-executor scaling and verify executor bit-identity."""
    result = ExperimentResult(
        experiment_id="parallel_scaling",
        title="Process-executor scaling vs the serial scatter loop [queries/sec]",
        columns=[
            "dataset",
            "operation",
            "shards",
            "executor",
            "scatter",
            "qps",
            "vs_serial_k1",
            "identical",
        ],
        notes=(
            "identical = bit-identity of the row's answers vs the serial "
            "executor at the same K (hard invariant).  vs_serial_k1 = "
            "throughput relative to the serial K=1 engine (advisory; "
            "count_many work does not partition under the data scatter — the "
            "query scatter is the one that divides it — and on a single-core "
            "runner process rows pay IPC with no parallel gain)."
        ),
    )
    repeats = max(1, config.repeats)
    sample_size = min(config.sample_size, 100)
    for dataset_name in config.datasets:
        dataset = build_dataset(config, dataset_name)
        workload = build_workload(config, dataset, dataset_name)
        query_array = np.asarray(list(workload), dtype=np.float64)

        baselines: dict[str, float] = {}
        for shards in PARALLEL_SHARD_SWEEP:
            with ShardedEngine(dataset, num_shards=shards, executor="serial") as engine:
                serial_count_qps, serial_sample_qps, counts, draws = measure_engine(
                    engine, query_array, sample_size, repeats
                )
            reference = (counts, draws)
            if shards == PARALLEL_SHARD_SWEEP[0]:
                baselines = {"count": serial_count_qps, "sample": serial_sample_qps}

            measured = [("serial", None, serial_count_qps, serial_sample_qps, True)]
            for scatter in ("data", "query"):
                executor = ProcessExecutor(max_workers=max(shards, 2), scatter=scatter)
                try:
                    with ShardedEngine(
                        dataset, num_shards=shards, executor=executor
                    ) as engine:
                        process_count_qps, process_sample_qps, counts, draws = measure_engine(
                            engine, query_array, sample_size, repeats
                        )
                finally:
                    executor.shutdown()
                identical = results_identical(reference, (counts, draws))
                measured.append(
                    ("process", scatter, process_count_qps, process_sample_qps, identical)
                )

            for executor_name, scatter, count_qps, sample_qps, identical in measured:
                for operation, qps in (("count", count_qps), ("sample", sample_qps)):
                    result.add_row(
                        dataset=dataset_name,
                        operation=operation,
                        shards=shards,
                        executor=executor_name,
                        scatter=scatter,
                        qps=qps,
                        vs_serial_k1=qps / baselines[operation],
                        identical=identical,
                    )
    return result
