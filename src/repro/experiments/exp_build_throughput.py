"""Build throughput — treeless columnar vs tree-walk full builds (extends Table III).

The paper's Table III reports index-construction time; this repo-specific
experiment isolates the *full-build route* of the ``FlatAIT`` execution
engine on the same synthetic dataset analogues:

* **tree** — the legacy pipeline: build the recursive :class:`~repro.AIT`
  node tree (``build_backend="tree"``), then serialise it with
  :meth:`~repro.core.flat.FlatAIT.from_tree`;
* **columnar** — the treeless builder
  :meth:`~repro.core.flat.FlatAIT.from_arrays`, which partitions the raw
  endpoint arrays level-synchronously and never allocates a Python node.

Both routes produce bit-identical engines (asserted per cell), so the
speedup column is a pure constant-factor comparison of the two builders.
The sweep runs over ``config.dataset_size_fractions`` of
``config.dataset_size`` per dataset, exposing how the gap widens with n —
the Python tree build pays per *node*, the columnar build per *array pass*.
"""

from __future__ import annotations

import time

from ..core import AIT
from ..core.flat import FlatAIT
from .config import ExperimentConfig
from .harness import build_dataset
from .report import ExperimentResult

__all__ = ["PAPER_REFERENCE", "run"]

#: Table III's AIT row (seconds, C++ at full scale) — the closest published
#: reference point for full-build cost of this index family.
PAPER_REFERENCE = [
    {"algorithm": "AIT (Table III)", "book": 3.02, "btc": 7.00, "renfe": 103.52, "taxi": 274.02},
]


def _assert_equal_snapshots(columnar: FlatAIT, tree: FlatAIT) -> None:
    """The two build routes must produce bit-identical engines."""
    assert columnar.arrays_equal(tree), "from_arrays diverged from from_tree"


def run(config: ExperimentConfig) -> ExperimentResult:
    """Measure full-build time of both backends per (dataset, size) point."""
    result = ExperimentResult(
        experiment_id="build_throughput",
        title="Full-build time: treeless columnar vs tree-walk [sec]",
        columns=[
            "dataset",
            "n",
            "tree_seconds",
            "columnar_seconds",
            "speedup",
            "builds_per_sec",
        ],
        paper_reference=PAPER_REFERENCE,
        notes=(
            "tree = AIT(build_backend='tree') + FlatAIT.from_tree; columnar = "
            "FlatAIT.from_arrays on the raw endpoint columns.  Outputs are "
            "asserted bit-identical, so speedup is a pure builder comparison; "
            "it grows with n because the tree route pays Python-level work "
            "per node while the columnar route pays one vectorised pass per "
            "tree level."
        ),
    )
    for dataset_name in config.datasets:
        for fraction in config.dataset_size_fractions:
            n = max(2, int(round(config.dataset_size * fraction)))
            dataset = build_dataset(config, dataset_name, size=n)

            best_tree = float("inf")
            tree_flat = None
            for _ in range(max(1, config.repeats)):
                start = time.perf_counter()
                tree = AIT(dataset, build_backend="tree")
                tree_flat = tree.flat()
                best_tree = min(best_tree, time.perf_counter() - start)

            best_columnar = float("inf")
            columnar_flat = None
            for _ in range(max(1, config.repeats)):
                start = time.perf_counter()
                columnar_flat = FlatAIT.from_arrays(dataset.lefts, dataset.rights)
                best_columnar = min(best_columnar, time.perf_counter() - start)

            _assert_equal_snapshots(columnar_flat, tree_flat)
            result.add_row(
                dataset=dataset_name,
                n=n,
                tree_seconds=best_tree,
                columnar_seconds=best_columnar,
                speedup=best_tree / best_columnar if best_columnar > 0 else float("inf"),
                builds_per_sec=1.0 / best_columnar if best_columnar > 0 else float("inf"),
            )
    return result
