"""Recovery — cold-start time from snapshots and WAL replay throughput.

The durability layer (``repro.persist``) claims two performance properties
worth tracking alongside the paper's tables:

* **Cold start**: reopening an engine from an epoch of checksummed,
  page-aligned, mmap-able snapshots must be far cheaper than rebuilding the
  AIT shards from the raw endpoint arrays (the snapshot files *are* the
  FlatAIT columns, so loading is I/O-bound rather than sort-bound).
* **WAL replay**: recovering writes that landed after the last snapshot
  costs one sequential scan plus the normal incremental refresh; the replay
  rate bounds how much un-snapshotted history is tolerable.

Each measured point builds an engine, snapshots it, applies a burst of bulk
writes journaled to the WAL, then reopens the directory and verifies the
recovered engine answers ``count_many`` exactly like the original.

``scripts/bench_recovery.py`` runs the same measurement standalone — plus
the SIGKILL kill-and-recover harness — and emits ``BENCH_recovery.json``.
"""

from __future__ import annotations

import shutil
import tempfile
import time

import numpy as np

from ..service import ShardedEngine
from .config import ExperimentConfig
from .harness import build_dataset, build_workload
from .report import ExperimentResult

__all__ = ["run", "SHARD_SWEEP", "measure_recovery_point"]

#: Shard counts measured by default.
SHARD_SWEEP: tuple[int, ...] = (1, 4)

#: Bulk writes journaled to the WAL between snapshot and reopen.
WAL_OPS = 2_000


def measure_recovery_point(
    dataset, query_array: np.ndarray, shards: int, seed: int, directory: str
) -> dict:
    """Snapshot, journal, kill (by closing), reopen; return the timings."""
    start = time.perf_counter()
    engine = ShardedEngine(dataset, num_shards=shards)
    engine.refresh()
    rebuild_s = time.perf_counter() - start

    start = time.perf_counter()
    engine.save_snapshot(directory)
    save_s = time.perf_counter() - start

    rng = np.random.default_rng(seed)
    lo, hi = dataset.domain()
    half = WAL_OPS // 2
    lefts = rng.uniform(lo, hi, half)
    rights = lefts + rng.exponential((hi - lo) * 0.02, half)
    new_ids = engine.insert_many(lefts, rights)
    engine.delete_many(new_ids[: half // 2])
    engine.sync_wal()
    want = engine.count_many(query_array)
    want_size = engine.size
    engine.close()

    start = time.perf_counter()
    restored = ShardedEngine.open(directory)
    # force the replayed deltas through the incremental refresh so the cost
    # of recovery is fully paid inside the measured window
    restored.refresh()
    open_s = time.perf_counter() - start
    consistent = bool(
        restored.size == want_size
        and np.array_equal(restored.count_many(query_array), want)
    )
    restored.close()

    wal_ops = half + half // 2
    return {
        "rebuild_s": rebuild_s,
        "save_s": save_s,
        "open_s": open_s,
        "speedup": rebuild_s / open_s if open_s > 0 else float("inf"),
        "wal_ops": wal_ops,
        "wal_ops_per_sec": wal_ops / open_s if open_s > 0 else float("inf"),
        "consistent": consistent,
    }


def run(config: ExperimentConfig) -> ExperimentResult:
    """Measure snapshot cold-start speedup and WAL replay throughput."""
    result = ExperimentResult(
        experiment_id="recovery",
        title="Recovery: snapshot cold start vs rebuild, WAL replay [seconds]",
        columns=[
            "dataset",
            "shards",
            "rebuild_s",
            "save_s",
            "open_s",
            "speedup",
            "wal_ops",
            "wal_ops_per_sec",
            "consistent",
        ],
        notes=(
            "rebuild_s constructs the sharded AIT engine from raw endpoint "
            "arrays; open_s restores the same state from the newest snapshot "
            "epoch plus a WAL replay of the post-snapshot writes (including "
            "the incremental refresh that folds them in). consistent is an "
            "exact count_many/size equality check against the pre-shutdown "
            "engine — it must always be True."
        ),
    )
    for dataset_name in config.datasets:
        dataset = build_dataset(config, dataset_name)
        workload = build_workload(config, dataset, dataset_name)
        query_array = np.asarray(list(workload), dtype=np.float64)
        for shards in SHARD_SWEEP:
            directory = tempfile.mkdtemp(prefix="repro-recovery-")
            try:
                point = measure_recovery_point(
                    dataset,
                    query_array,
                    shards,
                    config.dataset_seed(dataset_name) + shards,
                    directory,
                )
            finally:
                shutil.rmtree(directory, ignore_errors=True)
            result.add_row(dataset=dataset_name, shards=shards, **point)
    return result
