"""Experiment harness regenerating every table and figure of the paper."""

from .config import DEFAULT_DATASETS, ExperimentConfig
from .grid import GridCell, run_grid
from .harness import (
    COUNTING_ALGORITHMS,
    NON_WEIGHTED_ALGORITHMS,
    WEIGHTED_ALGORITHMS,
    AlgorithmAdapter,
    QueryTimings,
    build_dataset,
    build_workload,
    make_adapters,
    measure_build,
    measure_counting,
    measure_query_timings,
)
from .memory import deep_sizeof, structure_memory_bytes
from .report import ExperimentResult, format_table
from .registry import EXPERIMENTS, ExperimentEntry, list_experiments, run_all, run_experiment

__all__ = [
    "DEFAULT_DATASETS",
    "ExperimentConfig",
    "GridCell",
    "run_grid",
    "COUNTING_ALGORITHMS",
    "NON_WEIGHTED_ALGORITHMS",
    "WEIGHTED_ALGORITHMS",
    "AlgorithmAdapter",
    "QueryTimings",
    "build_dataset",
    "build_workload",
    "make_adapters",
    "measure_build",
    "measure_counting",
    "measure_query_timings",
    "deep_sizeof",
    "structure_memory_bytes",
    "ExperimentResult",
    "format_table",
    "EXPERIMENTS",
    "ExperimentEntry",
    "list_experiments",
    "run_all",
    "run_experiment",
]
