"""Fig. 6 — running time vs query interval length (domain extent), non-weighted case."""

from __future__ import annotations

from .config import ExperimentConfig
from .harness import (
    NON_WEIGHTED_ALGORITHMS,
    build_dataset,
    build_workload,
    make_adapters,
    measure_build,
    measure_query_timings,
)
from .report import ExperimentResult

__all__ = ["PAPER_REFERENCE", "run"]

#: Fig. 6 is plotted on log scale; the qualitative reference is the trend of
#: each curve as the query extent grows from 0 to 32% of the domain.
PAPER_REFERENCE = [
    {"series": "Interval tree", "trend": "grows with extent (Ω(|q ∩ X|))"},
    {"series": "HINT^m", "trend": "grows with extent (Ω(|q ∩ X|))"},
    {"series": "KDS", "trend": "grows slightly with extent"},
    {"series": "AIT", "trend": "flat (independent of extent)"},
    {"series": "AIT-V", "trend": "flat (independent of extent)"},
]


def run(config: ExperimentConfig) -> ExperimentResult:
    """Measure total query time for every competitor across the extent sweep."""
    adapters = make_adapters(NON_WEIGHTED_ALGORITHMS, weighted=False)
    result = ExperimentResult(
        experiment_id="fig6",
        title="Running time [microsec] vs domain extent (non-weighted case)",
        columns=["dataset", "extent_pct", *NON_WEIGHTED_ALGORITHMS],
        paper_reference=PAPER_REFERENCE,
        notes=(
            "Expected shape: search-based algorithms grow with the extent while the "
            "AIT family stays flat; crossover in favour of AIT happens at small extents."
        ),
    )
    for dataset_name in config.datasets:
        dataset = build_dataset(config, dataset_name)
        indexes = {adapter.name: measure_build(adapter, dataset)[0] for adapter in adapters}
        for extent in config.extent_sweep:
            workload = build_workload(config, dataset, dataset_name, extent_fraction=extent)
            row = {"dataset": dataset_name, "extent_pct": extent * 100.0}
            for adapter in adapters:
                timings = measure_query_timings(
                    adapter, indexes[adapter.name], workload, config.sample_size, seed=config.seed
                )
                row[adapter.name] = timings.total_us
            result.add_row(**row)
    return result
