"""Table IV — memory usage of every index, non-weighted case.

Besides regenerating the table, the run asserts the repo's memory-accounting
invariants: ``AIT.memory_bytes`` must expose the capacity-vs-live column
split exactly, and ``FlatAIT.nbytes`` the rank-key split — so the numbers
reported here (and by ``ShardedEngine.nbytes``) are mutually consistent
rather than ad-hoc sums.
"""

from __future__ import annotations

from ..core import AIT
from .config import ExperimentConfig
from .grid import run_grid
from .harness import NON_WEIGHTED_ALGORITHMS, build_dataset
from .report import ExperimentResult

__all__ = ["PAPER_REFERENCE", "run"]

#: Table IV of the paper (GB, at full dataset scale).
PAPER_REFERENCE = [
    {"algorithm": "Interval tree", "book": 0.17, "btc": 0.22, "renfe": 2.26, "taxi": 6.27},
    {"algorithm": "HINT^m", "book": 0.10, "btc": 0.06, "renfe": 0.53, "taxi": 1.29},
    {"algorithm": "KDS", "book": 0.29, "btc": 0.32, "renfe": 4.84, "taxi": 13.34},
    {"algorithm": "AIT", "book": 0.30, "btc": 0.78, "renfe": 8.12, "taxi": 29.88},
    {"algorithm": "AIT-V", "book": 0.03, "btc": 0.05, "renfe": 0.66, "taxi": 1.73},
]


def _assert_accounting_invariants(config: ExperimentConfig) -> None:
    """Cross-check the AIT / FlatAIT memory accounting on one dataset.

    * capacity vs live: ``memory_bytes(include_capacity=True)`` exceeds the
      live-only figure by exactly the columnar slack — three float64 columns
      of ``column_capacity - len(columns)`` rows;
    * rank keys: ``FlatAIT.nbytes(include_rank_keys=False)`` drops exactly
      the four derived key pools, nothing else.
    """
    dataset = build_dataset(config, config.datasets[0])
    tree = AIT(dataset, build_backend="tree")
    # Force column slack so the capacity split is non-trivial.
    tree.insert_many([1.0], [2.0])
    with_capacity = tree.memory_bytes(include_capacity=True)
    live_only = tree.memory_bytes(include_capacity=False)
    slack_rows = tree.column_capacity - (len(dataset) + 1)
    assert slack_rows > 0, "capacity doubling should have left slack rows"
    assert with_capacity - live_only == slack_rows * 3 * 8, (
        "memory_bytes capacity/live split must equal the columnar slack exactly"
    )
    flat = tree.flat()
    with_keys = flat.nbytes(include_rank_keys=True)
    without_keys = flat.nbytes(include_rank_keys=False)
    key_bytes = sum(
        int(arr.nbytes)
        for arr in (
            flat._stab_lefts_key,
            flat._stab_rights_key,
            flat._sub_lefts_key,
            flat._sub_rights_key,
        )
    )
    assert with_keys - without_keys == key_bytes, (
        "nbytes rank-key split must equal the four key pools exactly"
    )


def run(config: ExperimentConfig) -> ExperimentResult:
    """Measure structure memory (MB at the configured scale) for every competitor."""
    _assert_accounting_invariants(config)
    cells = run_grid(config, NON_WEIGHTED_ALGORITHMS, weighted=False)
    result = ExperimentResult(
        experiment_id="table4",
        title="Memory usage [MB at configured scale] (non-weighted case)",
        columns=["algorithm", *config.datasets],
        paper_reference=PAPER_REFERENCE,
        notes=(
            "Paper reference is in GB at full cardinality; measured values are MB at "
            "config.dataset_size.  Expected shape: AIT uses the most memory (O(n log n) "
            "lists), AIT-V roughly an order of magnitude less (O(n))."
        ),
    )
    for algorithm in NON_WEIGHTED_ALGORITHMS:
        row = {"algorithm": algorithm}
        for cell in cells:
            if cell.algorithm == algorithm:
                row[cell.dataset] = cell.memory_bytes / 1e6
        result.add_row(**row)
    return result
