"""Table IV — memory usage of every index, non-weighted case."""

from __future__ import annotations

from .config import ExperimentConfig
from .grid import run_grid
from .harness import NON_WEIGHTED_ALGORITHMS
from .report import ExperimentResult

__all__ = ["PAPER_REFERENCE", "run"]

#: Table IV of the paper (GB, at full dataset scale).
PAPER_REFERENCE = [
    {"algorithm": "Interval tree", "book": 0.17, "btc": 0.22, "renfe": 2.26, "taxi": 6.27},
    {"algorithm": "HINT^m", "book": 0.10, "btc": 0.06, "renfe": 0.53, "taxi": 1.29},
    {"algorithm": "KDS", "book": 0.29, "btc": 0.32, "renfe": 4.84, "taxi": 13.34},
    {"algorithm": "AIT", "book": 0.30, "btc": 0.78, "renfe": 8.12, "taxi": 29.88},
    {"algorithm": "AIT-V", "book": 0.03, "btc": 0.05, "renfe": 0.66, "taxi": 1.73},
]


def run(config: ExperimentConfig) -> ExperimentResult:
    """Measure structure memory (MB at the configured scale) for every competitor."""
    cells = run_grid(config, NON_WEIGHTED_ALGORITHMS, weighted=False)
    result = ExperimentResult(
        experiment_id="table4",
        title="Memory usage [MB at configured scale] (non-weighted case)",
        columns=["algorithm", *config.datasets],
        paper_reference=PAPER_REFERENCE,
        notes=(
            "Paper reference is in GB at full cardinality; measured values are MB at "
            "config.dataset_size.  Expected shape: AIT uses the most memory (O(n log n) "
            "lists), AIT-V roughly an order of magnitude less (O(n))."
        ),
    )
    for algorithm in NON_WEIGHTED_ALGORITHMS:
        row = {"algorithm": algorithm}
        for cell in cells:
            if cell.algorithm == algorithm:
                row[cell.dataset] = cell.memory_bytes / 1e6
        result.add_row(**row)
    return result
