"""Gateway latency — micro-batched dispatch vs one-query-per-call under load.

Not a table from the paper: this experiment measures the serving property the
:class:`~repro.service.gateway.RequestGateway` exists for.  ``C`` concurrent
closed-loop clients each issue independent single queries against one
:class:`~repro.service.ShardedEngine` and we record every request's
end-to-end latency, comparing two dispatch modes:

* **scalar** — the naive baseline: each client calls the engine directly,
  one query per call.  The engine's write path makes unsynchronised sharing
  unsafe, so calls are serialised with a lock — exactly what a careful
  caller would do without a gateway;
* **gateway** — clients submit through a :class:`RequestGateway`, which
  coalesces concurrent requests into micro-batches (swept over the wait
  window ``max_wait_ms``) and dispatches them through the engine's
  vectorised ``*_many`` APIs.

At ``C = 1`` the gateway can only add its window to each request's latency —
that is the price of coalescing under light traffic.  As ``C`` grows the
scalar mode's per-call fixed cost serialises (p95 grows roughly linearly
with ``C``) while the gateway amortises it across the whole micro-batch, so
its p95 flattens.  ``scripts/bench_gateway.py`` runs the same measurement
standalone and emits ``BENCH_gateway.json``.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

import numpy as np

from ..service import RequestGateway, ShardedEngine
from .config import ExperimentConfig
from .harness import build_dataset, build_workload
from .report import ExperimentResult

__all__ = [
    "run",
    "measure_latency_profile",
    "measure_modes",
    "CLIENT_SWEEP",
    "WINDOW_SWEEP_MS",
    "ENGINE_SHARDS",
]

#: Concurrent closed-loop client counts measured by default.
CLIENT_SWEEP: tuple[int, ...] = (1, 8, 32)

#: Gateway coalescing windows (milliseconds) measured by default.
WINDOW_SWEEP_MS: tuple[float, ...] = (2.0,)

#: Shards behind the engine (kept fixed; shard scaling is service_throughput's job).
ENGINE_SHARDS = 2


def measure_latency_profile(
    issue: Callable[[tuple[float, float]], object],
    queries: np.ndarray,
    clients: int,
) -> dict:
    """Drive ``clients`` closed-loop threads through ``issue``; profile latency.

    ``queries`` is an ``(n, 2)`` array split contiguously across the
    clients; each client issues its slice sequentially, timing every call.
    Returns aggregate statistics over all per-request latencies:
    ``{"requests", "rps", "mean_ms", "p50_ms", "p95_ms", "p99_ms"}``.
    """
    clients = max(1, int(clients))
    slices = np.array_split(np.arange(queries.shape[0]), clients)
    latencies = np.zeros(queries.shape[0], dtype=np.float64)
    barrier = threading.Barrier(clients + 1)

    def worker(rows: np.ndarray) -> None:
        barrier.wait()
        for i in rows:
            query = (float(queries[i, 0]), float(queries[i, 1]))
            started = time.perf_counter()
            issue(query)
            latencies[i] = time.perf_counter() - started

    threads = [
        threading.Thread(target=worker, args=(rows,), daemon=True) for rows in slices
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    wall_start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start

    requests = int(queries.shape[0])
    return {
        "requests": requests,
        "rps": requests / wall if wall > 0 else float("inf"),
        "mean_ms": float(latencies.mean() * 1e3),
        "p50_ms": float(np.percentile(latencies, 50) * 1e3),
        "p95_ms": float(np.percentile(latencies, 95) * 1e3),
        "p99_ms": float(np.percentile(latencies, 99) * 1e3),
    }


def measure_modes(
    engine,
    queries: np.ndarray,
    clients: int,
    sample_size: int,
    windows_ms,
    max_batch_size: int = 128,
) -> list[tuple[str, str, float, dict]]:
    """Profile both dispatch modes at one client count; the shared drive loop.

    Returns ``(operation, mode, window_ms, profile)`` tuples — the scalar
    baseline (lock-serialised one-query-per-call, ``window_ms = 0``) for
    each of ``count`` / ``sample``, then a gateway measurement per wait
    window in ``windows_ms``.  Used by :func:`run` and by
    ``scripts/bench_gateway.py`` so the committed ``BENCH_gateway.json``
    measures exactly what the registered experiment measures.
    """
    lock = threading.Lock()

    def scalar_count(query):
        with lock:
            return engine.count_many([query])

    def scalar_sample(query):
        with lock:
            return engine.sample_many([query], sample_size, random_state=0)

    rows: list[tuple[str, str, float, dict]] = []
    for operation, issue in (("count", scalar_count), ("sample", scalar_sample)):
        rows.append(
            (operation, "scalar", 0.0, measure_latency_profile(issue, queries, clients))
        )
    for window_ms in windows_ms:
        with RequestGateway(
            engine, max_batch_size=max_batch_size, max_wait_ms=window_ms
        ) as gateway:

            def gateway_count(query):
                return gateway.count(query)

            def gateway_sample(query):
                return gateway.sample(query, sample_size)

            for operation, issue in (
                ("count", gateway_count),
                ("sample", gateway_sample),
            ):
                rows.append(
                    (
                        operation,
                        "gateway",
                        float(window_ms),
                        measure_latency_profile(issue, queries, clients),
                    )
                )
    return rows


def _tile_queries(workload, total: int) -> np.ndarray:
    """Repeat the workload until it covers ``total`` requests."""
    base = np.asarray(list(workload), dtype=np.float64)
    reps = -(-total // base.shape[0])
    return np.tile(base, (reps, 1))[:total]


def run(config: ExperimentConfig) -> ExperimentResult:
    """Measure request latency percentiles: gateway micro-batching vs scalar calls."""
    result = ExperimentResult(
        experiment_id="gateway_latency",
        title="Request latency under concurrent load: gateway vs scalar dispatch [ms]",
        columns=[
            "dataset",
            "operation",
            "mode",
            "clients",
            "window_ms",
            "requests",
            "rps",
            "p50_ms",
            "p95_ms",
            "p99_ms",
        ],
        notes=(
            "C closed-loop client threads issue single queries against one "
            f"ShardedEngine (K={ENGINE_SHARDS}).  scalar = lock-serialised "
            "one-query-per-call; gateway = RequestGateway micro-batching at "
            "the given wait window.  Latency is end-to-end per request, "
            "including queueing."
        ),
    )
    sample_size = min(config.sample_size, 100)
    per_point = max(config.query_count, 64)

    for dataset_name in config.datasets:
        dataset = build_dataset(config, dataset_name)
        workload = build_workload(config, dataset, dataset_name)
        queries = _tile_queries(workload, per_point)
        with ShardedEngine(dataset, num_shards=ENGINE_SHARDS) as engine:
            engine.refresh()
            for clients in CLIENT_SWEEP:
                for operation, mode, window_ms, profile in measure_modes(
                    engine, queries, clients, sample_size, WINDOW_SWEEP_MS
                ):
                    result.add_row(
                        dataset=dataset_name,
                        operation=operation,
                        mode=mode,
                        clients=clients,
                        window_ms=window_ms,
                        **profile,
                    )
    return result
