"""Table VII — amortized update time of the AIT (insertion, batch insertion, deletion)."""

from __future__ import annotations

import time

from ..core import AIT
from .config import ExperimentConfig
from .harness import build_dataset
from .report import ExperimentResult

__all__ = ["PAPER_REFERENCE", "run"]

#: Table VII of the paper (milliseconds per operation).
PAPER_REFERENCE = [
    {"operation": "Insertion", "book": 448.18, "btc": 894.44, "renfe": 2283.23, "taxi": 6312.70},
    {"operation": "Batch insertion", "book": 3.01, "btc": 2.14, "renfe": 5.25, "taxi": 10.43},
    {"operation": "Deletion", "book": 2.23, "btc": 3.24, "renfe": 31.58, "taxi": 90.38},
]


def run(config: ExperimentConfig) -> ExperimentResult:
    """Measure amortized per-operation update time of the AIT on every dataset."""
    result = ExperimentResult(
        experiment_id="table7",
        title="Amortized update time of AIT [millisec]",
        columns=["operation", *config.datasets],
        paper_reference=PAPER_REFERENCE,
        notes=(
            "Expected shape: one-by-one insertion is by far the most expensive path, "
            "batch (pooled) insertion reduces it by orders of magnitude, deletions are cheap."
        ),
    )
    insertion_row = {"operation": "Insertion"}
    batch_row = {"operation": "Batch insertion"}
    deletion_row = {"operation": "Deletion"}
    update_count = max(10, config.update_count)

    for dataset_name in config.datasets:
        full = build_dataset(config, dataset_name, size=config.dataset_size + update_count)
        base = full.subset(range(config.dataset_size))
        extra = [(float(full.lefts[i]), float(full.rights[i]))
                 for i in range(config.dataset_size, config.dataset_size + update_count)]

        # One-by-one insertion.  The trees pin the eager "tree" backend so
        # the measured cost is the paper's update path alone, not a lazy
        # node-tree materialisation amortised into the first operation.
        tree = AIT(base, build_backend="tree")
        start = time.perf_counter()
        for left, right in extra:
            tree.insert((left, right), immediate=True)
        insertion_row[dataset_name] = (time.perf_counter() - start) / update_count * 1e3

        # Batch (pooled) insertion.
        tree = AIT(base, build_backend="tree")
        start = time.perf_counter()
        for left, right in extra:
            tree.insert((left, right))
        tree.flush_pool()
        batch_row[dataset_name] = (time.perf_counter() - start) / update_count * 1e3

        # Deletion of the freshly inserted intervals.
        delete_ids = list(range(config.dataset_size, config.dataset_size + update_count))
        start = time.perf_counter()
        for interval_id in delete_ids:
            tree.delete(interval_id)
        deletion_row[dataset_name] = (time.perf_counter() - start) / update_count * 1e3

    result.add_row(**insertion_row)
    result.add_row(**batch_row)
    result.add_row(**deletion_row)
    return result
