"""Dataset × algorithm measurement grid shared by several experiments.

Tables III-VI, VIII and IX of the paper all report one number per (dataset,
algorithm) pair over the same workload; this module runs that grid once and
lets the individual experiment modules pick out the columns they need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .config import ExperimentConfig
from .harness import (
    QueryTimings,
    build_dataset,
    build_workload,
    make_adapters,
    measure_build,
    measure_query_timings,
)
from .memory import structure_memory_bytes

__all__ = ["GridCell", "run_grid"]


@dataclass(frozen=True, slots=True)
class GridCell:
    """All measurements for one (dataset, algorithm) pair."""

    dataset: str
    algorithm: str
    display_name: str
    build_seconds: float
    memory_bytes: int
    timings: QueryTimings


def run_grid(
    config: ExperimentConfig,
    algorithm_names: Sequence[str],
    weighted: bool = False,
    extent_fraction: float | None = None,
    sample_size: int | None = None,
) -> list[GridCell]:
    """Build every index on every dataset and measure build, memory and query times."""
    adapters = make_adapters(algorithm_names, weighted=weighted)
    sample_size = sample_size if sample_size is not None else config.sample_size
    cells: list[GridCell] = []
    for dataset_name in config.datasets:
        dataset = build_dataset(config, dataset_name, weighted=weighted)
        workload = build_workload(config, dataset, dataset_name, extent_fraction=extent_fraction)
        for adapter in adapters:
            index, build_seconds = measure_build(adapter, dataset)
            memory = adapter.memory(index) if adapter.memory else structure_memory_bytes(index)
            timings = measure_query_timings(adapter, index, workload, sample_size, seed=config.seed)
            cells.append(
                GridCell(dataset_name, adapter.name, adapter.display_name, build_seconds, memory, timings)
            )
    return cells


def cells_for(cells: Sequence[GridCell], algorithm: str) -> list[GridCell]:
    """The grid cells of one algorithm, in dataset order."""
    return [cell for cell in cells if cell.algorithm == algorithm]
