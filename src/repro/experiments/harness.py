"""Measurement harness shared by every experiment module.

The paper's evaluation splits query time into a *candidate computation* phase
(``q ∩ X`` for the search-based algorithms, the node-record set ``R`` for the
AIT family, the canonical cover for KDS) and a *sampling* phase.  The harness
mirrors that split: it times the candidate phase directly, times the full
end-to-end sampling call, and reports the difference as the sampling phase.

Algorithms are wrapped in small :class:`AlgorithmAdapter` objects so all
experiments can iterate over them uniformly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from ..baselines import HINT, KDS, IntervalTree, KDTreeIndex
from ..core import AIT, AITV, AWIT, IntervalDataset
from ..datasets import QueryWorkload, generate_paper_dataset, generate_queries
from ..sampling.rng import resolve_rng
from .config import ExperimentConfig

__all__ = [
    "AlgorithmAdapter",
    "QueryTimings",
    "NON_WEIGHTED_ALGORITHMS",
    "WEIGHTED_ALGORITHMS",
    "COUNTING_ALGORITHMS",
    "make_adapters",
    "build_dataset",
    "build_workload",
    "time_seconds",
    "measure_build",
    "measure_query_timings",
    "measure_counting",
]


@dataclass(frozen=True, slots=True)
class AlgorithmAdapter:
    """Uniform wrapper around one algorithm for the experiment harness."""

    name: str
    display_name: str
    build: Callable[[IntervalDataset], Any]
    candidate: Callable[[Any, tuple[float, float]], Any]
    sample: Callable[[Any, tuple[float, float], int, np.random.Generator], np.ndarray]
    #: Optional memory probe overriding the default ``memory_bytes()`` walk —
    #: adapters whose build is deliberately treeless use it to avoid
    #: materialising structure just to be measured.
    memory: Callable[[Any], int] | None = None


@dataclass(frozen=True, slots=True)
class QueryTimings:
    """Average per-query timings in microseconds."""

    candidate_us: float
    sampling_us: float

    @property
    def total_us(self) -> float:
        """Average end-to-end query time (candidate + sampling)."""
        return self.candidate_us + self.sampling_us


# ---------------------------------------------------------------------- #
# algorithm registry
# ---------------------------------------------------------------------- #
def _adapter_interval_tree(weighted: bool) -> AlgorithmAdapter:
    return AlgorithmAdapter(
        name="interval_tree",
        display_name="Interval tree",
        build=lambda ds: IntervalTree(ds, weighted=weighted),
        candidate=lambda index, q: index.report(q),
        sample=lambda index, q, s, rng: index.sample(q, s, random_state=rng),
    )


def _adapter_hint(weighted: bool) -> AlgorithmAdapter:
    return AlgorithmAdapter(
        name="hint",
        display_name="HINT^m",
        build=lambda ds: HINT(ds, weighted=weighted),
        candidate=lambda index, q: index.report(q),
        sample=lambda index, q, s, rng: index.sample(q, s, random_state=rng),
    )


def _adapter_kds(weighted: bool) -> AlgorithmAdapter:
    return AlgorithmAdapter(
        name="kds",
        display_name="KDS",
        build=lambda ds: KDS(ds, weighted=weighted),
        candidate=lambda index, q: index.canonical_cover(q),
        sample=lambda index, q, s, rng: index.sample(q, s, random_state=rng),
    )


def _adapter_ait() -> AlgorithmAdapter:
    # Paper-faithful measurement: the AIT rows of Tables III-VII time the
    # eager node-tree build, so the lazy columnar backend is pinned off here
    # (the treeless route gets its own "ait_columnar" adapter below).
    return AlgorithmAdapter(
        name="ait",
        display_name="AIT",
        build=lambda ds: AIT(ds, build_backend="tree"),
        candidate=lambda index, q: index.collect_records(q),
        sample=lambda index, q, s, rng: index.sample(q, s, random_state=rng),
    )


def _adapter_ait_columnar() -> AlgorithmAdapter:
    # The treeless columnar build route: constructing the flat engine
    # directly from the endpoint columns is the whole index build, and the
    # flat scalar fast paths answer the query phases without ever
    # materialising a Python node tree.
    def build(ds: IntervalDataset):
        index = AIT(ds, build_backend="columnar")
        index.flat()
        return index

    return AlgorithmAdapter(
        name="ait_columnar",
        display_name="AIT (columnar build)",
        build=build,
        candidate=lambda index, q: index.flat().collect_ranges(q),
        sample=lambda index, q, s, rng: index.flat().sample(q, s, random_state=rng),
        # Honest treeless footprint: columns + flat snapshot, without forcing
        # the node materialisation the default memory_bytes() would trigger.
        memory=lambda index: index.memory_bytes(materialise=False) + index.flat().nbytes(),
    )


def _adapter_ait_v() -> AlgorithmAdapter:
    return AlgorithmAdapter(
        name="ait_v",
        display_name="AIT-V",
        build=lambda ds: AITV(ds, build_backend="tree"),
        candidate=lambda index, q: index.virtual_tree.collect_records(q),
        sample=lambda index, q, s, rng: index.sample(q, s, random_state=rng),
    )


def _adapter_awit() -> AlgorithmAdapter:
    return AlgorithmAdapter(
        name="awit",
        display_name="AWIT",
        build=lambda ds: AWIT(ds, build_backend="tree"),
        candidate=lambda index, q: index.collect_records(q),
        sample=lambda index, q, s, rng: index.sample(q, s, random_state=rng),
    )


def _adapter_kdtree() -> AlgorithmAdapter:
    return AlgorithmAdapter(
        name="kdtree",
        display_name="kd-tree",
        build=KDTreeIndex,
        candidate=lambda index, q: index.canonical_cover(q),
        sample=lambda index, q, s, rng: np.empty(0, dtype=np.int64),
    )


#: Algorithms evaluated in the non-weighted experiments (Section V-B order).
NON_WEIGHTED_ALGORITHMS: tuple[str, ...] = ("interval_tree", "hint", "kds", "ait", "ait_v")

#: Algorithms evaluated in the weighted experiments (Section V-C order).
WEIGHTED_ALGORITHMS: tuple[str, ...] = ("interval_tree", "hint", "kds", "awit")

#: Algorithms evaluated in the range-counting experiment (Table X order).
COUNTING_ALGORITHMS: tuple[str, ...] = ("ait", "hint", "kdtree")


def make_adapters(
    names: Sequence[str] = NON_WEIGHTED_ALGORITHMS, weighted: bool = False
) -> list[AlgorithmAdapter]:
    """Instantiate adapters for the requested algorithm names."""
    factory = {
        "interval_tree": lambda: _adapter_interval_tree(weighted),
        "hint": lambda: _adapter_hint(weighted),
        "kds": lambda: _adapter_kds(weighted),
        "ait": _adapter_ait,
        "ait_columnar": _adapter_ait_columnar,
        "ait_v": _adapter_ait_v,
        "awit": _adapter_awit,
        "kdtree": _adapter_kdtree,
    }
    adapters = []
    for name in names:
        if name not in factory:
            raise KeyError(f"unknown algorithm {name!r}; expected one of {sorted(factory)}")
        adapters.append(factory[name]())
    return adapters


# ---------------------------------------------------------------------- #
# dataset / workload construction
# ---------------------------------------------------------------------- #
def build_dataset(
    config: ExperimentConfig, dataset_name: str, weighted: bool = False, size: int | None = None
) -> IntervalDataset:
    """Generate the synthetic analogue of one paper dataset under ``config``."""
    return generate_paper_dataset(
        dataset_name,
        n=size if size is not None else config.dataset_size,
        weighted=weighted,
        random_state=config.dataset_seed(dataset_name),
    )


def build_workload(
    config: ExperimentConfig,
    dataset: IntervalDataset,
    dataset_name: str,
    extent_fraction: float | None = None,
    count: int | None = None,
) -> QueryWorkload:
    """Generate the query workload for one dataset under ``config``."""
    return generate_queries(
        dataset,
        count=count if count is not None else config.query_count,
        extent_fraction=extent_fraction if extent_fraction is not None else config.extent_fraction,
        random_state=config.query_seed(dataset_name),
    )


# ---------------------------------------------------------------------- #
# timing
# ---------------------------------------------------------------------- #
def time_seconds(fn: Callable[[], Any]) -> tuple[Any, float]:
    """Run ``fn`` once and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    return result, elapsed


def measure_build(adapter: AlgorithmAdapter, dataset: IntervalDataset) -> tuple[Any, float]:
    """Build the adapter's index over ``dataset`` and return ``(index, seconds)``."""
    return time_seconds(lambda: adapter.build(dataset))


def measure_query_timings(
    adapter: AlgorithmAdapter,
    index: Any,
    workload: QueryWorkload | Sequence[tuple[float, float]],
    sample_size: int,
    seed: int = 0,
) -> QueryTimings:
    """Average candidate / sampling time per query, in microseconds.

    The candidate phase is timed directly; the sampling phase is the
    end-to-end sampling call minus the candidate time (the sampling call
    internally recomputes the candidate, matching how the paper reports the
    two phases separately while their sum is the total query time).
    """
    rng = resolve_rng(seed)
    queries = list(workload)
    if queries:
        # One untimed warm-up query so cold caches do not skew the first point
        # of a sweep (the paper's workloads are long enough to amortise this).
        adapter.candidate(index, queries[0])
        adapter.sample(index, queries[0], sample_size, rng)
    candidate_total = 0.0
    end_to_end_total = 0.0
    for query in queries:
        start = time.perf_counter()
        adapter.candidate(index, query)
        candidate_total += time.perf_counter() - start

        start = time.perf_counter()
        adapter.sample(index, query, sample_size, rng)
        end_to_end_total += time.perf_counter() - start

    query_count = max(1, len(queries))
    candidate_us = candidate_total / query_count * 1e6
    sampling_us = max(end_to_end_total - candidate_total, 0.0) / query_count * 1e6
    return QueryTimings(candidate_us, sampling_us)


def measure_counting(
    index: Any, workload: QueryWorkload | Sequence[tuple[float, float]]
) -> float:
    """Average range-counting time per query in microseconds (Table X)."""
    queries = list(workload)
    start = time.perf_counter()
    for query in queries:
        index.count(query)
    elapsed = time.perf_counter() - start
    return elapsed / max(1, len(queries)) * 1e6
