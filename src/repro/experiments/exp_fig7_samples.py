"""Fig. 7 — running time vs sample size ``s``, non-weighted case."""

from __future__ import annotations

from .config import ExperimentConfig
from .harness import (
    NON_WEIGHTED_ALGORITHMS,
    build_dataset,
    build_workload,
    make_adapters,
    measure_build,
    measure_query_timings,
)
from .report import ExperimentResult

__all__ = ["PAPER_REFERENCE", "run"]

PAPER_REFERENCE = [
    {"series": "Interval tree", "trend": "flat in s (dominated by computing q ∩ X)"},
    {"series": "HINT^m", "trend": "flat in s (dominated by computing q ∩ X)"},
    {"series": "KDS", "trend": "linear in s; can exceed the search-based algorithms for large s"},
    {"series": "AIT", "trend": "linear in s; fastest overall"},
    {"series": "AIT-V", "trend": "linear in s; close to AIT"},
]


def run(config: ExperimentConfig) -> ExperimentResult:
    """Measure total query time for every competitor across the sample-size sweep."""
    adapters = make_adapters(NON_WEIGHTED_ALGORITHMS, weighted=False)
    result = ExperimentResult(
        experiment_id="fig7",
        title="Running time [microsec] vs sample size (non-weighted case)",
        columns=["dataset", "sample_size", *NON_WEIGHTED_ALGORITHMS],
        paper_reference=PAPER_REFERENCE,
        notes=(
            "Expected shape: AIT family and KDS grow linearly with s; search-based "
            "algorithms are insensitive to s but start far higher."
        ),
    )
    for dataset_name in config.datasets:
        dataset = build_dataset(config, dataset_name)
        workload = build_workload(config, dataset, dataset_name)
        indexes = {adapter.name: measure_build(adapter, dataset)[0] for adapter in adapters}
        for sample_size in config.sample_size_sweep:
            row = {"dataset": dataset_name, "sample_size": sample_size}
            for adapter in adapters:
                timings = measure_query_timings(
                    adapter, indexes[adapter.name], workload, sample_size, seed=config.seed
                )
                row[adapter.name] = timings.total_us
            result.add_row(**row)
    return result
