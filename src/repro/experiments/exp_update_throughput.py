"""Update throughput — write-path scaling under mixed read/write traffic.

Companion to Table VII (``table7``): where that experiment reproduces the
paper's amortized *per-operation* update latencies (one-by-one vs pooled
insertion, deletion), this one tracks the reproduction's engineering write
path end-to-end.  Each measured round pushes a block of writes through the
:class:`~repro.service.ShardedEngine` bulk APIs (``insert_many`` /
``delete_many`` — balanced, so the dataset size stays steady) and then
answers one read batch, which forces the delta-log replay plus the
incremental snapshot refresh at the batch boundary.  Sweeping the write
ratio and the shard count shows what sustained churn costs the serving
layer: how quickly read throughput degrades as writes are mixed in, and how
update isolation (only the owning shards re-snapshot) pays off with K.

``scripts/bench_updates.py`` runs the same measurement standalone — plus
bulk-vs-scalar insert microbenchmarks and a refresh-path check — and emits
``BENCH_updates.json`` so successive PRs can compare write-path curves.
"""

from __future__ import annotations

import time

import numpy as np

from ..service import ShardedEngine
from .config import ExperimentConfig
from .harness import build_dataset, build_workload
from .report import ExperimentResult

__all__ = ["run", "WRITE_RATIOS", "SHARD_SWEEP", "measure_mixed_round"]

#: Fraction of each round's operations that are writes (half inserts, half deletes).
WRITE_RATIOS: tuple[float, ...] = (0.0, 0.05, 0.2, 0.5)

#: Shard counts measured by default.
SHARD_SWEEP: tuple[int, ...] = (1, 2, 4)

#: Measured rounds per (shards, write_ratio) point.
ROUNDS = 3


def measure_mixed_round(
    engine: ShardedEngine,
    query_array: np.ndarray,
    write_count: int,
    rng: np.random.Generator,
    domain: tuple[float, float],
) -> tuple[float, int]:
    """One mixed round: ``write_count`` writes, then one read batch.

    Writes are balanced — ``write_count // 2`` bulk inserts and as many bulk
    deletes of previously inserted ids — so the engine's cardinality stays
    steady across rounds.  Returns ``(elapsed_seconds, writes_applied)``.
    """
    half = write_count // 2
    start = time.perf_counter()
    writes_applied = 0
    if half:
        lo, hi = domain
        lefts = rng.uniform(lo, hi, half)
        rights = lefts + rng.exponential((hi - lo) * 0.02, half)
        new_ids = engine.insert_many(lefts, rights)
        engine.delete_many(new_ids[rng.permutation(half)])
        writes_applied = 2 * half
    engine.count_many(query_array)
    return time.perf_counter() - start, writes_applied


def run(config: ExperimentConfig) -> ExperimentResult:
    """Measure mixed read/write throughput across write ratios and shard counts."""
    result = ExperimentResult(
        experiment_id="update_throughput",
        title="Mixed read/write throughput of the sharded write path [ops/sec]",
        columns=[
            "dataset",
            "shards",
            "write_ratio",
            "reads_per_sec",
            "writes_per_sec",
            "ops_per_sec",
        ],
        notes=(
            "Each round applies write_ratio * query_count balanced bulk writes "
            "(insert_many + delete_many) and then one count_many batch, which "
            "pays the delta-log replay and the incremental snapshot refresh. "
            "Expect reads/sec to fall as the write ratio grows; the write-path "
            "overhaul keeps the fall graceful (bulk replay, dirty-node patching) "
            "instead of cliff-shaped (full per-batch re-flattens)."
        ),
    )
    for dataset_name in config.datasets:
        dataset = build_dataset(config, dataset_name)
        workload = build_workload(config, dataset, dataset_name)
        query_array = np.asarray(list(workload), dtype=np.float64)
        query_count = int(query_array.shape[0])
        domain = dataset.domain()

        for shards in SHARD_SWEEP:
            engine = ShardedEngine(dataset, num_shards=shards)
            engine.refresh()
            rng = np.random.default_rng(config.dataset_seed(dataset_name) + shards)
            for write_ratio in WRITE_RATIOS:
                write_count = int(round(write_ratio * query_count))
                elapsed = 0.0
                writes = 0
                for _ in range(ROUNDS):
                    round_elapsed, round_writes = measure_mixed_round(
                        engine, query_array, write_count, rng, domain
                    )
                    elapsed += round_elapsed
                    writes += round_writes
                reads = ROUNDS * query_count
                result.add_row(
                    dataset=dataset_name,
                    shards=shards,
                    write_ratio=write_ratio,
                    reads_per_sec=reads / elapsed if elapsed > 0 else float("inf"),
                    writes_per_sec=writes / elapsed if elapsed > 0 and writes else 0.0,
                    ops_per_sec=(reads + writes) / elapsed if elapsed > 0 else float("inf"),
                )
            engine.close()
    return result
