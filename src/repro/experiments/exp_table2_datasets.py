"""Table II — dataset statistics.

The synthetic generators are calibrated to the published statistics; this
experiment regenerates each dataset at the configured scale and reports the
measured statistics next to the published ones, confirming the analogues
preserve the length distribution and domain extent.
"""

from __future__ import annotations

from ..datasets import PAPER_DATASETS, compute_statistics
from .config import ExperimentConfig
from .harness import build_dataset
from .report import ExperimentResult

__all__ = ["PAPER_REFERENCE", "run"]

#: Table II of the paper.
PAPER_REFERENCE = [
    {"dataset": name, "cardinality": spec.cardinality, "domain_size": spec.domain_size,
     "min_length": spec.min_length, "median_length": spec.median_length, "max_length": spec.max_length}
    for name, spec in PAPER_DATASETS.items()
]


def run(config: ExperimentConfig) -> ExperimentResult:
    """Generate each dataset analogue and report its Table II statistics."""
    result = ExperimentResult(
        experiment_id="table2",
        title="Dataset statistics (synthetic analogues vs Table II)",
        columns=["dataset", "cardinality", "domain_size", "min_length", "median_length", "max_length"],
        paper_reference=PAPER_REFERENCE,
        notes=(
            "Cardinality is scaled down by config.dataset_size; domain size and the "
            "length distribution (min / median / max) track the published values."
        ),
    )
    for dataset_name in config.datasets:
        dataset = build_dataset(config, dataset_name)
        stats = compute_statistics(dataset)
        result.add_row(
            dataset=dataset_name,
            cardinality=stats.cardinality,
            domain_size=stats.domain_size,
            min_length=stats.min_length,
            median_length=stats.median_length,
            max_length=stats.max_length,
        )
    return result
