"""Table I — complexity comparison, checked empirically.

Table I of the paper is analytic; this experiment verifies its practical
consequence on one dataset: as ``n`` grows, the total query time of the
search-based competitors grows roughly linearly while the AIT family stays
flat, and the AIT's candidate time grows at most polylogarithmically.
"""

from __future__ import annotations

from .config import ExperimentConfig
from .harness import (
    build_dataset,
    build_workload,
    make_adapters,
    measure_build,
    measure_query_timings,
)
from .report import ExperimentResult

__all__ = ["PAPER_REFERENCE", "run"]

#: Table I of the paper (asymptotic bounds; * marks expected bounds).
PAPER_REFERENCE = [
    {"algorithm": "HINT^m", "time": "Ω(|q ∩ X|)", "space": "O(n)", "weighted": "yes"},
    {"algorithm": "KDS", "time": "O(sqrt n + s)*", "space": "O(n)", "weighted": "no"},
    {"algorithm": "KDS (weighted)", "time": "O(sqrt n + s log n)*", "space": "O(n)", "weighted": "yes"},
    {"algorithm": "AIT", "time": "O(log^2 n + s)", "space": "O(n log n)", "weighted": "no"},
    {"algorithm": "AIT-V", "time": "O(log^2 n + s)*", "space": "O(n)", "weighted": "no"},
    {"algorithm": "AWIT", "time": "O(log^2 n + s log n)", "space": "O(n log n)", "weighted": "yes"},
]

#: Algorithms whose growth rate is checked.
_CHECKED = ("interval_tree", "hint", "kds", "ait", "ait_v")


def run(config: ExperimentConfig) -> ExperimentResult:
    """Measure total query time at the smallest and largest configured sizes.

    The ``growth_x`` column reports ``time(n_max) / time(n_min)``; per Table I
    the search-based algorithms should grow roughly with ``n_max / n_min``
    while the AIT family's ratio stays close to 1.
    """
    adapters = make_adapters(_CHECKED, weighted=False)
    dataset_name = config.datasets[0]
    fractions = (config.dataset_size_fractions[0], config.dataset_size_fractions[-1])
    sizes = [max(1_000, int(config.dataset_size * fraction)) for fraction in fractions]

    measured: dict[str, list[float]] = {name: [] for name in _CHECKED}
    for size in sizes:
        dataset = build_dataset(config, dataset_name, size=size)
        workload = build_workload(config, dataset, dataset_name)
        for adapter in adapters:
            index, _ = measure_build(adapter, dataset)
            timings = measure_query_timings(
                adapter, index, workload, config.sample_size, seed=config.seed
            )
            measured[adapter.name].append(timings.total_us)

    result = ExperimentResult(
        experiment_id="table1",
        title="Complexity comparison (empirical growth check on one dataset)",
        columns=["algorithm", "time_small_us", "time_large_us", "growth_x", "size_growth_x"],
        paper_reference=PAPER_REFERENCE,
        notes=(
            "Expected shape: growth_x of the search-based algorithms approaches "
            "size_growth_x; growth_x of AIT / AIT-V stays near 1."
        ),
    )
    size_growth = sizes[1] / sizes[0]
    for name in _CHECKED:
        small, large = measured[name]
        result.add_row(
            algorithm=name,
            time_small_us=small,
            time_large_us=large,
            growth_x=large / small if small > 0 else float("inf"),
            size_growth_x=size_growth,
        )
    return result
