"""Command-line front end: ``repro-experiments`` / ``python -m repro.experiments``.

Examples
--------
List the available experiments::

    repro-experiments --list

Run one experiment at the default (laptop) scale::

    repro-experiments table5

Run everything at the quick smoke scale and dump CSVs::

    repro-experiments all --preset smoke --csv-dir results/
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .config import ExperimentConfig
from .registry import list_experiments, run_all, run_experiment

__all__ = ["main", "build_parser"]

_PRESETS = {
    "default": ExperimentConfig.default,
    "smoke": ExperimentConfig.smoke,
    "paper": ExperimentConfig.paper_scale,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of 'Independent Range Sampling on Interval Data'.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default=None,
        help="experiment id (e.g. table5, fig6) or 'all'; omit with --list to just list them",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    parser.add_argument("--preset", choices=sorted(_PRESETS), default="default", help="workload scale preset")
    parser.add_argument("--dataset-size", type=int, default=None, help="override the per-dataset cardinality")
    parser.add_argument("--queries", type=int, default=None, help="override the number of queries")
    parser.add_argument("--samples", type=int, default=None, help="override the sample size s")
    parser.add_argument("--seed", type=int, default=None, help="override the root random seed")
    parser.add_argument(
        "--datasets", type=str, default=None, help="comma-separated dataset names (book,btc,renfe,taxi)"
    )
    parser.add_argument("--csv-dir", type=str, default=None, help="directory to write per-experiment CSV files")
    return parser


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    config = _PRESETS[args.preset]()
    overrides = {}
    if args.dataset_size is not None:
        overrides["dataset_size"] = args.dataset_size
    if args.queries is not None:
        overrides["query_count"] = args.queries
    if args.samples is not None:
        overrides["sample_size"] = args.samples
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.datasets is not None:
        overrides["datasets"] = tuple(name.strip() for name in args.datasets.split(",") if name.strip())
    return config.with_overrides(**overrides) if overrides else config


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list or args.experiment is None:
        for experiment_id in list_experiments():
            print(experiment_id)
        return 0

    config = _config_from_args(args)
    if args.experiment.lower() == "all":
        results = run_all(config)
    else:
        results = [run_experiment(args.experiment, config)]

    csv_dir = Path(args.csv_dir) if args.csv_dir else None
    if csv_dir is not None:
        csv_dir.mkdir(parents=True, exist_ok=True)

    for result in results:
        print(result.to_text())
        print()
        if csv_dir is not None:
            result.to_csv(csv_dir / f"{result.experiment_id}.csv")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
