"""Serving SLO — p99 latency and shed rate under open-loop overload, plus drain.

Not a table from the paper: this experiment measures the resilience
properties the :class:`~repro.service.server.HttpFrontend` exists for.  The
other serving experiments drive the engine *closed-loop* (each client waits
for its previous answer), which can never overload the server — offered load
self-regulates to capacity.  Real traffic does not wait: an **open-loop**
generator fires requests on a fixed arrival schedule regardless of how the
server is doing, which is the only way to observe saturation behaviour.

Three segments:

* **calibrate** — a short closed-loop burst estimates the server's service
  capacity (requests/second at 100% utilisation) on this machine;
* **load** — open-loop sweeps at fixed multiples of that capacity (past
  saturation by construction).  For each offered load we record the shed
  rate and client-side latency percentiles.  The admission controller must
  convert the excess into fast, explicit 429 responses — the hard gate is
  that *every* request gets an explicit HTTP answer (no hangs, no resets)
  and every non-2xx answer is an expected overload/deadline status;
* **drain** — concurrent writers insert through the HTTP front end while a
  shard worker is SIGKILLed mid-service and the server is then gracefully
  closed.  The hard gate is exactly once durability: every acknowledged
  write survives into a recovered engine, and post-close requests are
  refused rather than silently dropped.

``scripts/bench_serving.py`` runs the same measurement standalone and emits
``BENCH_serving.json``; ``scripts/check_bench.py`` gates its hard
invariants (``serving_shed_429``, ``serving_drain_no_loss``) at 1.0.
"""

from __future__ import annotations

import asyncio
import shutil
import tempfile
import threading
import time
from typing import Sequence

import numpy as np

from ..core.errors import GatewayClosedError
from ..service import (
    AdmissionController,
    HttpFrontend,
    ProcessExecutor,
    RequestGateway,
    ShardedEngine,
    http_request,
    http_request_async,
)
from .config import ExperimentConfig
from .harness import build_dataset, build_workload
from .report import ExperimentResult

__all__ = [
    "run",
    "calibrate_capacity",
    "measure_offered_load",
    "measure_drain",
    "serve_frontend",
    "OFFERED_MULTIPLIERS",
    "ENGINE_SHARDS",
    "MAX_PENDING",
]

#: Offered-load multiples of calibrated capacity (all past saturation).
OFFERED_MULTIPLIERS: tuple[float, ...] = (1.5, 3.0)

#: Shards behind the engine (kept fixed; shard scaling is service_throughput's job).
ENGINE_SHARDS = 2

#: Admission-controller pending cap used by the experiment server.  Small on
#: purpose: saturation should surface as fast 429s, not as a deep queue.
MAX_PENDING = 32

#: Statuses an overloaded-but-healthy server may legitimately answer with.
_EXPECTED_STATUSES = frozenset({200, 429, 503, 504})

#: Client-side socket timeout headroom over the request deadline (seconds).
_CLIENT_TIMEOUT_SLACK_S = 10.0


def _percentile_ms(latencies: Sequence[float], q: float) -> float:
    if not latencies:
        return 0.0
    return float(np.percentile(np.asarray(latencies, dtype=np.float64), q) * 1e3)


def calibrate_capacity(
    host: str,
    port: int,
    query: tuple[float, float],
    sample_size: int,
    *,
    clients: int = 8,
    requests_per_client: int = 40,
    deadline_ms: float = 30_000.0,
) -> float:
    """Closed-loop capacity estimate: achieved requests/second at saturation.

    ``clients`` threads each fire ``requests_per_client`` back-to-back
    ``/sample`` requests; the aggregate rate approximates the service
    capacity that the open-loop sweep then deliberately exceeds.
    """
    body = {"query": list(query), "sample_size": sample_size, "deadline_ms": deadline_ms}
    barrier = threading.Barrier(clients + 1)

    def worker() -> None:
        barrier.wait()
        for _ in range(requests_per_client):
            status, _, _ = http_request(host, port, "POST", "/sample", body)
            assert status == 200, f"calibration request failed with {status}"

    threads = [threading.Thread(target=worker, daemon=True) for _ in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    total = clients * requests_per_client
    return total / wall if wall > 0 else float("inf")


def measure_offered_load(
    host: str,
    port: int,
    queries: np.ndarray,
    offered_rps: float,
    duration_s: float,
    sample_size: int,
    *,
    deadline_ms: float = 2_000.0,
    max_connections: int = 256,
) -> dict:
    """Open-loop load segment: fire at ``offered_rps`` regardless of replies.

    Arrivals follow a fixed schedule (one request every ``1/offered_rps``
    seconds); each request runs as an independent task so a slow server
    cannot slow the generator down — the defining property of open-loop
    load.  ``max_connections`` bounds concurrent sockets (file descriptors),
    not the arrival schedule.  Returns one result row::

        {"offered_rps", "duration_s", "sent", "ok", "shed", "deadline",
         "unavailable", "other", "transport_errors", "shed_rate",
         "p50_ms", "p99_ms", "all_shed_429"}

    ``all_shed_429`` is the hard gate: True iff every request received an
    explicit HTTP response and every non-2xx response carried an expected
    overload/deadline status (429/503/504) — overload must never surface as
    a hang, a reset, or a surprise status.
    """
    total = max(1, int(offered_rps * duration_s))
    interval = 1.0 / offered_rps
    timeout = deadline_ms / 1e3 + _CLIENT_TIMEOUT_SLACK_S
    statuses: list[int] = []
    ok_latencies: list[float] = []
    transport_errors = 0

    async def one(query: tuple[float, float]) -> None:
        nonlocal transport_errors
        body = {
            "query": list(query),
            "sample_size": sample_size,
            "deadline_ms": deadline_ms,
        }
        started = time.perf_counter()
        try:
            status, _, _ = await http_request_async(
                host, port, "POST", "/sample", body, timeout=timeout
            )
        except (ConnectionError, OSError, TimeoutError, asyncio.TimeoutError):
            transport_errors += 1
            return
        if status == 200:
            ok_latencies.append(time.perf_counter() - started)
        statuses.append(status)

    async def generator() -> None:
        semaphore = asyncio.Semaphore(max_connections)

        async def bounded(query: tuple[float, float]) -> None:
            async with semaphore:
                await one(query)

        tasks = []
        start = time.perf_counter()
        for i in range(total):
            delay = start + i * interval - time.perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
            row = queries[i % queries.shape[0]]
            tasks.append(asyncio.ensure_future(bounded((float(row[0]), float(row[1])))))
        await asyncio.gather(*tasks)

    asyncio.run(generator())

    ok = statuses.count(200)
    shed = statuses.count(429)
    deadline = statuses.count(504)
    unavailable = statuses.count(503)
    other = len(statuses) - ok - shed - deadline - unavailable
    return {
        "offered_rps": round(float(offered_rps), 1),
        "duration_s": float(duration_s),
        "sent": total,
        "ok": ok,
        "shed": shed,
        "deadline": deadline,
        "unavailable": unavailable,
        "other": other,
        "transport_errors": transport_errors,
        "shed_rate": round(shed / total, 4),
        "p50_ms": round(_percentile_ms(ok_latencies, 50), 3),
        "p99_ms": round(_percentile_ms(ok_latencies, 99), 3),
        "all_shed_429": bool(
            transport_errors == 0
            and other == 0
            and len(statuses) == total
            and all(status in _EXPECTED_STATUSES for status in statuses)
        ),
    }


def measure_drain(
    dataset,
    directory: str,
    *,
    writers: int = 3,
    min_acks: int = 8,
    kill_worker: bool = True,
    deadline_ms: float = 30_000.0,
) -> dict:
    """Drain-under-fire segment: acked writes must survive a graceful close.

    Seeds ``directory`` with a snapshot, serves it through a process
    executor, and fires ``writers`` concurrent HTTP writer threads plus one
    monotone reader.  Once every writer has ``min_acks`` acknowledgements a
    shard worker is SIGKILLed mid-service (``kill_worker=True``); after
    ``2 * min_acks`` the front end is gracefully closed under fire.  The
    engine is then recovered serially and checked: exactly the acknowledged
    writes survive (``no_acked_loss``) and post-close requests are refused
    (``post_close_rejected``).
    """
    with ShardedEngine(dataset, num_shards=4) as seed_engine:
        seed_engine.save_snapshot(directory)

    executor = ProcessExecutor(max_workers=2)
    engine = ShardedEngine.open(directory, executor=executor)
    gateway = RequestGateway(engine, max_wait_ms=1.0)
    frontend = HttpFrontend(gateway, max_deadline_ms=deadline_ms)
    frontend.start_in_thread()
    host, port = frontend.address

    acked: list[list[int]] = [[] for _ in range(writers)]
    reads_monotone = True
    lock = threading.Lock()

    def writer(slot: int) -> None:
        rng = np.random.default_rng(5000 + slot)
        for _ in range(100_000):
            left = float(rng.uniform(0.0, 900.0))
            body = {"interval": [left, left + 3.0], "deadline_ms": deadline_ms}
            try:
                status, _, payload = http_request(host, port, "POST", "/insert", body)
            except (ConnectionError, OSError):
                return
            if status != 200:
                return
            acked[slot].append(int(payload["result"]))

    def reader() -> None:
        nonlocal reads_monotone
        last = 0
        body = {"query": [-1e9, 1e9], "deadline_ms": deadline_ms}
        for _ in range(100_000):
            try:
                status, _, payload = http_request(host, port, "POST", "/count", body)
            except (ConnectionError, OSError):
                return
            if status != 200:
                continue
            count = int(payload["result"])
            with lock:
                if count < last:
                    reads_monotone = False
                last = count

    def controller() -> None:
        while not all(len(ids) >= min_acks for ids in acked):
            time.sleep(0.002)
        if kill_worker:
            executor.kill_worker(0)
        while not all(len(ids) >= 2 * min_acks for ids in acked):
            time.sleep(0.002)
        frontend.close()

    threads = [
        threading.Thread(target=writer, args=(slot,), daemon=True)
        for slot in range(writers)
    ]
    threads.append(threading.Thread(target=reader, daemon=True))
    threads.append(threading.Thread(target=controller, daemon=True))
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        post_close_rejected = False
        try:
            status, _, _ = http_request(
                host, port, "POST", "/count", {"query": [0.0, 1.0]}, timeout=5.0
            )
            post_close_rejected = status in (503, 429)
        except (ConnectionError, OSError):
            post_close_rejected = True
        try:
            gateway.submit("insert", (1.0, 2.0))
        except GatewayClosedError:
            pass
        else:
            post_close_rejected = False
    finally:
        engine.close()
        executor.shutdown()

    flat = [gid for ids in acked for gid in ids]
    unique = len(flat) == len(set(flat))
    with ShardedEngine.open(directory) as recovered:
        size_ok = recovered.size == len(dataset) + len(flat)
        surviving = set(int(g) for g in recovered.report_many([(-1e9, 1e9)])[0])
        all_present = set(flat) <= surviving

    return {
        "writers": writers,
        "writes_acked": len(flat),
        "worker_killed": bool(kill_worker),
        "reads_monotone": bool(reads_monotone),
        "no_acked_loss": bool(unique and size_ok and all_present),
        "post_close_rejected": bool(post_close_rejected),
    }


def serve_frontend(engine, max_pending: int, deadline_ms: float) -> HttpFrontend:
    """Stand the serving stack up over ``engine``; returns a started front end.

    Shared with ``scripts/bench_serving.py`` so the committed baseline
    serves through exactly the stack the registered experiment measures.
    """
    gateway = RequestGateway(engine, max_wait_ms=1.0)
    frontend = HttpFrontend(
        gateway,
        admission=AdmissionController(max_pending=max_pending, retry_after_s=0.1),
        default_deadline_ms=deadline_ms,
        max_deadline_ms=max(deadline_ms, 30_000.0),
    )
    frontend.start_in_thread()
    return frontend


def run(config: ExperimentConfig) -> ExperimentResult:
    """Measure p99 latency and shed rate past saturation, plus drain safety."""
    result = ExperimentResult(
        experiment_id="serving_slo",
        title="Serving SLO: shed rate and p99 under open-loop overload, drain safety",
        columns=[
            "segment",
            "offered_rps",
            "sent",
            "ok",
            "shed",
            "shed_rate",
            "p50_ms",
            "p99_ms",
            "all_shed_429",
            "writes_acked",
            "no_acked_loss",
            "post_close_rejected",
        ],
        notes=(
            "An open-loop generator fires /sample requests at fixed multiples "
            f"({', '.join(f'{m:g}x' for m in OFFERED_MULTIPLIERS)}) of the "
            "closed-loop calibrated capacity against an HttpFrontend with "
            f"max_pending={MAX_PENDING}.  Past saturation the admission "
            "controller must shed with explicit 429s (all_shed_429).  The "
            "drain segment closes the server under concurrent writers and a "
            "SIGKILLed shard worker; acked writes must survive recovery."
        ),
    )
    dataset_name = config.datasets[0]
    dataset = build_dataset(config, dataset_name)
    workload = build_workload(config, dataset, dataset_name)
    queries = np.asarray(list(workload), dtype=np.float64)
    sample_size = min(config.sample_size, 100)
    deadline_ms = 2_000.0

    with ShardedEngine(dataset, num_shards=ENGINE_SHARDS) as engine:
        engine.refresh()
        frontend = serve_frontend(engine, MAX_PENDING, deadline_ms)
        try:
            host, port = frontend.address
            probe = (float(queries[0, 0]), float(queries[0, 1]))
            capacity = calibrate_capacity(host, port, probe, sample_size)
            for multiplier in OFFERED_MULTIPLIERS:
                row = measure_offered_load(
                    host,
                    port,
                    queries,
                    offered_rps=capacity * multiplier,
                    duration_s=2.0,
                    sample_size=sample_size,
                    deadline_ms=deadline_ms,
                )
                result.add_row(
                    segment=f"load:{multiplier:g}x",
                    offered_rps=row["offered_rps"],
                    sent=row["sent"],
                    ok=row["ok"],
                    shed=row["shed"],
                    shed_rate=row["shed_rate"],
                    p50_ms=row["p50_ms"],
                    p99_ms=row["p99_ms"],
                    all_shed_429=row["all_shed_429"],
                )
        finally:
            frontend.close()

    directory = tempfile.mkdtemp(prefix="repro-serving-drain-")
    try:
        drain_dataset = build_dataset(
            config, dataset_name, size=min(config.dataset_size, 20_000)
        )
        drain = measure_drain(drain_dataset, directory)
        result.add_row(
            segment="drain",
            writes_acked=drain["writes_acked"],
            no_acked_loss=drain["no_acked_loss"],
            post_close_rejected=drain["post_close_rejected"],
        )
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    return result
