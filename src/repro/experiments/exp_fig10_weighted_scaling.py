"""Fig. 10 — running time vs dataset size, weighted case."""

from __future__ import annotations

from .config import ExperimentConfig
from .harness import (
    WEIGHTED_ALGORITHMS,
    build_dataset,
    build_workload,
    make_adapters,
    measure_build,
    measure_query_timings,
)
from .report import ExperimentResult

__all__ = ["PAPER_REFERENCE", "run"]

PAPER_REFERENCE = [
    {"series": "Interval tree", "trend": "grows linearly with n"},
    {"series": "HINT^m", "trend": "grows linearly with n"},
    {"series": "KDS", "trend": "grows slowly with n"},
    {"series": "AWIT", "trend": "insensitive to n"},
]


def run(config: ExperimentConfig) -> ExperimentResult:
    """Measure total weighted query time for every competitor across dataset sizes."""
    adapters = make_adapters(WEIGHTED_ALGORITHMS, weighted=True)
    result = ExperimentResult(
        experiment_id="fig10",
        title="Running time [microsec] vs dataset size (weighted case)",
        columns=["dataset", "fraction", "n", *WEIGHTED_ALGORITHMS],
        paper_reference=PAPER_REFERENCE,
        notes="Expected shape: AWIT is insensitive to n, search-based algorithms scale with n.",
    )
    for dataset_name in config.datasets:
        for fraction in config.dataset_size_fractions:
            size = max(1_000, int(config.dataset_size * fraction))
            dataset = build_dataset(config, dataset_name, weighted=True, size=size)
            workload = build_workload(config, dataset, dataset_name)
            row = {"dataset": dataset_name, "fraction": fraction, "n": size}
            for adapter in adapters:
                index, _ = measure_build(adapter, dataset)
                timings = measure_query_timings(
                    adapter, index, workload, config.sample_size, seed=config.seed
                )
                row[adapter.name] = timings.total_us
            result.add_row(**row)
    return result
