"""Registry mapping paper table/figure identifiers to experiment modules."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .config import ExperimentConfig
from .report import ExperimentResult
from . import (
    exp_build_throughput,
    exp_gateway_latency,
    exp_kernel_throughput,
    exp_parallel_scaling,
    exp_recovery,
    exp_service_throughput,
    exp_serving_slo,
    exp_throughput,
    exp_update_throughput,
    exp_fig5_scaling,
    exp_fig6_extent,
    exp_fig7_samples,
    exp_fig8_scaling,
    exp_fig9_weighted_extent,
    exp_fig10_weighted_scaling,
    exp_table1_complexity,
    exp_table2_datasets,
    exp_table3_preprocessing,
    exp_table4_memory,
    exp_table5_candidate,
    exp_table6_sampling,
    exp_table7_updates,
    exp_table8_awit_build,
    exp_table9_weighted_sampling,
    exp_table10_counting,
)

__all__ = ["ExperimentEntry", "EXPERIMENTS", "list_experiments", "run_experiment", "run_all"]


@dataclass(frozen=True, slots=True)
class ExperimentEntry:
    """One registered experiment (one paper table or figure)."""

    experiment_id: str
    title: str
    runner: Callable[[ExperimentConfig], ExperimentResult]


EXPERIMENTS: dict[str, ExperimentEntry] = {
    "table1": ExperimentEntry("table1", "Complexity comparison (empirical growth check)", exp_table1_complexity.run),
    "table2": ExperimentEntry("table2", "Dataset statistics", exp_table2_datasets.run),
    "table3": ExperimentEntry("table3", "Pre-processing time (non-weighted)", exp_table3_preprocessing.run),
    "table4": ExperimentEntry("table4", "Memory usage (non-weighted)", exp_table4_memory.run),
    "fig5": ExperimentEntry("fig5", "AIT / AIT-V build time and memory vs dataset size", exp_fig5_scaling.run),
    "table5": ExperimentEntry("table5", "Candidate computation time", exp_table5_candidate.run),
    "table6": ExperimentEntry("table6", "Sampling time (non-weighted)", exp_table6_sampling.run),
    "fig6": ExperimentEntry("fig6", "Running time vs query extent (non-weighted)", exp_fig6_extent.run),
    "fig7": ExperimentEntry("fig7", "Running time vs sample size (non-weighted)", exp_fig7_samples.run),
    "fig8": ExperimentEntry("fig8", "Running time vs dataset size (non-weighted)", exp_fig8_scaling.run),
    "table7": ExperimentEntry("table7", "Amortized update time of AIT", exp_table7_updates.run),
    "table8": ExperimentEntry("table8", "AWIT pre-processing time and memory", exp_table8_awit_build.run),
    "table9": ExperimentEntry("table9", "Sampling time (weighted)", exp_table9_weighted_sampling.run),
    "fig9": ExperimentEntry("fig9", "Running time vs query extent (weighted)", exp_fig9_weighted_extent.run),
    "fig10": ExperimentEntry("fig10", "Running time vs dataset size (weighted)", exp_fig10_weighted_scaling.run),
    "table10": ExperimentEntry("table10", "Range counting time", exp_table10_counting.run),
    "throughput": ExperimentEntry(
        "throughput", "Batch vs scalar query throughput (FlatAIT engine)", exp_throughput.run
    ),
    "service_throughput": ExperimentEntry(
        "service_throughput",
        "Sharded service throughput vs shard count (ShardedEngine)",
        exp_service_throughput.run,
    ),
    "update_throughput": ExperimentEntry(
        "update_throughput",
        "Mixed read/write throughput vs write ratio and shard count (write path)",
        exp_update_throughput.run,
    ),
    "gateway_latency": ExperimentEntry(
        "gateway_latency",
        "Request latency under concurrent load: gateway micro-batching vs scalar calls",
        exp_gateway_latency.run,
    ),
    "build_throughput": ExperimentEntry(
        "build_throughput",
        "Full-build time: treeless columnar builder vs tree walk (extends Table III)",
        exp_build_throughput.run,
    ),
    "recovery": ExperimentEntry(
        "recovery",
        "Recovery: snapshot cold start vs rebuild, WAL replay throughput",
        exp_recovery.run,
    ),
    "parallel_scaling": ExperimentEntry(
        "parallel_scaling",
        "Process-executor scaling vs the serial scatter loop (bit-identity gated)",
        exp_parallel_scaling.run,
    ),
    "kernel_throughput": ExperimentEntry(
        "kernel_throughput",
        "FlatAIT kernel backends vs the NumPy reference (bit-identity gated)",
        exp_kernel_throughput.run,
    ),
    "serving_slo": ExperimentEntry(
        "serving_slo",
        "Serving SLO: shed rate and p99 under open-loop overload, drain safety",
        exp_serving_slo.run,
    ),
}


def list_experiments() -> list[str]:
    """Registered experiment identifiers in paper order."""
    return list(EXPERIMENTS)


def run_experiment(experiment_id: str, config: ExperimentConfig | None = None) -> ExperimentResult:
    """Run the experiment with the given paper table/figure identifier."""
    key = experiment_id.strip().lower()
    if key not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {experiment_id!r}; expected one of {list_experiments()}")
    return EXPERIMENTS[key].runner(config if config is not None else ExperimentConfig.default())


def run_all(config: ExperimentConfig | None = None) -> list[ExperimentResult]:
    """Run every registered experiment and return the results in paper order."""
    config = config if config is not None else ExperimentConfig.default()
    return [entry.runner(config) for entry in EXPERIMENTS.values()]
