"""Table VI — sampling time (alias building included), non-weighted case."""

from __future__ import annotations

from .config import ExperimentConfig
from .grid import run_grid
from .harness import NON_WEIGHTED_ALGORITHMS
from .report import ExperimentResult

__all__ = ["PAPER_REFERENCE", "run"]

#: Table VI of the paper (microseconds).  Interval tree and HINT^m share a row.
PAPER_REFERENCE = [
    {"algorithm": "Interval tree & HINT^m", "book": 4.79, "btc": 7.39, "renfe": 19.81, "taxi": 27.43},
    {"algorithm": "KDS", "book": 420.13, "btc": 459.70, "renfe": 925.84, "taxi": 1070.09},
    {"algorithm": "AIT", "book": 23.88, "btc": 21.74, "renfe": 35.68, "taxi": 39.77},
    {"algorithm": "AIT-V", "book": 58.14, "btc": 56.00, "renfe": 155.93, "taxi": 180.95},
]


def run(config: ExperimentConfig) -> ExperimentResult:
    """Measure the sampling phase (total minus candidate) for every competitor."""
    cells = run_grid(config, NON_WEIGHTED_ALGORITHMS, weighted=False)
    result = ExperimentResult(
        experiment_id="table6",
        title="Sampling time [microsec] (non-weighted case, alias building included)",
        columns=["algorithm", *config.datasets],
        paper_reference=PAPER_REFERENCE,
        notes=(
            "Expected shape: search-based algorithms sample fastest once q ∩ X is in "
            "hand (simple random sampling), KDS is the slowest sampler, the AIT family "
            "sits in between with AIT faster than AIT-V (no rejection step)."
        ),
    )
    for algorithm in NON_WEIGHTED_ALGORITHMS:
        row = {"algorithm": algorithm}
        for cell in cells:
            if cell.algorithm == algorithm:
                row[cell.dataset] = cell.timings.sampling_us
        result.add_row(**row)
    return result
