"""AWIT — the Augmented Weighted Interval Tree (Section IV of the paper).

The AWIT extends the AIT with, per node and per sorted list, an array of
cumulative weight sums (``W^l``, ``W^r``, ``AW^l``, ``AW^r``).  Those arrays
let the query algorithm obtain the total weight of any node record in O(1)
(one subtraction of two prefix sums), so the alias table over records can
still be built in O(log n); drawing an interval *inside* a record then uses
the cumulative-sum method on the precomputed prefix (O(log n) per draw).  The
total query cost is ``O(log^2 n + s log n)`` (Corollary 5) and every interval
``x ∈ q ∩ X`` is returned with probability ``w(x) / Σ w(x')`` per draw.

Because the prefix arrays are positional, the paper's AWIT is static (it
defers dynamic weighted IRS to future work).  The repo's engineering
extension :meth:`AIT.insert_many` / :meth:`AIT.delete_many` *does* work on
weighted trees: the bulk paths recompute every touched list's prefix array
wholesale (one ``cumsum`` per touched list), which sidesteps the positional
patching problem entirely — see ``docs/ARCHITECTURE.md``.  The scalar
:meth:`AIT.insert` / :meth:`AIT.delete` calls are routed through those same
bulk paths (as one-element batches), so the scalar update API works
uniformly on both engines.

Examples
--------
>>> from repro import AWIT, Interval, IntervalDataset
>>> tree = AWIT(IntervalDataset.from_pairs([(0, 10), (5, 15)], weights=[1.0, 9.0]))
>>> ids = tree.insert_many([20.0], [30.0], weights=[4.0])
>>> tree.total_weight((0, 40))
14.0
>>> tree.delete_many(ids).tolist()
[True]
>>> scalar_id = tree.insert(Interval(20.0, 30.0, weight=2.0))
>>> tree.total_weight((0, 40))
12.0
>>> tree.delete(scalar_id)
True
>>> tree.total_weight((0, 40))
10.0
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .ait import AIT
from .dataset import IntervalDataset
from .query import QueryLike

__all__ = ["AWIT"]


class AWIT(AIT):
    """Augmented weighted interval tree for weighted independent range sampling.

    Parameters
    ----------
    dataset:
        The intervals to index.  If the dataset has no explicit weights every
        interval gets weight 1 and the AWIT behaves exactly like the AIT
        (modulo the extra O(log n) factor per draw).

    Examples
    --------
    >>> from repro import AWIT, IntervalDataset
    >>> data = IntervalDataset.from_pairs([(0, 10), (5, 15)], weights=[1.0, 9.0])
    >>> tree = AWIT(data)
    >>> tree.total_weight((0, 20))
    10.0
    >>> len(tree.sample((0, 20), 4, random_state=0))
    4
    """

    def __init__(
        self,
        dataset: IntervalDataset,
        batch_pool_size: Optional[int] = None,
        build_backend: str = "columnar",
        kernel_backend=None,
    ) -> None:
        super().__init__(
            dataset,
            weighted=True,
            batch_pool_size=batch_pool_size,
            build_backend=build_backend,
            kernel_backend=kernel_backend,
        )

    def total_weight(self, query: QueryLike) -> float:
        """Total weight of ``q ∩ X`` in O(log^2 n) time (weighted range counting)."""
        records = self.collect_records(query)
        return float(sum(rec.weight for rec in records))

    def total_weight_many(self, queries) -> np.ndarray:
        """Vectorised :meth:`total_weight` for a batch of queries.

        Runs on the flat engine (:meth:`~repro.core.ait.AIT.flat`): one
        level-synchronous traversal computes every query's record set and the
        weighted totals come from the precomputed prefix pools.
        """
        return self.flat().total_weight_many(queries)

    def weights_of(self, interval_ids: np.ndarray) -> np.ndarray:
        """Weights of the given interval ids (convenience accessor for callers)."""
        ids = np.asarray(interval_ids, dtype=np.int64)
        return self._weights[ids]
