"""Insertion and deletion on the AIT (Section III-D of the paper).

Five update paths are provided:

* **one-by-one insertion** (:func:`insert_immediate`): traverse the tree like
  Algorithm 1 — go left while the new interval lies fully left of the center,
  right while fully right — updating the subtree (``AL``) lists of every
  visited node, and finish at the first node whose center the interval stabs
  (or at a freshly created leaf).  Each visited node's lists are kept sorted,
  which makes a single insertion expensive (this is exactly what Table VII of
  the paper shows);
* **pooled / batch insertion** (:func:`insert_pooled`, :func:`flush_pool`):
  new intervals first accumulate in a pool of capacity ``O(log^2 n)``.
  Queries scan the pool (an ``O(log^2 n)`` overhead), and when the pool fills
  up all pending intervals are pushed into the tree at once, re-sorting each
  touched list a single time — the paper's amortisation trick;
* **bulk insertion** (:func:`insert_many`): validate a whole batch
  vectorised, append it to the columnar storage in one amortised write, and
  merge it through the same deferred-sort flush, skipping the per-call Python
  round-trips of a scalar loop.  When the batch is at least as large as the
  indexed portion of the tree the merge degenerates to one vectorised
  rebuild;
* **deletion** (:func:`delete_interval`): traverse the same path, remove the
  id from every visited node's lists, and prune nodes left with an empty
  subtree;
* **bulk deletion** (:func:`delete_many`): classify a whole batch, filter
  each touched node's lists once via ``np.isin``, and prune in one pass.

All mutations are recorded in the tree's dirty-node journal (consumed by the
incremental :meth:`~repro.core.flat.FlatAIT.from_tree` refresh), and the bulk
paths also maintain the AWIT's weight prefix arrays by wholesale
recomputation per touched list — which is why ``insert_many``/``delete_many``
work on weighted trees even though the scalar paths stay unsupported
(Section IV-A).

Columnar storage grows by amortised capacity doubling, and deleted ids park
in a free-slot list that later insertions recycle, so sustained churn does
not leak columns.  The tree is rebuilt from scratch whenever its height
exceeds twice the logarithm of the current size, preserving the
``O(log^2 n + s)`` query bound.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable

import numpy as np

from .errors import InvalidIntervalError, InvalidWeightError
from .interval import Interval, validate_endpoints
from .node import AITNode

if TYPE_CHECKING:  # pragma: no cover
    from .ait import AIT

__all__ = [
    "insert_immediate",
    "insert_pooled",
    "insert_many",
    "flush_pool",
    "delete_interval",
    "delete_many",
    "height_limit",
]


def _coerce_new_interval(interval: Interval | tuple[float, float]) -> tuple[float, float, float]:
    """Normalise an insertion argument to ``(left, right, weight)``."""
    if isinstance(interval, Interval):
        return (interval.left, interval.right, interval.weight)
    try:
        left, right = interval
    except (TypeError, ValueError) as exc:
        raise InvalidIntervalError(
            f"insert expects an Interval or a (left, right) pair, got {interval!r}"
        ) from exc
    left_f, right_f = float(left), float(right)
    validate_endpoints(left_f, right_f)
    return (left_f, right_f, 1.0)


def _append_columns(ait: "AIT", left: float, right: float, weight: float) -> int:
    """Store a new interval in the columnar buffers and return its id.

    Recycles a vacated slot when one is available; otherwise appends at the
    logical end, growing the capacity buffers by amortised doubling.
    """
    validate_endpoints(left, right)
    if not math.isfinite(weight) or weight < 0:
        raise InvalidWeightError(f"interval weight must be finite and non-negative, got {weight!r}")
    if ait._free_slots:
        new_id = ait._free_slots.pop()
        ait._deleted.discard(new_id)
    else:
        ait._ensure_column_capacity(1)
        new_id = ait._col_len
        ait._col_len += 1
    ait._col_lefts[new_id] = left
    ait._col_rights[new_id] = right
    ait._col_weights[new_id] = weight
    ait._active_count += 1
    return int(new_id)


def _append_columns_bulk(
    ait: "AIT", lefts: np.ndarray, rights: np.ndarray, weights: np.ndarray
) -> np.ndarray:
    """Store a validated batch of intervals; return their ids (recycled first)."""
    count = int(lefts.shape[0])
    ids = np.empty(count, dtype=np.int64)
    reuse = min(len(ait._free_slots), count)
    if reuse:
        slots = np.asarray([ait._free_slots.pop() for _ in range(reuse)], dtype=np.int64)
        ait._col_lefts[slots] = lefts[:reuse]
        ait._col_rights[slots] = rights[:reuse]
        ait._col_weights[slots] = weights[:reuse]
        ait._deleted.difference_update(slots.tolist())
        ids[:reuse] = slots
    fresh = count - reuse
    if fresh:
        ait._ensure_column_capacity(fresh)
        start = ait._col_len
        ait._col_lefts[start : start + fresh] = lefts[reuse:]
        ait._col_rights[start : start + fresh] = rights[reuse:]
        ait._col_weights[start : start + fresh] = weights[reuse:]
        ait._col_len += fresh
        ids[reuse:] = np.arange(start, start + fresh, dtype=np.int64)
    ait._active_count += count
    return ids


def height_limit(ait: "AIT") -> int:
    """Height beyond which the tree is rebuilt to restore the O(log n) bound."""
    n = max(2, ait.size)
    return 2 * int(math.ceil(math.log2(n))) + 2


def _maybe_rebuild(ait: "AIT") -> None:
    if ait._height > height_limit(ait):
        pending = list(ait._pool)
        ait._pool = []
        # Pending intervals are already in the columnar storage, so a rebuild
        # picks them up automatically; just make sure they are not re-added.
        del pending
        ait._rebuild()


# ---------------------------------------------------------------------- #
# insertion
# ---------------------------------------------------------------------- #
def insert_immediate(ait: "AIT", interval: Interval | tuple[float, float]) -> int:
    """One-by-one insertion: update every visited node's sorted lists immediately."""
    left, right, weight = _coerce_new_interval(interval)
    ait._ensure_tree()
    new_id = _append_columns(ait, left, right, weight)
    depth = _descend_and_insert(ait, new_id, left, right, defer_sorting=False)
    ait._height = max(ait._height, depth)
    ait._structure_version += 1
    _maybe_rebuild(ait)
    return new_id


def insert_pooled(ait: "AIT", interval: Interval | tuple[float, float]) -> int:
    """Batch insertion: buffer the interval and merge once the pool is full."""
    left, right, weight = _coerce_new_interval(interval)
    new_id = _append_columns(ait, left, right, weight)
    ait._pool.append(new_id)
    ait._pool_epoch += 1
    if len(ait._pool) >= ait.batch_pool_capacity:
        flush_pool(ait)
    return new_id


def insert_many(ait: "AIT", lefts, rights, weights=None) -> np.ndarray:
    """Vectorised batch insertion; returns the assigned interval ids.

    Validates the whole batch first (so a malformed row mutates nothing),
    appends it to the columnar storage in one amortised write, and merges it
    into the tree through :func:`flush_pool` — one deferred re-sort per
    touched list.  Any intervals already waiting in the batch pool are
    flushed along with the new ones.
    """
    lefts_arr = np.ascontiguousarray(lefts, dtype=np.float64).reshape(-1)
    rights_arr = np.ascontiguousarray(rights, dtype=np.float64).reshape(-1)
    if lefts_arr.shape != rights_arr.shape:
        raise InvalidIntervalError(
            f"insert_many expects equally long columns, got {lefts_arr.shape[0]} lefts "
            f"and {rights_arr.shape[0]} rights"
        )
    count = int(lefts_arr.shape[0])
    finite = np.isfinite(lefts_arr) & np.isfinite(rights_arr)
    if not finite.all():
        bad = int(np.flatnonzero(~finite)[0])
        raise InvalidIntervalError(
            f"interval endpoints must be finite, got [{lefts_arr[bad]}, {rights_arr[bad]}] "
            f"at position {bad}"
        )
    inverted = lefts_arr > rights_arr
    if inverted.any():
        bad = int(np.flatnonzero(inverted)[0])
        raise InvalidIntervalError(
            f"interval left endpoint must not exceed right endpoint, got "
            f"[{lefts_arr[bad]}, {rights_arr[bad]}] at position {bad}"
        )
    if weights is None:
        weights_arr = np.ones(count, dtype=np.float64)
    else:
        weights_arr = np.ascontiguousarray(weights, dtype=np.float64).reshape(-1)
        if weights_arr.shape[0] != count:
            raise InvalidWeightError(
                f"insert_many got {weights_arr.shape[0]} weights for {count} intervals"
            )
        valid = np.isfinite(weights_arr) & (weights_arr >= 0)
        if not valid.all():
            bad = int(np.flatnonzero(~valid)[0])
            raise InvalidWeightError(
                f"interval weight must be finite and non-negative, got "
                f"{weights_arr[bad]!r} at position {bad}"
            )
    if count == 0:
        return np.empty(0, dtype=np.int64)

    ids = _append_columns_bulk(ait, lefts_arr, rights_arr, weights_arr)
    ait._pool.extend(int(i) for i in ids)
    ait._pool_epoch += 1
    flush_pool(ait)
    return ids


def flush_pool(ait: "AIT") -> int:
    """Merge every pooled interval into the tree, re-sorting touched lists once."""
    pending = list(ait._pool)
    if not pending:
        return 0

    # When the batch dominates the indexed portion of the tree, one
    # vectorised rebuild (O(n log n) in NumPy) beats per-interval Python
    # descents; this is what makes bulk-loading an empty tree fast.
    indexed_count = ait._active_count - len(pending)
    if len(pending) >= max(1, indexed_count):
        # Stays treeless under the columnar backend: the rebuild defers node
        # materialisation, so a bulk load never walks Python nodes at all.
        ait._pool = []
        ait._pool_epoch += 1
        ait._rebuild()
        return len(pending)

    # Materialise a deferred tree while the pool still names the pending
    # ids — they must not be part of the materialised structure, or the
    # descents below would index them twice.
    ait._ensure_tree()
    ait._pool = []
    ait._pool_epoch += 1
    touched_subtree: dict[int, tuple[AITNode, list[int]]] = {}
    touched_stab: dict[int, tuple[AITNode, list[int]]] = {}
    max_depth = ait._height

    for interval_id in pending:
        left = float(ait._lefts[interval_id])
        right = float(ait._rights[interval_id])
        depth = _descend_and_insert(
            ait,
            interval_id,
            left,
            right,
            defer_sorting=True,
            touched_subtree=touched_subtree,
            touched_stab=touched_stab,
        )
        max_depth = max(max_depth, depth)

    for node, added in touched_subtree.values():
        _bulk_extend_subtree(ait, node, added)
    for node, added in touched_stab.values():
        _bulk_extend_stab(ait, node, added)
    if ait._weighted:
        for node, _ in {**touched_subtree, **touched_stab}.values():
            node.recompute_weight_prefixes(ait._weights)

    ait._height = max_depth
    ait._structure_version += 1
    _maybe_rebuild(ait)
    return len(pending)


def _descend_and_insert(
    ait: "AIT",
    interval_id: int,
    left: float,
    right: float,
    defer_sorting: bool,
    touched_subtree: dict[int, tuple[AITNode, list[int]]] | None = None,
    touched_stab: dict[int, tuple[AITNode, list[int]]] | None = None,
) -> int:
    """Walk the insertion path for one interval; return the depth reached.

    With ``defer_sorting=True`` the interval is only *recorded* against the
    nodes it touches (except freshly created leaves, whose lists are trivially
    sorted); the caller re-sorts each touched list once afterwards.  Every
    touched node lands in the tree's dirty-node journal either way.
    """

    def record_subtree(node: AITNode) -> None:
        if defer_sorting:
            entry = touched_subtree.setdefault(id(node), (node, []))
            entry[1].append(interval_id)
        else:
            node.insert_into_subtree(interval_id, left, right)
            if ait._weighted:
                node.recompute_weight_prefixes(ait._weights)
        ait._mark_dirty(node)

    def record_stab(node: AITNode) -> None:
        if defer_sorting:
            entry = touched_stab.setdefault(id(node), (node, []))
            entry[1].append(interval_id)
        else:
            node.insert_into_stab(interval_id, left, right)
            if ait._weighted:
                node.recompute_weight_prefixes(ait._weights)
        ait._mark_dirty(node)

    if ait._root is None:
        ait._root = _new_leaf(ait, interval_id, left, right)
        return 1

    node = ait._root
    depth = 1
    while True:
        record_subtree(node)
        if right < node.center:
            if node.left is None:
                node.left = _new_leaf(ait, interval_id, left, right)
                return depth + 1
            node = node.left
            depth += 1
        elif node.center < left:
            if node.right is None:
                node.right = _new_leaf(ait, interval_id, left, right)
                return depth + 1
            node = node.right
            depth += 1
        else:
            record_stab(node)
            return depth


def _new_leaf(ait: "AIT", interval_id: int, left: float, right: float) -> AITNode:
    leaf = AITNode((left + right) / 2.0)
    leaf.insert_into_stab(interval_id, left, right)
    leaf.insert_into_subtree(interval_id, left, right)
    if ait._weighted:
        leaf.recompute_weight_prefixes(ait._weights)
    ait._register_new_node(leaf)
    return leaf


def _bulk_extend_subtree(ait: "AIT", node: AITNode, added: Iterable[int]) -> None:
    ids = np.asarray(list(added), dtype=np.int64)
    all_ids_left = np.concatenate((node.subtree_ids_by_left, ids))
    all_ids_right = np.concatenate((node.subtree_ids_by_right, ids))
    order_left = np.argsort(ait._lefts[all_ids_left], kind="stable")
    order_right = np.argsort(ait._rights[all_ids_right], kind="stable")
    node.subtree_ids_by_left = all_ids_left[order_left]
    node.subtree_lefts = ait._lefts[node.subtree_ids_by_left]
    node.subtree_ids_by_right = all_ids_right[order_right]
    node.subtree_rights = ait._rights[node.subtree_ids_by_right]


def _bulk_extend_stab(ait: "AIT", node: AITNode, added: Iterable[int]) -> None:
    ids = np.asarray(list(added), dtype=np.int64)
    all_ids_left = np.concatenate((node.stab_ids_by_left, ids))
    all_ids_right = np.concatenate((node.stab_ids_by_right, ids))
    order_left = np.argsort(ait._lefts[all_ids_left], kind="stable")
    order_right = np.argsort(ait._rights[all_ids_right], kind="stable")
    node.stab_ids_by_left = all_ids_left[order_left]
    node.stab_lefts = ait._lefts[node.stab_ids_by_left]
    node.stab_ids_by_right = all_ids_right[order_right]
    node.stab_rights = ait._rights[node.stab_ids_by_right]


# ---------------------------------------------------------------------- #
# deletion
# ---------------------------------------------------------------------- #
def _probe_delete_path(
    ait: "AIT", interval_id: int, left: float, right: float
) -> tuple[list[AITNode], AITNode | None]:
    """Walk the deletion path without mutating; return (path, stab node or None)."""
    path: list[AITNode] = []
    node = ait._root
    while node is not None:
        path.append(node)
        if left <= node.center <= right:
            return path, node
        node = node.left if right < node.center else node.right
    return path, None


def _prune_path(ait: "AIT", path: list[AITNode]) -> None:
    """Prune nodes whose subtree became empty, bottom-up along the path."""
    for index in range(len(path) - 1, -1, -1):
        pruned = path[index]
        if pruned.subtree_count > 0:
            break
        if index == 0:
            ait._root = None
            ait._height = 0
        else:
            parent = path[index - 1]
            if parent.left is pruned:
                parent.left = None
            elif parent.right is pruned:
                parent.right = None


def delete_interval(ait: "AIT", interval_id: int) -> bool:
    """Remove the interval with id ``interval_id`` from the tree (or the pool).

    Returns False — without mutating any counter — when the id is not
    actually indexed: unknown ids, already-deleted ids, and ids whose descent
    never reaches a stab list containing them leave ``size``,
    ``structure_version`` and the deleted set untouched.
    """
    try:
        interval_id = int(interval_id)
    except (TypeError, ValueError):
        return False
    if interval_id < 0 or interval_id >= ait._col_len or interval_id in ait._deleted:
        return False

    if interval_id in ait._pool:
        ait._pool.remove(interval_id)
        ait._deleted.add(interval_id)
        ait._free_slots.append(interval_id)
        ait._active_count -= 1
        ait._pool_epoch += 1
        return True

    ait._ensure_tree()
    left = float(ait._lefts[interval_id])
    right = float(ait._rights[interval_id])
    path, stab_node = _probe_delete_path(ait, interval_id, left, right)
    if stab_node is None or not bool(np.any(stab_node.stab_ids_by_left == interval_id)):
        return False

    for node in path:
        node.remove_from_subtree(interval_id)
        ait._mark_dirty(node)
    stab_node.remove_from_stab(interval_id)
    if ait._weighted:
        for node in path:
            node.recompute_weight_prefixes(ait._weights)

    _prune_path(ait, path)

    ait._deleted.add(interval_id)
    ait._free_slots.append(interval_id)
    ait._active_count -= 1
    ait._structure_version += 1
    return True


def delete_many(ait: "AIT", interval_ids) -> np.ndarray:
    """Vectorised batch deletion; returns one success flag per requested id.

    Semantically a loop of :func:`delete_interval` calls (duplicates within
    the batch report False after their first occurrence), but each touched
    node's lists are filtered once for the whole batch and
    ``structure_version`` advances a single time.
    """
    try:
        requested = list(interval_ids)
    except TypeError:
        requested = [interval_ids]
    count = len(requested)
    results = np.zeros(count, dtype=bool)
    if count == 0:
        return results

    pool_members = set(ait._pool)
    claimed: set[int] = set()
    pool_removals: list[int] = []
    tree_targets: list[tuple[int, int]] = []
    for position, raw in enumerate(requested):
        try:
            interval_id = int(raw)
        except (TypeError, ValueError):
            continue
        if (
            interval_id < 0
            or interval_id >= ait._col_len
            or interval_id in ait._deleted
            or interval_id in claimed
        ):
            continue
        claimed.add(interval_id)
        if interval_id in pool_members:
            pool_removals.append(interval_id)
            results[position] = True
        else:
            tree_targets.append((position, interval_id))

    if pool_removals:
        removed = set(pool_removals)
        ait._pool = [i for i in ait._pool if i not in removed]
        ait._deleted.update(pool_removals)
        ait._free_slots.extend(pool_removals)
        ait._active_count -= len(pool_removals)
        ait._pool_epoch += 1

    touched_subtree: dict[int, tuple[AITNode, list[int]]] = {}
    touched_stab: dict[int, tuple[AITNode, list[int]]] = {}
    removed_ids: list[int] = []
    paths: list[list[AITNode]] = []
    if tree_targets:
        ait._ensure_tree()
    for position, interval_id in tree_targets:
        left = float(ait._lefts[interval_id])
        right = float(ait._rights[interval_id])
        path, stab_node = _probe_delete_path(ait, interval_id, left, right)
        if stab_node is None or not bool(np.any(stab_node.stab_ids_by_left == interval_id)):
            continue
        results[position] = True
        removed_ids.append(interval_id)
        paths.append(path)
        for node in path:
            touched_subtree.setdefault(id(node), (node, []))[1].append(interval_id)
        touched_stab.setdefault(id(stab_node), (stab_node, []))[1].append(interval_id)

    if removed_ids:
        for node, gone in touched_stab.values():
            node.remove_many_from_stab(np.asarray(gone, dtype=np.int64))
        for node, gone in touched_subtree.values():
            node.remove_many_from_subtree(np.asarray(gone, dtype=np.int64))
            ait._mark_dirty(node)
        if ait._weighted:
            for node, _ in touched_subtree.values():
                node.recompute_weight_prefixes(ait._weights)
        if any(node.subtree_count == 0 for node, _ in touched_subtree.values()):
            for path in paths:
                _prune_path(ait, path)
        ait._deleted.update(removed_ids)
        ait._free_slots.extend(removed_ids)
        ait._active_count -= len(removed_ids)
        ait._structure_version += 1

    return results
