"""Insertion and deletion on the AIT (Section III-D of the paper).

Three update paths are provided:

* **one-by-one insertion** (:func:`insert_immediate`): traverse the tree like
  Algorithm 1 — go left while the new interval lies fully left of the center,
  right while fully right — updating the subtree (``AL``) lists of every
  visited node, and finish at the first node whose center the interval stabs
  (or at a freshly created leaf).  Each visited node's lists are kept sorted,
  which makes a single insertion expensive (this is exactly what Table VII of
  the paper shows);
* **pooled / batch insertion** (:func:`insert_pooled`, :func:`flush_pool`):
  new intervals first accumulate in a pool of capacity ``O(log^2 n)``.
  Queries scan the pool (an ``O(log^2 n)`` overhead), and when the pool fills
  up all pending intervals are pushed into the tree at once, re-sorting each
  touched list a single time — the paper's amortisation trick;
* **deletion** (:func:`delete_interval`): traverse the same path, remove the
  id from every visited node's lists, and prune nodes left with an empty
  subtree.

The tree is rebuilt from scratch whenever its height exceeds twice the
logarithm of the current size, preserving the ``O(log^2 n + s)`` query bound.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable

import numpy as np

from .errors import InvalidIntervalError, InvalidWeightError
from .interval import Interval, validate_endpoints
from .node import AITNode

if TYPE_CHECKING:  # pragma: no cover
    from .ait import AIT

__all__ = [
    "insert_immediate",
    "insert_pooled",
    "flush_pool",
    "delete_interval",
    "height_limit",
]


def _coerce_new_interval(interval: Interval | tuple[float, float]) -> tuple[float, float, float]:
    """Normalise an insertion argument to ``(left, right, weight)``."""
    if isinstance(interval, Interval):
        return (interval.left, interval.right, interval.weight)
    try:
        left, right = interval
    except (TypeError, ValueError) as exc:
        raise InvalidIntervalError(
            f"insert expects an Interval or a (left, right) pair, got {interval!r}"
        ) from exc
    left_f, right_f = float(left), float(right)
    validate_endpoints(left_f, right_f)
    return (left_f, right_f, 1.0)


def _append_columns(ait: "AIT", left: float, right: float, weight: float) -> int:
    """Append a new interval to the tree's columnar storage and return its id."""
    validate_endpoints(left, right)
    if not math.isfinite(weight) or weight < 0:
        raise InvalidWeightError(f"interval weight must be finite and non-negative, got {weight!r}")
    new_id = int(ait._lefts.shape[0])
    ait._lefts = np.append(ait._lefts, left)
    ait._rights = np.append(ait._rights, right)
    ait._weights = np.append(ait._weights, weight)
    ait._active_count += 1
    return new_id


def height_limit(ait: "AIT") -> int:
    """Height beyond which the tree is rebuilt to restore the O(log n) bound."""
    n = max(2, ait.size)
    return 2 * int(math.ceil(math.log2(n))) + 2


def _maybe_rebuild(ait: "AIT") -> None:
    if ait._height > height_limit(ait):
        pending = list(ait._pool)
        ait._pool = []
        # Pending intervals are already in the columnar storage, so a rebuild
        # picks them up automatically; just make sure they are not re-added.
        del pending
        ait._rebuild()


# ---------------------------------------------------------------------- #
# insertion
# ---------------------------------------------------------------------- #
def insert_immediate(ait: "AIT", interval: Interval | tuple[float, float]) -> int:
    """One-by-one insertion: update every visited node's sorted lists immediately."""
    left, right, weight = _coerce_new_interval(interval)
    new_id = _append_columns(ait, left, right, weight)
    depth = _descend_and_insert(ait, new_id, left, right, defer_sorting=False)
    ait._height = max(ait._height, depth)
    ait._structure_version += 1
    _maybe_rebuild(ait)
    return new_id


def insert_pooled(ait: "AIT", interval: Interval | tuple[float, float]) -> int:
    """Batch insertion: buffer the interval and merge once the pool is full."""
    left, right, weight = _coerce_new_interval(interval)
    new_id = _append_columns(ait, left, right, weight)
    ait._pool.append(new_id)
    if len(ait._pool) >= ait.batch_pool_capacity:
        flush_pool(ait)
    return new_id


def flush_pool(ait: "AIT") -> int:
    """Merge every pooled interval into the tree, re-sorting touched lists once."""
    pending = list(ait._pool)
    ait._pool = []
    if not pending:
        return 0

    touched_subtree: dict[int, tuple[AITNode, list[int]]] = {}
    touched_stab: dict[int, tuple[AITNode, list[int]]] = {}
    max_depth = ait._height

    for interval_id in pending:
        left = float(ait._lefts[interval_id])
        right = float(ait._rights[interval_id])
        depth = _descend_and_insert(
            ait,
            interval_id,
            left,
            right,
            defer_sorting=True,
            touched_subtree=touched_subtree,
            touched_stab=touched_stab,
        )
        max_depth = max(max_depth, depth)

    for node, added in touched_subtree.values():
        _bulk_extend_subtree(ait, node, added)
    for node, added in touched_stab.values():
        _bulk_extend_stab(ait, node, added)

    ait._height = max_depth
    ait._structure_version += 1
    _maybe_rebuild(ait)
    return len(pending)


def _descend_and_insert(
    ait: "AIT",
    interval_id: int,
    left: float,
    right: float,
    defer_sorting: bool,
    touched_subtree: dict[int, tuple[AITNode, list[int]]] | None = None,
    touched_stab: dict[int, tuple[AITNode, list[int]]] | None = None,
) -> int:
    """Walk the insertion path for one interval; return the depth reached.

    With ``defer_sorting=True`` the interval is only *recorded* against the
    nodes it touches (except freshly created leaves, whose lists are trivially
    sorted); the caller re-sorts each touched list once afterwards.
    """

    def record_subtree(node: AITNode) -> None:
        if defer_sorting:
            entry = touched_subtree.setdefault(id(node), (node, []))
            entry[1].append(interval_id)
        else:
            node.insert_into_subtree(interval_id, left, right)

    def record_stab(node: AITNode) -> None:
        if defer_sorting:
            entry = touched_stab.setdefault(id(node), (node, []))
            entry[1].append(interval_id)
        else:
            node.insert_into_stab(interval_id, left, right)

    if ait._root is None:
        leaf = AITNode((left + right) / 2.0)
        leaf.insert_into_stab(interval_id, left, right)
        leaf.insert_into_subtree(interval_id, left, right)
        ait._root = leaf
        return 1

    node = ait._root
    depth = 1
    while True:
        record_subtree(node)
        if right < node.center:
            if node.left is None:
                node.left = _new_leaf(interval_id, left, right)
                return depth + 1
            node = node.left
            depth += 1
        elif node.center < left:
            if node.right is None:
                node.right = _new_leaf(interval_id, left, right)
                return depth + 1
            node = node.right
            depth += 1
        else:
            record_stab(node)
            return depth


def _new_leaf(interval_id: int, left: float, right: float) -> AITNode:
    leaf = AITNode((left + right) / 2.0)
    leaf.insert_into_stab(interval_id, left, right)
    leaf.insert_into_subtree(interval_id, left, right)
    return leaf


def _bulk_extend_subtree(ait: "AIT", node: AITNode, added: Iterable[int]) -> None:
    ids = np.asarray(list(added), dtype=np.int64)
    all_ids_left = np.concatenate((node.subtree_ids_by_left, ids))
    all_ids_right = np.concatenate((node.subtree_ids_by_right, ids))
    order_left = np.argsort(ait._lefts[all_ids_left], kind="stable")
    order_right = np.argsort(ait._rights[all_ids_right], kind="stable")
    node.subtree_ids_by_left = all_ids_left[order_left]
    node.subtree_lefts = ait._lefts[node.subtree_ids_by_left]
    node.subtree_ids_by_right = all_ids_right[order_right]
    node.subtree_rights = ait._rights[node.subtree_ids_by_right]


def _bulk_extend_stab(ait: "AIT", node: AITNode, added: Iterable[int]) -> None:
    ids = np.asarray(list(added), dtype=np.int64)
    all_ids_left = np.concatenate((node.stab_ids_by_left, ids))
    all_ids_right = np.concatenate((node.stab_ids_by_right, ids))
    order_left = np.argsort(ait._lefts[all_ids_left], kind="stable")
    order_right = np.argsort(ait._rights[all_ids_right], kind="stable")
    node.stab_ids_by_left = all_ids_left[order_left]
    node.stab_lefts = ait._lefts[node.stab_ids_by_left]
    node.stab_ids_by_right = all_ids_right[order_right]
    node.stab_rights = ait._rights[node.stab_ids_by_right]


# ---------------------------------------------------------------------- #
# deletion
# ---------------------------------------------------------------------- #
def delete_interval(ait: "AIT", interval_id: int) -> bool:
    """Remove the interval with id ``interval_id`` from the tree (or the pool)."""
    try:
        interval_id = int(interval_id)
    except (TypeError, ValueError):
        return False
    if interval_id < 0 or interval_id >= ait._lefts.shape[0] or interval_id in ait._deleted:
        return False

    if interval_id in ait._pool:
        ait._pool.remove(interval_id)
        ait._deleted.add(interval_id)
        ait._active_count -= 1
        return True

    left = float(ait._lefts[interval_id])
    right = float(ait._rights[interval_id])
    path: list[AITNode] = []
    node = ait._root
    found = False
    while node is not None:
        path.append(node)
        node.remove_from_subtree(interval_id)
        if left <= node.center <= right:
            found = node.remove_from_stab(interval_id)
            break
        node = node.left if right < node.center else node.right

    # Prune nodes whose subtree became empty, bottom-up along the path.
    for index in range(len(path) - 1, -1, -1):
        pruned = path[index]
        if pruned.subtree_count > 0:
            break
        if index == 0:
            ait._root = None
            ait._height = 0
        else:
            parent = path[index - 1]
            if parent.left is pruned:
                parent.left = None
            elif parent.right is pruned:
                parent.right = None

    ait._deleted.add(interval_id)
    ait._active_count -= 1
    ait._structure_version += 1
    return found
