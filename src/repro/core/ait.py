"""AIT — the Augmented Interval Tree (Section III of the paper).

The AIT augments Edelsbrunner's interval tree so that, for any query interval
``q``, the set of intervals overlapping ``q`` can be described by ``O(log n)``
*node records* — contiguous runs of per-node sorted lists — computed with at
most one binary search per visited node.  Independent range sampling then
reduces to (i) building a Walker alias table over the record sizes and
(ii) drawing a uniform position inside the chosen record, giving
``O(log^2 n + s)`` query time overall (Theorem 2) while preserving the exact
``1 / |q ∩ X|`` per-draw probability (Theorem 3).

The same record collection yields ``|q ∩ X|`` for free, so the AIT also
answers range counting in ``O(log^2 n)`` (Corollary 1) and range reporting in
``O(log^2 n + |q ∩ X|)``.

Updates (Section III-D) — one-by-one insertion, pooled batch insertion and
deletion — are implemented in :mod:`repro.core.updates` and exposed here as
thin methods.
"""

from __future__ import annotations

import math
from typing import Iterator, Optional, Sequence

import numpy as np

from ..kernels import resolve_backend
from ..sampling.alias import AliasTable
from ..sampling.cumulative import range_weight
from ..sampling.rng import RandomState, resolve_rng
from .base import OnEmpty, SamplingIndex
from .dataset import IntervalDataset
from .flat import FlatAIT
from .interval import Interval
from .node import AITNode
from .query import QueryLike
from .records import ListKind, NodeRecord

__all__ = ["AIT"]


class AIT(SamplingIndex):
    """Augmented interval tree supporting O(log^2 n + s) independent range sampling.

    Parameters
    ----------
    dataset:
        The intervals to index.  The dataset is not modified; the tree keeps
        its own growable copies of the endpoint (and weight) columns so that
        updates do not mutate the caller's data.
    weighted:
        When True the node lists additionally carry cumulative weight arrays
        (this is how :class:`~repro.core.awit.AWIT` is realised).  The plain
        AIT leaves them out and samples uniformly.
    batch_pool_size:
        Capacity of the pooled-insertion buffer.  ``None`` (default) uses the
        paper's ``O(log^2 n)`` rule.
    build_backend:
        How full :class:`~repro.core.flat.FlatAIT` snapshots are built and
        when the Python node tree is materialised.  ``"columnar"`` (default)
        defers the node tree: construction only copies the endpoint columns,
        and the first snapshot is built *treelessly* by
        :meth:`FlatAIT.from_arrays` — the node tree is materialised lazily
        the first time a tree-dependent API (scalar record collection,
        updates, structural introspection) needs it, producing exactly the
        structure an eager build would have.  ``"tree"`` keeps the legacy
        eager build: nodes are materialised in the constructor and snapshots
        always serialise them via :meth:`FlatAIT.from_tree` (the equivalence
        oracle for the columnar path).  Either way, incremental snapshot
        refreshes after updates run through the dirty-node journal.
    kernel_backend:
        Which kernel implementation the flat snapshots run their hot loops
        on — a name from :data:`repro.kernels.KERNEL_BACKEND_NAMES`
        (``"numpy"`` default, ``"numba"``, ``"python"``), a
        :class:`~repro.kernels.KernelBackend` instance, or ``None`` to honor
        the ``REPRO_KERNEL_BACKEND`` environment variable.  All backends
        return bit-identical results; see :mod:`repro.kernels`.

    Examples
    --------
    >>> from repro import AIT, IntervalDataset
    >>> data = IntervalDataset.from_pairs([(0, 10), (5, 15), (20, 30)])
    >>> tree = AIT(data)
    >>> tree.count((4, 12))
    2
    >>> sorted(tree.report((4, 12)).tolist())
    [0, 1]
    >>> len(tree.sample((4, 12), 5, random_state=0))
    5
    """

    def __init__(
        self,
        dataset: IntervalDataset,
        weighted: bool = False,
        batch_pool_size: Optional[int] = None,
        snapshot_dirty_threshold: float = 0.5,
        build_backend: str = "columnar",
        kernel_backend=None,
    ) -> None:
        super().__init__(dataset)
        if build_backend not in ("tree", "columnar"):
            raise ValueError(
                f"build_backend must be 'tree' or 'columnar', got {build_backend!r}"
            )
        self._build_backend = build_backend
        # Resolve eagerly: a bad name fails at construction, not first query,
        # and every snapshot this tree produces shares one backend instance.
        self._kernels = resolve_backend(kernel_backend)
        self._tree_deferred = False
        self._built_version = 0
        # Columnar storage with amortised capacity-doubling growth: the
        # capacity arrays (`_col_*`) may be longer than the logical column
        # length (`_col_len`); `_lefts` / `_rights` / `_weights` expose the
        # logical prefix as views.  Deleted ids park in `_free_slots` and are
        # recycled by later insertions, so churn workloads do not leak
        # columns.
        self._col_lefts = dataset.lefts.copy()
        self._col_rights = dataset.rights.copy()
        self._col_weights = dataset.weights.copy()
        self._col_len = len(dataset)
        self._free_slots: list[int] = []
        self._weighted = bool(weighted)
        self._deleted: set[int] = set()
        self._active_count = len(dataset)
        self._pool: list[int] = []
        self._pool_epoch = 0
        self._explicit_pool_size = batch_pool_size
        self._root: Optional[AITNode] = None
        self._height = 0
        self._rebuild_count = 0
        self._structure_version = 0
        self._flat: Optional["FlatAIT"] = None
        self._flat_version = -1
        # Dirty-node journal: nodes whose lists changed since the last flat
        # snapshot, keyed by id(node) (the dict holds strong references, so
        # object ids cannot be recycled while journalled).  `_journal_full`
        # means the whole node set was replaced (rebuild); created and pruned
        # nodes need no extra flag — the incremental refresh diffs the
        # current preorder against the previous snapshot's node index.
        self._journal: dict[int, AITNode] = {}
        self._journal_full = True
        self._snapshot_dirty_threshold = float(snapshot_dirty_threshold)
        self._snapshot_full_builds = 0
        self._snapshot_incremental_refreshes = 0
        self._rebuild()

    # ------------------------------------------------------------------ #
    # columnar storage
    # ------------------------------------------------------------------ #
    @property
    def _lefts(self) -> np.ndarray:
        """Logical left-endpoint column (view of the capacity buffer)."""
        return self._col_lefts[: self._col_len]

    @property
    def _rights(self) -> np.ndarray:
        """Logical right-endpoint column (view of the capacity buffer)."""
        return self._col_rights[: self._col_len]

    @property
    def _weights(self) -> np.ndarray:
        """Logical weight column (view of the capacity buffer)."""
        return self._col_weights[: self._col_len]

    def _ensure_column_capacity(self, extra: int) -> None:
        """Grow the capacity buffers so ``extra`` more rows fit (amortised O(1))."""
        need = self._col_len + int(extra)
        capacity = int(self._col_lefts.shape[0])
        if need <= capacity:
            return
        new_capacity = max(need, 2 * capacity, 16)
        for name in ("_col_lefts", "_col_rights", "_col_weights"):
            old = getattr(self, name)
            grown = np.empty(new_capacity, dtype=old.dtype)
            grown[: self._col_len] = old[: self._col_len]
            setattr(self, name, grown)

    # ------------------------------------------------------------------ #
    # dirty-node journal (consumed by the incremental snapshot refresh)
    # ------------------------------------------------------------------ #
    def _mark_dirty(self, node: AITNode) -> None:
        """Record that ``node``'s lists changed since the last flat snapshot."""
        self._journal[id(node)] = node

    def _register_new_node(self, node: AITNode) -> None:
        """Record a freshly created node (it must be gathered, not spliced)."""
        self._journal[id(node)] = node

    def _reset_journal(self) -> None:
        self._journal.clear()
        self._journal_full = False

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _rebuild(self) -> None:
        """(Re)build the tree from the currently active intervals.

        With the ``"columnar"`` backend the node tree is *not* materialised
        here: the rebuild is recorded logically (version counters, journal
        reset) and :meth:`_ensure_tree` constructs the identical node graph
        on first use, while snapshots build straight from the endpoint
        columns via :meth:`FlatAIT.from_arrays`.
        """
        self._journal.clear()
        self._journal_full = True
        # The cached snapshot can never seed an incremental refresh after a
        # rebuild; drop it now so it does not pin the old node graph.
        self._flat = None
        self._flat_version = -1
        self._structure_version += 1
        self._built_version = self._structure_version
        self._root = None
        self._height = 0
        self._tree_deferred = False
        # The batch pool is always empty when a rebuild runs (every caller
        # drains it first), so the active set is "all non-deleted rows".
        if self._col_len - len(self._deleted) == 0:
            return
        self._rebuild_count += 1
        if self._build_backend == "columnar":
            self._tree_deferred = True
            return
        self._materialise_tree()

    def _indexed_ids(self) -> np.ndarray:
        """Ids the tree indexes: active rows minus the batch-insertion pool."""
        n = int(self._col_len)
        mask = np.ones(n, dtype=bool)
        if self._deleted:
            mask[np.fromiter(self._deleted, dtype=np.int64, count=len(self._deleted))] = (
                False
            )
        if self._pool:
            mask[np.asarray(self._pool, dtype=np.int64)] = False
        return np.flatnonzero(mask).astype(np.int64, copy=False)

    def _materialise_tree(self) -> None:
        """Build the node graph over the currently indexed intervals."""
        active = self._indexed_ids()
        if active.shape[0] == 0:
            self._root = None
            self._height = 0
            return
        ids_by_left = active[np.argsort(self._lefts[active], kind="stable")]
        ids_by_right = active[np.argsort(self._rights[active], kind="stable")]
        self._root, self._height = self._build_node(ids_by_left, ids_by_right, depth=1)

    def _ensure_tree(self) -> None:
        """Materialise a deferred node tree (columnar backend), exactly once.

        The materialised graph is identical to what an eager build would
        have produced — same active set, same build algorithm — so if the
        cached snapshot was built treelessly for this same structure
        version, its preorder node list is attached now: that is what lets
        later *incremental* refreshes splice against a
        :meth:`FlatAIT.from_arrays` snapshot.
        """
        if not self._tree_deferred:
            return
        self._tree_deferred = False
        self._materialise_tree()
        flat = self._flat
        if (
            flat is not None
            and self._flat_version == self._structure_version
            and flat._nodes is None
        ):
            self._attach_nodes(flat)

    def _attach_nodes(self, flat: FlatAIT) -> None:
        """Attach this tree's preorder node walk to a treeless snapshot.

        Only valid when the snapshot's arrays correspond exactly to the
        current node graph (callers guard this); afterwards the incremental
        refresh can splice clean segments against it by node identity.
        """
        nodes = FlatAIT._walk_preorder(self)
        flat._nodes = nodes
        flat._node_index = {id(node): i for i, node in enumerate(nodes)}

    def _build_node(
        self, ids_by_left: np.ndarray, ids_by_right: np.ndarray, depth: int
    ) -> tuple[AITNode, int]:
        """Recursively build the subtree for the given (pre-sorted) interval ids."""
        lefts_sorted = self._lefts[ids_by_left]
        rights_for_left_order = self._rights[ids_by_left]
        rights_sorted = self._rights[ids_by_right]
        lefts_for_right_order = self._lefts[ids_by_right]

        endpoints = np.concatenate((lefts_sorted, rights_sorted))
        center = float(np.median(endpoints))

        node = AITNode(center)
        node.subtree_ids_by_left = ids_by_left
        node.subtree_lefts = lefts_sorted
        node.subtree_ids_by_right = ids_by_right
        node.subtree_rights = rights_sorted

        # Classification relative to the center, in both sort orders so the
        # children inherit already-sorted id arrays (no per-node re-sorting).
        stab_mask_l = (lefts_sorted <= center) & (rights_for_left_order >= center)
        left_mask_l = rights_for_left_order < center
        right_mask_l = lefts_sorted > center

        stab_mask_r = (lefts_for_right_order <= center) & (rights_sorted >= center)
        left_mask_r = rights_sorted < center
        right_mask_r = lefts_for_right_order > center

        node.stab_ids_by_left = ids_by_left[stab_mask_l]
        node.stab_lefts = lefts_sorted[stab_mask_l]
        node.stab_ids_by_right = ids_by_right[stab_mask_r]
        node.stab_rights = rights_sorted[stab_mask_r]

        if self._weighted:
            node.stab_weight_by_left = np.cumsum(self._weights[node.stab_ids_by_left])
            node.stab_weight_by_right = np.cumsum(self._weights[node.stab_ids_by_right])
            node.subtree_weight_by_left = np.cumsum(self._weights[node.subtree_ids_by_left])
            node.subtree_weight_by_right = np.cumsum(self._weights[node.subtree_ids_by_right])

        height = depth
        left_ids_l = ids_by_left[left_mask_l]
        if left_ids_l.shape[0]:
            node.left, child_height = self._build_node(
                left_ids_l, ids_by_right[left_mask_r], depth + 1
            )
            height = max(height, child_height)
        right_ids_l = ids_by_left[right_mask_l]
        if right_ids_l.shape[0]:
            node.right, child_height = self._build_node(
                right_ids_l, ids_by_right[right_mask_r], depth + 1
            )
            height = max(height, child_height)
        return node, height

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def root(self) -> Optional[AITNode]:
        """Root node of the tree (None when every interval was deleted).

        Materialises a deferred (columnar-backend) node tree on access.
        """
        self._ensure_tree()
        return self._root

    @property
    def height(self) -> int:
        """Current height of the tree (number of levels).

        Materialises a deferred (columnar-backend) node tree on access.
        """
        self._ensure_tree()
        return self._height

    @property
    def build_backend(self) -> str:
        """The full-build route this tree was configured with ('tree' | 'columnar')."""
        return self._build_backend

    @property
    def kernel_backend(self) -> str:
        """Registry name of the kernel backend the flat snapshots run on."""
        return self._kernels.name

    @property
    def tree_materialised(self) -> bool:
        """False while the columnar backend is still deferring node construction."""
        return not self._tree_deferred

    @property
    def size(self) -> int:
        """Number of currently active (non-deleted) intervals, including pooled ones."""
        return self._active_count

    @property
    def is_weighted(self) -> bool:
        """True when the tree carries cumulative weight arrays (AWIT)."""
        return self._weighted

    @property
    def rebuild_count(self) -> int:
        """How many times the tree has been (re)built, including the initial build."""
        return self._rebuild_count

    @property
    def structure_version(self) -> int:
        """Monotone counter bumped on every structural change of the tree.

        Rebuilds, immediate insertions, pool flushes and deletions of indexed
        intervals all advance the version.  Operations confined to the
        batch-insertion pool do not: a pooled insertion, or a deletion that
        removes a still-pooled interval, changes the active set without
        touching the tree.  Snapshot consumers — :meth:`flat` and the
        per-shard snapshots of :class:`repro.service.ShardedEngine` — compare
        this counter against the version they serialised to decide whether a
        cached snapshot is still valid; they exclude the pool (the query
        wrappers merge it separately), so pool-only changes need no
        re-snapshot.  Consumers that additionally cache pool-derived state
        must also watch :attr:`pool_epoch`, which *does* advance on
        pool-membership changes.

        Examples
        --------
        >>> from repro import AIT, IntervalDataset
        >>> tree = AIT(IntervalDataset.from_pairs([(0, 1), (2, 3)]))
        >>> before = tree.structure_version
        >>> _ = tree.insert((4, 5), immediate=True)
        >>> tree.structure_version > before
        True
        """
        return self._structure_version

    @property
    def pool_epoch(self) -> int:
        """Monotone counter bumped on every batch-pool membership change.

        Pooled insertions, deletions of still-pooled intervals, and pool
        flushes all advance it.  Together with :attr:`structure_version` it
        fully captures every visible-state change: a consumer that caches a
        flat snapshot *plus* pool-derived state (the pattern the query
        wrappers use internally) is stale exactly when either counter moved.
        Without it, a deletion of a still-pooled interval is invisible to
        version checks — the pool shrinks but ``structure_version`` stays
        put by design.

        Examples
        --------
        >>> from repro import AIT, IntervalDataset
        >>> tree = AIT(IntervalDataset.from_pairs([(0, 1), (2, 3)]))
        >>> pooled = tree.insert((4, 5))            # pooled: epoch moves,
        >>> structure = tree.structure_version      # structure version not
        >>> epoch = tree.pool_epoch
        >>> tree.delete(pooled)                     # pooled delete: same
        True
        >>> (tree.structure_version, tree.pool_epoch) == (structure, epoch)
        False
        >>> tree.structure_version == structure
        True
        """
        return self._pool_epoch

    @property
    def snapshot_full_builds(self) -> int:
        """How many times :meth:`flat` rebuilt the snapshot from scratch."""
        return self._snapshot_full_builds

    @property
    def snapshot_incremental_refreshes(self) -> int:
        """How many times :meth:`flat` patched the snapshot incrementally."""
        return self._snapshot_incremental_refreshes

    @property
    def column_capacity(self) -> int:
        """Allocated rows in the columnar buffers (>= logical length)."""
        return int(self._col_lefts.shape[0])

    @property
    def free_slot_count(self) -> int:
        """Vacated column slots awaiting recycling by future insertions."""
        return len(self._free_slots)

    @property
    def pending_pool_size(self) -> int:
        """Number of intervals waiting in the batch-insertion pool."""
        return len(self._pool)

    @property
    def batch_pool_capacity(self) -> int:
        """Capacity of the batch-insertion pool (the paper's ``O(log^2 n)`` rule)."""
        if self._explicit_pool_size is not None:
            return max(1, int(self._explicit_pool_size))
        n = max(2, self._active_count)
        return max(16, int(math.ceil(math.log2(n)) ** 2))

    def interval(self, interval_id: int) -> Interval:
        """Materialise the interval with the given id from the tree's own columns."""
        i = int(interval_id)
        if i < 0 or i >= self._lefts.shape[0] or i in self._deleted:
            raise KeyError(f"interval id {interval_id} is not active in this tree")
        return Interval(float(self._lefts[i]), float(self._rights[i]), float(self._weights[i]))

    def iter_nodes(self) -> Iterator[AITNode]:
        """Depth-first iteration over every node of the tree.

        Materialises a deferred (columnar-backend) node tree on first use.
        """
        self._ensure_tree()
        stack = [self._root] if self._root is not None else []
        while stack:
            node = stack.pop()
            yield node
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)

    def node_count(self) -> int:
        """Number of nodes in the tree."""
        return sum(1 for _ in self.iter_nodes())

    def memory_bytes(
        self, include_capacity: bool = True, materialise: bool = True
    ) -> int:
        """Approximate memory footprint of the tree structure in bytes.

        Parameters
        ----------
        include_capacity:
            Count the full capacity of the growable columnar buffers (what
            the process actually holds; default) rather than only the live
            row prefix.  The difference is exactly
            ``(column_capacity - len(columns)) * 24`` bytes — three float64
            columns of slack.
        materialise:
            Materialise a deferred (columnar-backend) node tree before
            measuring, so the reported figure covers the complete structure
            an eager build would hold (default).  Pass ``False`` to measure
            only what currently exists — the service layer uses this so a
            treeless shard snapshot is not forced to build its node graph
            just to be sized.

        Flat snapshots are measured separately via
        :meth:`FlatAIT.nbytes`, which symmetrically exposes an
        ``include_rank_keys`` knob for its derived acceleration arrays.
        """
        if materialise:
            self._ensure_tree()
        total = 0
        if not self._tree_deferred:
            # iter_nodes' own _ensure_tree is a no-op here, so this never
            # forces a deferred tree.
            total += sum(node.nbytes() for node in self.iter_nodes())
        if include_capacity:
            total += int(
                self._col_lefts.nbytes + self._col_rights.nbytes + self._col_weights.nbytes
            )
        else:
            total += int(self._lefts.nbytes + self._rights.nbytes + self._weights.nbytes)
        return total

    # ------------------------------------------------------------------ #
    # record collection (the candidate-computation phase of Algorithm 1)
    # ------------------------------------------------------------------ #
    def collect_records(self, query: QueryLike) -> list[NodeRecord]:
        """Collect the node records describing ``q ∩ X`` (pooled inserts excluded).

        This is the first phase of Algorithm 1: a root-to-leaf walk that, per
        visited node, runs at most one binary search and appends at most one
        record — except for the single *case 3* node (query straddles the
        node's center), which contributes up to three records and terminates
        the walk.
        """
        query_left, query_right = self._coerce(query)
        self._ensure_tree()
        records: list[NodeRecord] = []
        node = self._root
        while node is not None:
            if query_right < node.center:
                # Case 1: every stab interval whose left endpoint is <= q.r overlaps q.
                hi = int(np.searchsorted(node.stab_lefts, query_right, side="right")) - 1
                if hi >= 0:
                    records.append(self._make_record(node, ListKind.STAB_BY_LEFT, 0, hi))
                node = node.left
            elif node.center < query_left:
                # Case 2: every stab interval whose right endpoint is >= q.l overlaps q.
                lo = int(np.searchsorted(node.stab_rights, query_left, side="left"))
                if lo < node.stab_rights.shape[0]:
                    records.append(
                        self._make_record(
                            node, ListKind.STAB_BY_RIGHT, lo, node.stab_rights.shape[0] - 1
                        )
                    )
                node = node.right
            else:
                # Case 3: q straddles the center; all stab intervals overlap q and the
                # children's subtree lists finish the job.  At most one node ever
                # reaches this branch (it ends the traversal).
                if node.stab_count:
                    records.append(
                        self._make_record(node, ListKind.STAB_BY_LEFT, 0, node.stab_count - 1)
                    )
                if node.left is not None:
                    child = node.left
                    lo = int(np.searchsorted(child.subtree_rights, query_left, side="left"))
                    if lo < child.subtree_rights.shape[0]:
                        records.append(
                            self._make_record(
                                child,
                                ListKind.SUBTREE_BY_RIGHT,
                                lo,
                                child.subtree_rights.shape[0] - 1,
                            )
                        )
                if node.right is not None:
                    child = node.right
                    hi = int(np.searchsorted(child.subtree_lefts, query_right, side="right")) - 1
                    if hi >= 0:
                        records.append(
                            self._make_record(child, ListKind.SUBTREE_BY_LEFT, 0, hi)
                        )
                break
        return records

    def _make_record(self, node: AITNode, kind: ListKind, lo: int, hi: int) -> NodeRecord:
        if self._weighted:
            weight = range_weight(node.list_weight_prefix(kind), lo, hi)
        else:
            weight = float(hi - lo + 1)
        return NodeRecord(node, kind, lo, hi, weight)

    def _pool_match_ids(self, query_left: float, query_right: float) -> np.ndarray:
        """Ids of pooled (not yet indexed) intervals overlapping the query."""
        if not self._pool:
            return np.empty(0, dtype=np.int64)
        ids = np.asarray(self._pool, dtype=np.int64)
        mask = (self._lefts[ids] <= query_right) & (query_left <= self._rights[ids])
        return ids[mask]

    # ------------------------------------------------------------------ #
    # counting / reporting
    # ------------------------------------------------------------------ #
    def count(self, query: QueryLike) -> int:
        """Exact ``|q ∩ X|`` in O(log^2 n) time (Corollary 1)."""
        query_left, query_right = self._coerce(query)
        records = self.collect_records((query_left, query_right))
        total = sum(rec.count for rec in records)
        total += int(self._pool_match_ids(query_left, query_right).shape[0])
        return total

    def report(self, query: QueryLike) -> np.ndarray:
        """Ids of all intervals overlapping ``query`` (range reporting)."""
        query_left, query_right = self._coerce(query)
        records = self.collect_records((query_left, query_right))
        chunks = [rec.interval_ids() for rec in records]
        pool_ids = self._pool_match_ids(query_left, query_right)
        if pool_ids.shape[0]:
            chunks.append(pool_ids)
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(chunks).astype(np.int64, copy=False)

    def report_intervals(self, query: QueryLike) -> list[Interval]:
        """Overlapping intervals as :class:`Interval` objects."""
        return [self.interval(int(i)) for i in self.report(query)]

    # ------------------------------------------------------------------ #
    # flat engine + batch queries
    # ------------------------------------------------------------------ #
    def flat(self) -> FlatAIT:
        """The flat (structure-of-arrays) engine for the current tree.

        The snapshot is cached and refreshed lazily whenever the tree
        structure changes (rebuilds, immediate inserts, pool flushes,
        deletions).  Pooled-but-unflushed inserts do not invalidate it — the
        batch query wrappers scan the pool separately, like the scalar path
        does.

        Refreshes are *incremental* when possible: the dirty-node journal
        names the nodes touched since the last snapshot, and
        :meth:`FlatAIT.from_tree` splices only their pool segments into the
        previous snapshot's arrays.  A full rebuild remains the fallback
        when the tree was rebuilt from scratch or the dirty fraction exceeds
        the ``snapshot_dirty_threshold`` passed at construction;
        :attr:`snapshot_full_builds` and
        :attr:`snapshot_incremental_refreshes` count which path ran.

        Full builds route through the *treeless columnar builder*
        (:meth:`FlatAIT.from_arrays`) whenever the configured
        ``build_backend`` is ``"columnar"`` and the tree is *pristine* — no
        structural mutation since the last logical rebuild — in which case
        the node tree (possibly still deferred) is guaranteed to equal a
        fresh build over the current columns and the two builders produce
        bit-identical arrays.  Once scalar updates have reshaped the tree,
        full builds fall back to :meth:`FlatAIT.from_tree`, which serialises
        the actual node graph.
        """
        if self._flat is None or self._flat_version != self._structure_version:
            previous = None if (self._flat is None or self._journal_full) else self._flat
            if previous is None and (
                self._build_backend == "columnar"
                and self._structure_version == self._built_version
            ):
                self._flat = self._columnar_snapshot()
            else:
                self._ensure_tree()
                self._flat = FlatAIT.from_tree(
                    self,
                    previous=previous,
                    dirty=self._journal if previous is not None else None,
                    max_dirty_fraction=self._snapshot_dirty_threshold,
                    kernel_backend=self._kernels,
                )
            if self._flat.built_incrementally:
                self._snapshot_incremental_refreshes += 1
            else:
                self._snapshot_full_builds += 1
            self._flat_version = self._structure_version
            self._reset_journal()
        return self._flat

    def _columnar_snapshot(self) -> FlatAIT:
        """Full snapshot straight from the endpoint columns (no node walk).

        Only valid while the tree is pristine (structure equals a fresh
        build over the current columns) — :meth:`flat` guards this.  When
        the node tree happens to be materialised already, its preorder walk
        is attached to the snapshot so later incremental refreshes can
        splice against it; a deferred tree attaches lazily in
        :meth:`_ensure_tree` instead.
        """
        active = self._indexed_ids()
        engine = FlatAIT.from_arrays(
            self._lefts[active],
            self._rights[active],
            ids=active,
            weights=self._weights[active] if self._weighted else None,
            kernel_backend=self._kernels,
        )
        if not self._tree_deferred and self._root is not None:
            self._attach_nodes(engine)
        return engine

    def _pool_match_mask(self, ql: np.ndarray, qr: np.ndarray) -> Optional[np.ndarray]:
        """Boolean (queries x pooled ids) overlap matrix, or None when no pool."""
        if not self._pool:
            return None
        ids = np.asarray(self._pool, dtype=np.int64)
        return (self._lefts[ids][None, :] <= qr[:, None]) & (
            ql[:, None] <= self._rights[ids][None, :]
        )

    def count_many(self, queries) -> np.ndarray:
        """Vectorised :meth:`count` for a batch of queries.

        Accepts an ``(n, 2)`` array or any sequence of query-likes; returns
        an ``int64`` array of ``|q ∩ X|`` per query.  Results are exactly
        equal to calling :meth:`count` per query, including pooled inserts.
        """
        ql, qr = FlatAIT.coerce_queries(queries)
        counts = self.flat()._count_many(ql, qr)
        pool_mask = self._pool_match_mask(ql, qr)
        if pool_mask is not None:
            counts = counts + pool_mask.sum(axis=1)
        return counts

    def report_many(self, queries) -> list[np.ndarray]:
        """Vectorised :meth:`report` for a batch of queries.

        Returns one id array per query, in the same order :meth:`report`
        produces (records in traversal order, then pooled matches).
        """
        ql, qr = FlatAIT.coerce_queries(queries)
        reported = self.flat()._report_many(ql, qr)
        pool_mask = self._pool_match_mask(ql, qr)
        if pool_mask is not None:
            ids = np.asarray(self._pool, dtype=np.int64)
            reported = [
                np.concatenate((chunk, ids[pool_mask[i]])) if pool_mask[i].any() else chunk
                for i, chunk in enumerate(reported)
            ]
        return reported

    def sample_many(
        self,
        queries,
        sample_size: int,
        random_state: RandomState = None,
        on_empty: OnEmpty = "empty",
    ) -> list[np.ndarray]:
        """Vectorised :meth:`sample` for a batch of queries.

        Each query draws ``sample_size`` ids independently with the same
        per-draw distribution as :meth:`sample` (``1/|q ∩ X|``, or ``w(x)/W``
        for weighted trees).  While the batch-insertion pool is non-empty the
        call falls back to the scalar path per query (the pool is transient
        by construction); once flushed, the whole batch runs vectorised on
        the flat engine.
        """
        if on_empty not in ("empty", "raise"):
            raise ValueError(f"on_empty must be 'empty' or 'raise', got {on_empty!r}")
        ql, qr = FlatAIT.coerce_queries(queries)
        if self._pool:
            rng = resolve_rng(random_state)
            return [
                self.sample((left, right), sample_size, random_state=rng, on_empty=on_empty)
                for left, right in zip(ql.tolist(), qr.tolist())
            ]
        return self.flat()._sample_many(ql, qr, sample_size, random_state, on_empty)

    # ------------------------------------------------------------------ #
    # independent range sampling (second phase of Algorithm 1)
    # ------------------------------------------------------------------ #
    def sample(
        self,
        query: QueryLike,
        sample_size: int,
        random_state: RandomState = None,
        on_empty: OnEmpty = "empty",
    ) -> np.ndarray:
        """Draw ``sample_size`` interval ids uniformly and independently from ``q ∩ X``."""
        query_pair = self._coerce(query)
        sample_size = self._validate_sample_size(sample_size)
        records = self.collect_records(query_pair)
        pool_ids = self._pool_match_ids(*query_pair)
        return self._sample_from_records(
            records, pool_ids, sample_size, resolve_rng(random_state), on_empty, query_pair
        )

    def _sample_from_records(
        self,
        records: Sequence[NodeRecord],
        pool_ids: np.ndarray,
        sample_size: int,
        rng: np.random.Generator,
        on_empty: OnEmpty,
        query_pair: tuple[float, float],
    ) -> np.ndarray:
        weights = [rec.weight for rec in records]
        if pool_ids.shape[0]:
            pool_weight = (
                float(self._weights[pool_ids].sum()) if self._weighted else float(pool_ids.shape[0])
            )
            weights.append(pool_weight)
        if not weights or sum(weights) <= 0:
            empty = self._handle_empty(sample_size, on_empty, query_pair)
            return empty
        if sample_size == 0:
            return np.empty(0, dtype=np.int64)

        if len(records) == 1 and not pool_ids.shape[0]:
            # Single-record fast path: every draw lands in the one record, so
            # the alias table over record weights is pure overhead.
            return self._draw_within_record(records[0], sample_size, rng)

        alias = AliasTable(weights)
        choices = alias.sample_many(sample_size, rng)
        result = np.empty(sample_size, dtype=np.int64)
        for index, record in enumerate(records):
            mask = choices == index
            hits = int(mask.sum())
            if hits == 0:
                continue
            result[mask] = self._draw_within_record(record, hits, rng)
        if pool_ids.shape[0]:
            mask = choices == len(records)
            hits = int(mask.sum())
            if hits:
                result[mask] = self._draw_from_pool(pool_ids, hits, rng)
        return result

    def _draw_within_record(
        self, record: NodeRecord, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Positions inside the record, mapped to interval ids.

        Unweighted trees draw positions uniformly (O(1) per draw); weighted
        trees draw proportionally to interval weight via a binary search on
        the node's cumulative weight array (O(log n) per draw), which is the
        cumulative-sum method of Section II-C applied to a precomputed prefix.
        """
        if not self._weighted:
            offsets = rng.integers(record.lo, record.hi + 1, size=count)
            return record.node.list_ids(record.kind)[offsets].astype(np.int64, copy=False)
        prefix = record.node.list_weight_prefix(record.kind)
        before = float(prefix[record.lo - 1]) if record.lo > 0 else 0.0
        total = float(prefix[record.hi]) - before
        thresholds = before + rng.random(count) * total
        window = prefix[record.lo : record.hi + 1]
        offsets = np.searchsorted(window, thresholds, side="left") + record.lo
        offsets = np.minimum(offsets, record.hi)
        return record.node.list_ids(record.kind)[offsets].astype(np.int64, copy=False)

    def _draw_from_pool(
        self, pool_ids: np.ndarray, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        positions = rng.integers(0, pool_ids.shape[0], size=count)
        return pool_ids[positions]

    def sample_intervals(
        self,
        query: QueryLike,
        sample_size: int,
        random_state: RandomState = None,
        on_empty: OnEmpty = "empty",
    ) -> list[Interval]:
        """Like :meth:`sample` but returns :class:`Interval` objects."""
        ids = self.sample(query, sample_size, random_state=random_state, on_empty=on_empty)
        return [self.interval(int(i)) for i in ids]

    # ------------------------------------------------------------------ #
    # updates (Section III-D) — implemented in repro.core.updates
    # ------------------------------------------------------------------ #
    def insert(self, interval: Interval | tuple[float, float], immediate: bool = False) -> int:
        """Insert a new interval and return its id.

        By default the interval joins the batch-insertion pool and is merged
        into the tree once the pool reaches its ``O(log^2 n)`` capacity;
        queries issued in the meantime still see it (the pool is scanned,
        which is the paper's amortisation strategy).  Pass ``immediate=True``
        for the one-by-one insertion path.

        On weighted trees (:class:`~repro.core.awit.AWIT`) the scalar call is
        routed through the bulk :meth:`insert_many` path, which maintains
        the positional weight-prefix arrays by wholesale recomputation per
        touched list — the paper's Section IV-A restriction only rules out
        *positional patching*, not the bulk route, so the scalar API works
        on both engines.  ``immediate`` is ignored there (the bulk path
        always merges at once).  Pass an :class:`Interval` carrying a weight
        to insert a weighted interval; bare pairs get weight 1.
        """
        from .updates import _coerce_new_interval, insert_immediate, insert_pooled

        if self._weighted:
            left, right, weight = _coerce_new_interval(interval)
            return int(self.insert_many([left], [right], weights=[weight])[0])
        if immediate:
            return insert_immediate(self, interval)
        return insert_pooled(self, interval)

    def insert_many(self, lefts, rights, weights=None) -> np.ndarray:
        """Insert a batch of intervals in one vectorised pass; return their ids.

        The endpoints are validated vectorised, appended to the columnar
        storage in one amortised write (recycling vacated slots first), and
        merged into the tree through the pooled-insertion machinery with a
        single deferred re-sort per touched list — orders of magnitude
        faster than a loop of :meth:`insert` calls.  When the batch is at
        least as large as the indexed portion of the tree, the merge is a
        single vectorised rebuild instead.

        Unlike the scalar :meth:`insert`, this path also supports weighted
        trees (pass ``weights``): the touched lists' weight prefix arrays
        are recomputed wholesale, which sidesteps the positional-update
        problem that makes scalar AWIT updates unsupported (Section IV-A).

        Examples
        --------
        >>> from repro import AIT, IntervalDataset
        >>> tree = AIT(IntervalDataset.from_pairs([(0, 10), (20, 30)]))
        >>> ids = tree.insert_many([2, 4], [6, 8])
        >>> len(ids)
        2
        >>> tree.count((3, 5))
        3
        """
        from .updates import insert_many

        return insert_many(self, lefts, rights, weights)

    def delete_many(self, interval_ids) -> np.ndarray:
        """Delete a batch of interval ids in one pass; return per-id success flags.

        Equivalent to a loop of :meth:`delete` calls (duplicates within the
        batch report ``False`` after the first occurrence) but removes all
        ids from each touched node's lists at once and bumps
        :attr:`structure_version` a single time.  Supported on weighted
        trees too, like :meth:`insert_many`.

        Examples
        --------
        >>> from repro import AIT, IntervalDataset
        >>> tree = AIT(IntervalDataset.from_pairs([(0, 10), (20, 30), (40, 50)]))
        >>> tree.delete_many([1, 1, 99]).tolist()
        [True, False, False]
        >>> tree.size
        2
        """
        from .updates import delete_many

        return delete_many(self, interval_ids)

    def flush_pool(self) -> int:
        """Merge all pooled insertions into the tree; return how many were merged."""
        from .updates import flush_pool

        return flush_pool(self)

    def delete(self, interval_id: int) -> bool:
        """Delete the interval with the given id; return True when it was present.

        On weighted trees the scalar call is routed through the bulk
        :meth:`delete_many` path (see :meth:`insert` for why that sidesteps
        the Section IV-A restriction), so deletion works on both engines.
        """
        from .updates import delete_interval

        if self._weighted:
            return bool(self.delete_many([interval_id])[0])
        return delete_interval(self, interval_id)

    # ------------------------------------------------------------------ #
    # invariants (used by the test-suite; cheap enough to run on demand)
    # ------------------------------------------------------------------ #
    def check_invariants(self) -> None:
        """Validate the structural invariants of the tree; raise AssertionError on violation."""
        for node in self.iter_nodes():
            stab_left = self._lefts[node.stab_ids_by_left]
            stab_right = self._rights[node.stab_ids_by_left]
            assert np.all(stab_left <= node.center) and np.all(stab_right >= node.center), (
                "stab list must contain exactly the intervals overlapping the center"
            )
            assert np.all(np.diff(node.stab_lefts) >= 0), "L^l must be sorted by left endpoint"
            assert np.all(np.diff(node.stab_rights) >= 0), "L^r must be sorted by right endpoint"
            assert np.all(np.diff(node.subtree_lefts) >= 0), "AL^l must be sorted by left endpoint"
            assert np.all(np.diff(node.subtree_rights) >= 0), (
                "AL^r must be sorted by right endpoint"
            )
            assert set(node.stab_ids_by_left.tolist()) == set(node.stab_ids_by_right.tolist())
            assert set(node.subtree_ids_by_left.tolist()) == set(
                node.subtree_ids_by_right.tolist()
            )
            if node.left is not None:
                assert np.all(self._rights[node.left.subtree_ids_by_left] < node.center), (
                    "left subtree intervals must end before the center"
                )
            if node.right is not None:
                assert np.all(self._lefts[node.right.subtree_ids_by_left] > node.center), (
                    "right subtree intervals must start after the center"
                )
            subtree = set(node.subtree_ids_by_left.tolist())
            children = set(node.stab_ids_by_left.tolist())
            if node.left is not None:
                children |= set(node.left.subtree_ids_by_left.tolist())
            if node.right is not None:
                children |= set(node.right.subtree_ids_by_left.tolist())
            assert subtree == children, "AL lists must equal stab list plus child AL lists"
            if self._weighted:
                for ids, prefix in (
                    (node.stab_ids_by_left, node.stab_weight_by_left),
                    (node.stab_ids_by_right, node.stab_weight_by_right),
                    (node.subtree_ids_by_left, node.subtree_weight_by_left),
                    (node.subtree_ids_by_right, node.subtree_weight_by_right),
                ):
                    assert prefix is not None and np.allclose(
                        prefix, np.cumsum(self._weights[ids])
                    ), "weight prefix arrays must match the cumulative list weights"
