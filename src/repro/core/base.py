"""Abstract interfaces implemented by every interval index in the library.

The experiment harness and the tests treat indexes uniformly through these
interfaces: every structure can *report* and *count* the intervals overlapping
a query, and sampling-capable structures can additionally draw ``s``
independent random samples.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from .dataset import IntervalDataset
from .errors import EmptyResultError
from .interval import Interval
from .query import QueryLike, coerce_query, validate_sample_size
from ..sampling.rng import RandomState

__all__ = ["IntervalIndex", "SamplingIndex", "OnEmpty"]

#: Accepted values for the ``on_empty`` argument of sampling methods.
OnEmpty = str  # "empty" | "raise"


class IntervalIndex(abc.ABC):
    """Base class for structures answering range queries over an interval dataset.

    Every index — the paper's structures and every baseline — exposes the
    same scalar (:meth:`count` / :meth:`report`) and batch (:meth:`count_many`
    / :meth:`report_many`) query API, so the experiment harness and the tests
    can treat them uniformly.

    Examples
    --------
    >>> from repro import AIT, IntervalDataset
    >>> index = AIT(IntervalDataset.from_pairs([(0, 10), (5, 15), (20, 30)]))
    >>> index.count((4, 12))
    2
    >>> index.count_many([(4, 12), (18, 25), (100, 110)]).tolist()
    [2, 1, 0]
    >>> [ids.tolist() for ids in index.report_many([(18, 25)])]
    [[2]]
    """

    def __init__(self, dataset: IntervalDataset) -> None:
        dataset.require_nonempty()
        self._dataset = dataset

    # ------------------------------------------------------------------ #
    @property
    def dataset(self) -> IntervalDataset:
        """The dataset this index was built over."""
        return self._dataset

    @property
    def size(self) -> int:
        """Number of intervals currently indexed."""
        return len(self._dataset)

    @classmethod
    def from_intervals(cls, intervals: Sequence[Interval], **kwargs) -> "IntervalIndex":
        """Build the index from a sequence of :class:`Interval` objects."""
        return cls(IntervalDataset.from_intervals(intervals), **kwargs)

    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def report(self, query: QueryLike) -> np.ndarray:
        """Return the ids of all intervals overlapping ``query`` (range reporting)."""

    def count(self, query: QueryLike) -> int:
        """Return ``|q ∩ X|``.  Default implementation falls back to reporting."""
        return int(self.report(query).shape[0])

    def report_intervals(self, query: QueryLike) -> list[Interval]:
        """Return the overlapping intervals as :class:`Interval` objects."""
        return [self._dataset[int(i)] for i in self.report(query)]

    # ------------------------------------------------------------------ #
    # batch queries
    # ------------------------------------------------------------------ #
    def count_many(self, queries) -> np.ndarray:
        """``|q ∩ X|`` for a batch of queries.

        The default implementation loops over :meth:`count`; structures with
        a vectorised engine (the AIT family) override it.  Having the batch
        entry point on every index keeps throughput comparisons fair — all
        competitors answer the same batch API, with or without vectorisation.
        """
        return np.asarray([self.count(q) for q in _iter_queries(queries)], dtype=np.int64)

    def report_many(self, queries) -> list["np.ndarray"]:
        """Overlapping ids for a batch of queries (default: loop over :meth:`report`)."""
        return [self.report(q) for q in _iter_queries(queries)]

    # ------------------------------------------------------------------ #
    # shared helpers for subclasses
    # ------------------------------------------------------------------ #
    @staticmethod
    def _coerce(query: QueryLike) -> tuple[float, float]:
        return coerce_query(query)

    @staticmethod
    def _handle_empty(sample_size: int, on_empty: OnEmpty, query: tuple[float, float]) -> np.ndarray:
        """Return the empty-result value or raise, depending on ``on_empty``."""
        if on_empty == "raise":
            raise EmptyResultError(f"query [{query[0]}, {query[1]}] matched no intervals")
        if on_empty != "empty":
            raise ValueError(f"on_empty must be 'empty' or 'raise', got {on_empty!r}")
        return np.empty(0, dtype=np.int64)


def _iter_queries(queries) -> list[tuple[float, float]]:
    """Normalise a query batch (sequence or ``(n, 2)`` array) to a list of pairs.

    Funnels through :func:`~repro.core.query.coerce_query_batch` so every
    index's batch API rejects malformed input identically.
    """
    from .query import coerce_query_batch

    lefts, rights = coerce_query_batch(queries)
    return list(zip(lefts.tolist(), rights.tolist()))


class SamplingIndex(IntervalIndex):
    """An interval index that supports independent range sampling.

    Adds :meth:`sample` (the paper's core operation: ``s`` independent draws
    from ``q ∩ X`` without materialising it), plus batch
    (:meth:`sample_many`) and without-replacement (:meth:`sample_distinct`)
    variants.

    Examples
    --------
    >>> from repro import AIT, IntervalDataset
    >>> index = AIT(IntervalDataset.from_pairs([(0, 10), (5, 15), (20, 30)]))
    >>> draws = index.sample((4, 12), sample_size=100, random_state=0)
    >>> sorted(set(draws.tolist()))
    [0, 1]
    >>> index.sample((100, 110), 5).shape   # empty result set -> empty array
    (0,)
    >>> sorted(index.sample_distinct((4, 12), 2, random_state=1).tolist())
    [0, 1]
    """

    @abc.abstractmethod
    def sample(
        self,
        query: QueryLike,
        sample_size: int,
        random_state: RandomState = None,
        on_empty: OnEmpty = "empty",
    ) -> np.ndarray:
        """Draw ``sample_size`` interval ids from ``q ∩ X`` (with replacement).

        For unweighted structures every member of ``q ∩ X`` has probability
        ``1 / |q ∩ X|`` per draw; for weighted structures the probability is
        ``w(x) / W(q ∩ X)``.  When ``q ∩ X`` is empty, an empty array is
        returned (``on_empty='empty'``) or :class:`EmptyResultError` is raised
        (``on_empty='raise'``).
        """

    def sample_intervals(
        self,
        query: QueryLike,
        sample_size: int,
        random_state: RandomState = None,
        on_empty: OnEmpty = "empty",
    ) -> list[Interval]:
        """Like :meth:`sample` but returns :class:`Interval` objects."""
        ids = self.sample(query, sample_size, random_state=random_state, on_empty=on_empty)
        return [self._dataset[int(i)] for i in ids]

    def sample_many(
        self,
        queries,
        sample_size: int,
        random_state: RandomState = None,
        on_empty: OnEmpty = "empty",
    ) -> list[np.ndarray]:
        """Draw ``sample_size`` ids from each query of a batch.

        Default implementation loops over :meth:`sample` with one shared RNG
        stream; vectorised structures override it.
        """
        from ..sampling.rng import resolve_rng

        rng = resolve_rng(random_state)
        return [
            self.sample(q, sample_size, random_state=rng, on_empty=on_empty)
            for q in _iter_queries(queries)
        ]

    def sample_distinct(
        self,
        query: QueryLike,
        sample_size: int,
        random_state: RandomState = None,
    ) -> np.ndarray:
        """Draw up to ``sample_size`` *distinct* interval ids from ``q ∩ X``.

        Sampling without replacement is not part of the paper's problem
        statement (Problems 1 and 2 sample with replacement) but is a common
        application need; this default implementation draws with replacement
        and discards duplicates, falling back to reporting the full result set
        when ``sample_size`` approaches ``|q ∩ X|``.  The returned ids are in
        random order and each subset of size ``k = min(sample_size, |q ∩ X|)``
        is equally likely for unweighted structures.
        """
        from .query import validate_sample_size as _validate
        from ..sampling.rng import resolve_rng

        sample_size = _validate(sample_size)
        if sample_size == 0:
            return np.empty(0, dtype=np.int64)
        rng = resolve_rng(random_state)
        population = int(self.count(query))
        if population == 0:
            return np.empty(0, dtype=np.int64)
        if sample_size * 2 >= population:
            # Dense request: materialise the result and subsample directly.
            result = self.report(query)
            take = min(sample_size, result.shape[0])
            return rng.choice(result, size=take, replace=False)
        seen: list[int] = []
        seen_set: set[int] = set()
        while len(seen) < sample_size:
            batch = self.sample(query, sample_size, random_state=rng)
            for interval_id in batch.tolist():
                if interval_id not in seen_set:
                    seen_set.add(interval_id)
                    seen.append(interval_id)
                    if len(seen) == sample_size:
                        break
        return np.asarray(seen, dtype=np.int64)

    @staticmethod
    def _validate_sample_size(sample_size: int) -> int:
        return validate_sample_size(sample_size)
