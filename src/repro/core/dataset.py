"""Columnar container for interval collections.

The indexes in this library (:class:`~repro.core.ait.AIT`,
:class:`~repro.core.awit.AWIT`, the baselines, ...) all consume an
:class:`IntervalDataset`: a read-mostly, numpy-backed columnar store holding
the left endpoints, right endpoints and weights of ``n`` intervals.  Keeping
the data columnar lets every structure share one copy of the endpoints and
reference intervals by integer id, which is how the paper's C++
implementation works as well.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from .errors import EmptyDatasetError, InvalidIntervalError, InvalidWeightError
from .interval import Interval

__all__ = ["IntervalDataset"]


class IntervalDataset:
    """An immutable-by-convention collection of ``n`` intervals.

    Parameters
    ----------
    lefts, rights:
        Array-likes of equal length with ``lefts[i] <= rights[i]``.
    weights:
        Optional array-like of non-negative weights.  When omitted every
        interval gets weight ``1.0`` and :attr:`is_weighted` is False.
    payloads:
        Optional sequence of arbitrary user payloads aligned with the
        intervals.

    Notes
    -----
    The arrays are copied and stored as ``float64``.  Intervals are addressed
    by their integer position (``0 <= i < len(dataset)``); the indexes built
    on top of a dataset store these positions rather than interval objects.

    Examples
    --------
    >>> data = IntervalDataset.from_pairs([(0, 10), (5, 15), (20, 30)])
    >>> len(data)
    3
    >>> data.domain()
    (0.0, 30.0)
    >>> data.overlap_count(4, 12)
    2
    >>> data.is_weighted
    False
    """

    __slots__ = ("_lefts", "_rights", "_weights", "_payloads", "_explicit_weights")

    def __init__(
        self,
        lefts: Iterable[float],
        rights: Iterable[float],
        weights: Iterable[float] | None = None,
        payloads: Sequence | None = None,
    ) -> None:
        lefts_arr = np.asarray(list(lefts) if not isinstance(lefts, np.ndarray) else lefts, dtype=np.float64).copy()
        rights_arr = np.asarray(list(rights) if not isinstance(rights, np.ndarray) else rights, dtype=np.float64).copy()
        if lefts_arr.ndim != 1 or rights_arr.ndim != 1:
            raise InvalidIntervalError("endpoint arrays must be one-dimensional")
        if lefts_arr.shape != rights_arr.shape:
            raise InvalidIntervalError(
                f"endpoint arrays must have equal length, got {lefts_arr.shape[0]} and {rights_arr.shape[0]}"
            )
        if not np.all(np.isfinite(lefts_arr)) or not np.all(np.isfinite(rights_arr)):
            raise InvalidIntervalError("interval endpoints must be finite")
        if np.any(lefts_arr > rights_arr):
            bad = int(np.argmax(lefts_arr > rights_arr))
            raise InvalidIntervalError(
                f"interval {bad} has left endpoint {lefts_arr[bad]} > right endpoint {rights_arr[bad]}"
            )

        if weights is None:
            weights_arr = np.ones_like(lefts_arr)
            explicit = False
        else:
            weights_arr = np.asarray(
                list(weights) if not isinstance(weights, np.ndarray) else weights, dtype=np.float64
            ).copy()
            if weights_arr.shape != lefts_arr.shape:
                raise InvalidWeightError(
                    f"weights must have the same length as the endpoints, got {weights_arr.shape[0]}"
                )
            if not np.all(np.isfinite(weights_arr)) or np.any(weights_arr < 0):
                raise InvalidWeightError("weights must be finite and non-negative")
            explicit = True

        if payloads is not None and len(payloads) != lefts_arr.shape[0]:
            raise InvalidIntervalError("payloads must have the same length as the endpoints")

        self._lefts = lefts_arr
        self._rights = rights_arr
        self._weights = weights_arr
        self._payloads = list(payloads) if payloads is not None else None
        self._explicit_weights = explicit

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_intervals(cls, intervals: Iterable[Interval]) -> "IntervalDataset":
        """Build a dataset from :class:`~repro.core.interval.Interval` objects."""
        items = list(intervals)
        lefts = [x.left for x in items]
        rights = [x.right for x in items]
        weights = [x.weight for x in items]
        payloads = [x.data for x in items]
        has_weights = any(w != 1.0 for w in weights)
        has_payloads = any(p is not None for p in payloads)
        return cls(
            lefts,
            rights,
            weights if has_weights else None,
            payloads if has_payloads else None,
        )

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[tuple[float, float]], weights: Iterable[float] | None = None
    ) -> "IntervalDataset":
        """Build a dataset from ``(left, right)`` pairs."""
        items = list(pairs)
        lefts = [p[0] for p in items]
        rights = [p[1] for p in items]
        return cls(lefts, rights, weights)

    def with_weights(self, weights: Iterable[float]) -> "IntervalDataset":
        """A copy of this dataset carrying the given weights."""
        return IntervalDataset(self._lefts, self._rights, weights, self._payloads)

    def subset(self, indices: Sequence[int] | np.ndarray) -> "IntervalDataset":
        """A new dataset restricted to the intervals at ``indices`` (in order)."""
        idx = np.asarray(indices, dtype=np.int64)
        payloads = [self._payloads[i] for i in idx] if self._payloads is not None else None
        return IntervalDataset(
            self._lefts[idx],
            self._rights[idx],
            self._weights[idx] if self._explicit_weights else None,
            payloads,
        )

    def partition_indices(
        self, num_shards: int, policy: str = "round_robin"
    ) -> list[np.ndarray]:
        """Split the interval ids ``0..n-1`` into ``num_shards`` disjoint groups.

        This is the dataset-partitioning primitive behind
        :class:`repro.service.ShardedEngine`: each returned array names the
        intervals owned by one shard, every id appears in exactly one group,
        and no group is empty.

        Parameters
        ----------
        num_shards:
            Number of groups; must satisfy ``1 <= num_shards <= len(self)``.
        policy:
            ``"round_robin"`` deals ids cyclically (shard ``i`` gets ids
            ``i, i + K, i + 2K, ...``), which balances both cardinality and —
            for workloads uncorrelated with insertion order — query load.
            ``"range"`` sorts the intervals by midpoint and cuts the sorted
            order into ``num_shards`` contiguous runs, so each shard owns a
            compact region of the domain and narrow queries touch few shards.

        Examples
        --------
        >>> from repro import IntervalDataset
        >>> data = IntervalDataset.from_pairs([(0, 2), (10, 12), (4, 6), (20, 22)])
        >>> [part.tolist() for part in data.partition_indices(2)]
        [[0, 2], [1, 3]]
        >>> [part.tolist() for part in data.partition_indices(2, policy="range")]
        [[0, 2], [1, 3]]
        """
        k = int(num_shards)
        if k <= 0:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        n = len(self)
        if n < k:
            raise ValueError(
                f"cannot partition {n} intervals into {k} non-empty shards"
            )
        if policy == "round_robin":
            return [np.arange(i, n, k, dtype=np.int64) for i in range(k)]
        if policy == "range":
            midpoints = (self._lefts + self._rights) / 2.0
            order = np.argsort(midpoints, kind="stable").astype(np.int64, copy=False)
            return [chunk for chunk in np.array_split(order, k)]
        raise ValueError(
            f"unknown partition policy {policy!r}; expected 'round_robin' or 'range'"
        )

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return int(self._lefts.shape[0])

    def __iter__(self) -> Iterator[Interval]:
        for i in range(len(self)):
            yield self[i]

    def __getitem__(self, index: int) -> Interval:
        i = int(index)
        if i < 0:
            i += len(self)
        if not 0 <= i < len(self):
            raise IndexError(f"interval index {index} out of range for dataset of size {len(self)}")
        payload = self._payloads[i] if self._payloads is not None else None
        return Interval(
            float(self._lefts[i]), float(self._rights[i]), float(self._weights[i]), payload
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "weighted " if self.is_weighted else ""
        return f"IntervalDataset({len(self)} {kind}intervals, domain={self.domain()})"

    # ------------------------------------------------------------------ #
    # columnar accessors
    # ------------------------------------------------------------------ #
    @property
    def lefts(self) -> np.ndarray:
        """Left endpoints as a read-only float64 array."""
        return self._lefts

    @property
    def rights(self) -> np.ndarray:
        """Right endpoints as a read-only float64 array."""
        return self._rights

    @property
    def weights(self) -> np.ndarray:
        """Weights as a float64 array (all ones for unweighted datasets)."""
        return self._weights

    @property
    def payloads(self) -> Sequence | None:
        """User payloads, or None when no payloads were supplied."""
        return self._payloads

    @property
    def is_weighted(self) -> bool:
        """True when the dataset was constructed with explicit weights."""
        return self._explicit_weights

    def total_weight(self) -> float:
        """Sum of all interval weights."""
        return float(self._weights.sum())

    # ------------------------------------------------------------------ #
    # dataset-level geometry
    # ------------------------------------------------------------------ #
    def domain(self) -> tuple[float, float]:
        """The ``(min left endpoint, max right endpoint)`` span of the dataset."""
        if len(self) == 0:
            raise EmptyDatasetError("domain() of an empty dataset is undefined")
        return (float(self._lefts.min()), float(self._rights.max()))

    def domain_size(self) -> float:
        """Extent of the dataset domain (max right − min left)."""
        lo, hi = self.domain()
        return hi - lo

    def lengths(self) -> np.ndarray:
        """Per-interval lengths (``rights − lefts``)."""
        return self._rights - self._lefts

    def overlap_mask(self, query_left: float, query_right: float) -> np.ndarray:
        """Boolean mask of intervals overlapping ``[query_left, query_right]``.

        This is the brute-force predicate used by the exhaustive oracle and by
        statistical tests; it costs O(n).
        """
        return (self._lefts <= query_right) & (query_left <= self._rights)

    def overlap_indices(self, query_left: float, query_right: float) -> np.ndarray:
        """Indices of intervals overlapping ``[query_left, query_right]`` (O(n))."""
        return np.nonzero(self.overlap_mask(query_left, query_right))[0]

    def overlap_count(self, query_left: float, query_right: float) -> int:
        """Number of intervals overlapping the query (O(n) oracle)."""
        return int(self.overlap_mask(query_left, query_right).sum())

    def require_nonempty(self) -> None:
        """Raise :class:`EmptyDatasetError` when the dataset has no intervals."""
        if len(self) == 0:
            raise EmptyDatasetError("operation requires a non-empty dataset")
