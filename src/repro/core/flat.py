"""FlatAIT — a flattened, array-backed execution engine for the AIT / AWIT.

The pointer-based :class:`~repro.core.ait.AIT` is faithful to the paper but
pays Python-level dispatch for every visited node of every query: attribute
loads, one ``np.searchsorted`` call per node, and a fresh
:class:`~repro.sampling.alias.AliasTable` per ``sample`` call.  Those constant
factors — not the ``O(log^2 n + s)`` asymptotics — dominate wall-clock time.

``FlatAIT`` serialises a *built* tree into a handful of contiguous NumPy
arrays (structure-of-arrays, the layout trick flat interval indexes like HINT
use to beat pointer trees in practice):

* per node: ``centers``, ``left_child`` / ``right_child`` indices (-1 = none),
  and offset/length slices into the list pools;
* four concatenated *list pools* — the per-node stab lists (sorted by left and
  by right endpoint) and subtree lists (idem) laid back to back, values and
  interval ids side by side;
* for weighted trees, pools of per-node inclusive weight prefix sums aligned
  with each list pool.

On top of that layout it offers **batch** query APIs — :meth:`count_many`,
:meth:`report_many`, :meth:`sample_many`, :meth:`total_weight_many` — that
advance *all* queries through the tree level-synchronously: one round
classifies every live query against its current node's center (the three
cases of Algorithm 1) with pure array ops, resolves all binary searches of
the round with two global ``np.searchsorted`` calls over precomputed rank
keys (see :meth:`FlatAIT._build_rank_keys`), emits node records as flat
arrays, and descends.  The per-query Python interpreter work drops from
``O(height)`` to ``O(1)``, which is worth an order of magnitude on realistic
batch sizes.

Scalar :meth:`count` / :meth:`report` / :meth:`sample` fast paths reuse the
same arrays (no node objects, no per-node attribute chasing) and skip alias
table construction entirely — records are few (``O(log n)``), so a direct
draw (<= 2 records) or one cumulative inverse-CDF search is cheaper than
building a Walker table per query.

The engine is a *snapshot*: updates applied to the owning ``AIT`` after
:meth:`from_tree` are not visible.  :meth:`AIT.flat` re-snapshots lazily
whenever the tree structure has changed; the batch-insertion pool is scanned
separately by the ``AIT`` wrappers, exactly like the scalar query path does.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from ..kernels import resolve_backend
from ..kernels.numpy_backend import segmented_cumsum as _numpy_segmented_cumsum
from ..sampling.rng import RandomState, resolve_rng
from .errors import EmptyResultError, InvalidIntervalError, InvalidWeightError
from .query import QueryLike, coerce_query, coerce_query_batch, validate_sample_size

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .ait import AIT

__all__ = ["FlatAIT"]

_ID = np.int64
_F8 = np.float64

#: Pool order used for the concatenated id / weight-prefix super-pools.
#: Indices match :class:`~repro.core.records.ListKind`:
#: 0 = stab by left, 1 = stab by right, 2 = subtree by right, 3 = subtree by left.
_KIND_COUNT = 4


class _RecordBatch:
    """Node records for a whole query batch, as flat parallel arrays.

    ``query`` holds the query ordinal of each record; ``glo``/``ghi`` the
    inclusive global index range into the concatenated id super-pool
    (:attr:`FlatAIT._all_ids`); ``gbase`` the start of the owning node
    segment inside that super-pool (needed to read per-node weight prefixes);
    ``weight`` the record's total sampling weight.  Records of one query are
    stored consecutively in traversal order once :meth:`sorted_by_query` has
    been applied.
    """

    __slots__ = ("query", "glo", "ghi", "gbase", "weight")

    def __init__(
        self,
        query: np.ndarray,
        glo: np.ndarray,
        ghi: np.ndarray,
        gbase: np.ndarray,
        weight: np.ndarray,
    ) -> None:
        self.query = query
        self.glo = glo
        self.ghi = ghi
        self.gbase = gbase
        self.weight = weight

    def __len__(self) -> int:
        return int(self.query.shape[0])

    @property
    def counts(self) -> np.ndarray:
        """Number of intervals covered by each record."""
        return self.ghi - self.glo + 1

    def sorted_by_query(self) -> "_RecordBatch":
        """Records grouped by query (stable, so traversal order is preserved)."""
        order = np.argsort(self.query, kind="stable")
        return _RecordBatch(
            self.query[order],
            self.glo[order],
            self.ghi[order],
            self.gbase[order],
            self.weight[order],
        )


def _ranges_to_indices(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(starts[i], starts[i] + lengths[i])`` for all i.

    Standard O(total) vectorised expansion: seed an array of ones, place jump
    deltas at run boundaries, and cumulative-sum.  All lengths must be >= 1.
    """
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=_ID)
    out = np.ones(total, dtype=_ID)
    out[0] = starts[0]
    boundaries = np.cumsum(lengths)[:-1]
    out[boundaries] = starts[1:] - (starts[:-1] + lengths[:-1] - 1)
    return np.cumsum(out)


#: Inclusive prefix sums per segment, bit-identical to per-segment
#: ``np.cumsum``.  The canonical implementation moved to the kernel tier
#: (:func:`repro.kernels.numpy_backend.segmented_cumsum`); this module-level
#: alias keeps the long-standing name for existing callers and tests.
_segmented_cumsum = _numpy_segmented_cumsum


class FlatAIT:
    """Structure-of-arrays snapshot of a built AIT / AWIT with batch queries.

    Build it with :meth:`from_tree` (or, more conveniently, via
    :meth:`repro.AIT.flat`).  All query methods exclude the owning tree's
    batch-insertion pool — the ``AIT`` wrapper methods merge pooled intervals
    in, mirroring how the scalar path scans the pool per query.

    Examples
    --------
    >>> from repro import AIT, IntervalDataset
    >>> data = IntervalDataset.from_pairs([(0, 10), (5, 15), (20, 30)])
    >>> engine = AIT(data).flat()
    >>> engine.count_many([(4, 12), (18, 25)]).tolist()
    [2, 1]
    """

    #: Snapshot array schema: ``(public name, attribute)`` for the 13 core
    #: arrays.  Shared by the persistence layer (:mod:`repro.persist.snapshot`)
    #: and the shared-memory publisher (:mod:`repro.service.shm`), so every
    #: serialisation of a snapshot enumerates exactly the same fields.
    #: ``all_weight_prefix`` is ``None`` for unweighted snapshots.
    CORE_FIELDS = (
        ("centers", "_centers"),
        ("left_child", "_left_child"),
        ("right_child", "_right_child"),
        ("stab_off", "_stab_off"),
        ("stab_len", "_stab_len"),
        ("sub_off", "_sub_off"),
        ("sub_len", "_sub_len"),
        ("stab_lefts", "_stab_lefts"),
        ("stab_rights", "_stab_rights"),
        ("sub_lefts", "_sub_lefts"),
        ("sub_rights", "_sub_rights"),
        ("all_ids", "_all_ids"),
        ("all_weight_prefix", "_all_weight_prefix"),
    )
    #: The 4 derived rank-key pools (:meth:`_build_rank_keys`).  Optional in
    #: any serialised form: :meth:`from_buffers` adopts them when present and
    #: recomputes them otherwise.
    RANK_KEY_FIELDS = (
        ("rank_stab_lefts", "_stab_lefts_key"),
        ("rank_stab_rights", "_stab_rights_key"),
        ("rank_sub_lefts", "_sub_lefts_key"),
        ("rank_sub_rights", "_sub_rights_key"),
    )

    def __init__(
        self,
        centers: np.ndarray,
        left_child: np.ndarray,
        right_child: np.ndarray,
        stab_off: np.ndarray,
        stab_len: np.ndarray,
        sub_off: np.ndarray,
        sub_len: np.ndarray,
        stab_lefts: np.ndarray,
        stab_rights: np.ndarray,
        sub_lefts: np.ndarray,
        sub_rights: np.ndarray,
        all_ids: np.ndarray,
        all_weight_prefix: Optional[np.ndarray],
        weighted: bool,
        kernel_backend=None,
    ) -> None:
        self._kernels = resolve_backend(kernel_backend)
        self._centers = centers
        self._left_child = left_child
        self._right_child = right_child
        self._stab_off = stab_off
        self._stab_len = stab_len
        self._sub_off = sub_off
        self._sub_len = sub_len
        self._stab_lefts = stab_lefts
        self._stab_rights = stab_rights
        self._sub_lefts = sub_lefts
        self._sub_rights = sub_rights
        # Id super-pool: the four list pools concatenated in ListKind order
        # (stab-by-left, stab-by-right, subtree-by-right, subtree-by-left),
        # so a (kind, pool index) pair maps to one flat index.
        self._all_ids = all_ids
        self._all_weight_prefix = all_weight_prefix
        self._weighted = bool(weighted)
        stab_total = int(stab_lefts.shape[0])
        sub_total = int(sub_lefts.shape[0])
        self._kind_base = np.array(
            [0, stab_total, 2 * stab_total, 2 * stab_total + sub_total], dtype=_ID
        )
        # Set by from_tree: the serialised node objects in preorder and their
        # id() -> index map.  Holding strong references keeps the node object
        # ids stable, which is what lets a later incremental refresh match
        # this snapshot's segments against the owning tree's dirty journal.
        self._nodes: Optional[list] = None
        self._node_index: Optional[dict[int, int]] = None
        #: True when this snapshot was produced by the delta-aware splice
        #: path of :meth:`from_tree` rather than a full re-flatten.
        self.built_incrementally = False
        self._build_rank_keys()

    def _build_rank_keys(self) -> None:
        """Precompute rank keys turning per-segment binary searches into two
        global ``np.searchsorted`` calls.

        Every value in every list pool is an endpoint of an active interval,
        and the root's subtree lists are exactly the globally sorted endpoint
        columns — so they serve as free rank dictionaries.  Each pool element
        gets the integer key ``node * M + rank(value)``; keys are globally
        nondecreasing (pools are laid out in node order and sorted within a
        node), so the insertion point of a query endpoint inside *any* node's
        segment is ``searchsorted(keys, node * M + rank(endpoint))`` — no
        per-lane binary-search loop, just two C-level searches per batch.

        The ranks themselves need no binary search either: every pool value
        is some active interval's endpoint, so its first-occurrence rank in
        the root column can be scattered once per interval id and gathered
        per pool element — O(pool) gathers instead of O(pool log n) searches,
        which measurably shortens snapshot construction at millions of list
        entries.
        """
        n_active = int(self._sub_len[0]) if self.node_count else 0
        self._sorted_lefts = self._sub_lefts[:n_active]
        self._sorted_rights = self._sub_rights[:n_active]
        self._rank_m = n_active + 1
        if n_active == 0:
            empty = np.empty(0, dtype=_ID)
            self._stab_lefts_key = empty
            self._stab_rights_key = empty
            self._sub_lefts_key = empty
            self._sub_rights_key = empty
            return

        def first_occurrence_ranks(sorted_values: np.ndarray) -> np.ndarray:
            # rank(v) == searchsorted(sorted_values, v, 'left') for members.
            first = np.empty(n_active, dtype=bool)
            first[0] = True
            np.not_equal(sorted_values[1:], sorted_values[:-1], out=first[1:])
            return np.maximum.accumulate(
                np.where(first, np.arange(n_active, dtype=_ID), 0)
            )

        kb = self._kind_base
        root_by_right = self._all_ids[kb[2] : kb[2] + n_active]
        root_by_left = self._all_ids[kb[3] : kb[3] + n_active]
        size = int(max(root_by_left.max(), root_by_right.max())) + 1
        if size <= max(16 * n_active, 1 << 20):
            # Dense id space (every internal caller: ids are column rows):
            # one scatter per dictionary, O(1) lookups.
            rank_left_of = np.empty(size, dtype=_ID)
            rank_right_of = np.empty(size, dtype=_ID)
            rank_left_of[root_by_left] = first_occurrence_ranks(self._sorted_lefts)
            rank_right_of[root_by_right] = first_occurrence_ranks(self._sorted_rights)
        else:
            # Sparse id space (from_arrays with caller-supplied huge ids): an
            # id-sized scatter table would be absurd, so compact the ids and
            # look ranks up through one searchsorted per pool instead.
            unique_ids = np.sort(root_by_left)
            rank_left_of = np.empty(n_active, dtype=_ID)
            rank_right_of = np.empty(n_active, dtype=_ID)
            rank_left_of[np.searchsorted(unique_ids, root_by_left)] = (
                first_occurrence_ranks(self._sorted_lefts)
            )
            rank_right_of[np.searchsorted(unique_ids, root_by_right)] = (
                first_occurrence_ranks(self._sorted_rights)
            )

            class _CompactLookup:
                __slots__ = ("table",)

                def __init__(self, table: np.ndarray) -> None:
                    self.table = table

                def __getitem__(self, id_segment: np.ndarray) -> np.ndarray:
                    return self.table[np.searchsorted(unique_ids, id_segment)]

            rank_left_of = _CompactLookup(rank_left_of)
            rank_right_of = _CompactLookup(rank_right_of)

        def node_base(lengths: np.ndarray) -> np.ndarray:
            node_of = np.repeat(np.arange(lengths.shape[0], dtype=_ID), lengths)
            node_of *= self._rank_m
            return node_of

        stab_base = node_base(self._stab_len)
        sub_base = node_base(self._sub_len)
        self._stab_lefts_key = stab_base + rank_left_of[self._all_ids[kb[0] : kb[1]]]
        self._stab_rights_key = stab_base + rank_right_of[self._all_ids[kb[1] : kb[2]]]
        self._sub_rights_key = sub_base + rank_right_of[self._all_ids[kb[2] : kb[3]]]
        self._sub_lefts_key = sub_base + rank_left_of[self._all_ids[kb[3] :]]

    def _rank_search(
        self,
        key_pool: np.ndarray,
        sorted_values: np.ndarray,
        nodes: np.ndarray,
        needles: np.ndarray,
        side: str,
    ) -> np.ndarray:
        """Insertion points of ``needles`` inside the given nodes' segments.

        Equivalent to a segmented ``searchsorted`` over each node's sorted
        run, resolved through the precomputed rank keys.  Delegates to the
        active kernel backend (:meth:`repro.kernels.KernelBackend.rank_search`).
        """
        return self._kernels.rank_search(
            key_pool, sorted_values, self._rank_m, nodes, needles, side
        )

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_tree(
        cls,
        tree: "AIT",
        previous: Optional["FlatAIT"] = None,
        dirty: Optional[dict] = None,
        max_dirty_fraction: float = 0.5,
        kernel_backend=None,
    ) -> "FlatAIT":
        """Serialise the current structure of ``tree`` into flat arrays.

        With ``previous`` (the last snapshot of the same tree) and ``dirty``
        (the tree's dirty-node journal: ``id(node) -> node`` for every node
        whose lists changed since that snapshot), the serialisation is
        *delta-aware*: pool segments of clean nodes are spliced out of the
        previous snapshot's arrays in contiguous runs, and only dirty or
        newly created nodes are re-gathered from their node objects.  The
        result is bit-identical to a full re-flatten.

        A full rebuild remains the fallback when no usable previous snapshot
        exists or the dirty node fraction exceeds ``max_dirty_fraction``
        (re-gathering nearly everything through the splice path would only
        add bookkeeping).  Check :attr:`built_incrementally` on the result —
        or the owning tree's ``snapshot_full_builds`` /
        ``snapshot_incremental_refreshes`` counters — to see which path ran.
        """
        if previous is not None and dirty is not None:
            engine = cls._incremental_from_tree(
                tree, previous, dirty, max_dirty_fraction, kernel_backend=kernel_backend
            )
            if engine is not None:
                return engine
        return cls._full_from_tree(tree, kernel_backend=kernel_backend)

    @classmethod
    def from_arrays(
        cls,
        lefts,
        rights,
        ids=None,
        weights=None,
        kernel_backend=None,
    ) -> "FlatAIT":
        """Build the flattened index directly from endpoint arrays — no node tree.

        This is the *treeless columnar builder*: an iterative,
        level-synchronous replay of the AIT construction (median centers,
        three-way stab / left-subtree / right-subtree split) executed entirely
        on NumPy arrays.  The output is **bit-identical** to
        ``FlatAIT.from_tree(AIT(dataset))`` for a freshly built tree over the
        same intervals — same preorder node layout, same pool contents, same
        weight prefixes — but skips every Python-level ``AITNode`` allocation
        and per-node list gather, which makes it the fast path for full
        (re)builds of large snapshots.

        Per level, the builder keeps three pools grouped into per-node
        segments: the live interval positions in by-left order (``L^l`` /
        ``AL^l`` order), in by-right order (``L^r`` / ``AL^r``), and the
        merged endpoint multiset in sorted order.  One round computes every
        node's center from the two middle endpoints of its merged segment,
        classifies all live intervals against their node's center with pure
        array ops, extracts the stab lists, and forwards the two subtree
        classes to the next level — boolean masking preserves both sort
        orders, so no re-sorting is ever needed below the root.  A final
        vectorised BFS-to-preorder renumbering assembles the pools in the
        exact layout :meth:`from_tree` produces.

        Parameters
        ----------
        lefts, rights:
            Endpoint columns of the intervals to index (validated: finite,
            ``lefts <= rights``).
        ids:
            Interval ids stored in the list pools; defaults to
            ``arange(len(lefts))``.
        weights:
            When given, builds the weighted (AWIT) layout with per-list
            inclusive weight-prefix pools (validated: finite, non-negative).

        Examples
        --------
        >>> import numpy as np
        >>> from repro import FlatAIT
        >>> engine = FlatAIT.from_arrays([0.0, 5.0, 20.0], [10.0, 15.0, 30.0])
        >>> engine.count_many([(4, 12), (18, 25)]).tolist()
        [2, 1]
        """
        lefts = np.ascontiguousarray(lefts, dtype=_F8).reshape(-1)
        rights = np.ascontiguousarray(rights, dtype=_F8).reshape(-1)
        n = int(lefts.shape[0])
        if int(rights.shape[0]) != n:
            raise InvalidIntervalError(
                f"from_arrays expects equally long columns, got {n} lefts and "
                f"{rights.shape[0]} rights"
            )
        if ids is None:
            ids = np.arange(n, dtype=_ID)
        else:
            ids = np.ascontiguousarray(ids, dtype=_ID).reshape(-1)
            if int(ids.shape[0]) != n:
                raise InvalidIntervalError(
                    f"from_arrays got {ids.shape[0]} ids for {n} intervals"
                )
            # Duplicate or negative ids would silently corrupt the rank-key
            # dictionaries (they are scattered per id in _build_rank_keys);
            # reject them like every other malformed input.
            if n and int(ids.min()) < 0:
                raise InvalidIntervalError("from_arrays ids must be non-negative")
            if n and int(np.unique(ids).shape[0]) != n:
                raise InvalidIntervalError("from_arrays ids must be unique")
        finite = np.isfinite(lefts) & np.isfinite(rights)
        if not finite.all():
            bad = int(np.flatnonzero(~finite)[0])
            raise InvalidIntervalError(
                f"interval endpoints must be finite, got [{lefts[bad]}, {rights[bad]}] "
                f"at position {bad}"
            )
        inverted = lefts > rights
        if inverted.any():
            bad = int(np.flatnonzero(inverted)[0])
            raise InvalidIntervalError(
                f"interval left endpoint must not exceed right endpoint, got "
                f"[{lefts[bad]}, {rights[bad]}] at position {bad}"
            )
        weighted = weights is not None
        if weighted:
            weights = np.ascontiguousarray(weights, dtype=_F8).reshape(-1)
            if int(weights.shape[0]) != n:
                raise InvalidWeightError(
                    f"from_arrays got {weights.shape[0]} weights for {n} intervals"
                )
            valid = np.isfinite(weights) & (weights >= 0)
            if not valid.all():
                bad = int(np.flatnonzero(~valid)[0])
                raise InvalidWeightError(
                    f"interval weight must be finite and non-negative, got "
                    f"{weights[bad]!r} at position {bad}"
                )

        if n == 0:
            return cls(
                np.empty(0, dtype=_F8),
                np.empty(0, dtype=_ID),
                np.empty(0, dtype=_ID),
                np.empty(0, dtype=_ID),
                np.empty(0, dtype=_ID),
                np.empty(0, dtype=_ID),
                np.empty(0, dtype=_ID),
                np.empty(0, dtype=_F8),
                np.empty(0, dtype=_F8),
                np.empty(0, dtype=_F8),
                np.empty(0, dtype=_F8),
                np.empty(0, dtype=_ID),
                np.empty(0, dtype=_F8) if weighted else None,
                weighted,
                kernel_backend=kernel_backend,
            )

        # ---- level-synchronous partitioning over positions 0..n-1 -------- #
        # Two pools, each grouped into contiguous per-node segments: the live
        # interval positions in by-left order and in by-right order.  Both
        # inherit their in-segment ordering through the boolean-mask splits
        # below, exactly like the recursive build's children do.  Positions
        # are 32-bit where possible — these are the hot per-level arrays, and
        # halving their width measurably cuts the whole build.
        pos_dtype = np.int32 if n < 2**31 - 1 else _ID
        cur_l = np.argsort(lefts, kind="stable").astype(pos_dtype, copy=False)
        cur_r = np.argsort(rights, kind="stable").astype(pos_dtype, copy=False)
        seg_len = np.array([n], dtype=_ID)

        cls_buf = np.empty(n, dtype=np.int8)

        lv_centers: list[np.ndarray] = []
        lv_seg_len: list[np.ndarray] = []
        lv_stab_counts: list[np.ndarray] = []
        lv_stab_l: list[np.ndarray] = []
        lv_stab_r: list[np.ndarray] = []
        lv_sub_l: list[np.ndarray] = []
        lv_sub_r: list[np.ndarray] = []
        lv_left_child: list[np.ndarray] = []
        lv_right_child: list[np.ndarray] = []
        lv_first_node: list[int] = []
        node_total = 0

        def merged_kth(sorted_l, sorted_r, off, m, count):
            """Per segment, the ``count``-th smallest (1-based) of the union
            of its m sorted left values and m sorted right values.

            Vectorised binary search on the split point (how many values the
            union prefix takes from the left column) — O(k log m) instead of
            materialising merged endpoint pools, with clipped gathers keeping
            converged lanes in bounds.
            """
            lo = np.maximum(count - m, 0)
            hi = np.minimum(count, m)
            while True:
                active = lo < hi
                if not active.any():
                    break
                i = (lo + hi) >> 1
                j = count - i
                take_more = active & (
                    sorted_r[off + np.maximum(j - 1, 0)]
                    > sorted_l[off + np.minimum(i, m - 1)]
                )
                lo = np.where(take_more, i + 1, lo)
                hi = np.where(active & ~take_more, i, hi)
            i = lo
            j = count - i
            from_l = np.where(
                i > 0, sorted_l[off + np.maximum(i - 1, 0)], -np.inf
            )
            from_r = np.where(
                j > 0, sorted_r[off + np.maximum(j - 1, 0)], -np.inf
            )
            return np.maximum(from_l, from_r)

        while seg_len.shape[0]:
            k = int(seg_len.shape[0])
            lv_first_node.append(node_total)
            m = seg_len
            off = np.concatenate(([0], np.cumsum(m)[:-1])).astype(_ID, copy=False)

            seg_lefts = lefts[cur_l]
            seg_rights = rights[cur_l]
            sorted_rights = rights[cur_r]
            # Median of each node's 2m merged endpoints: the mean of the two
            # middle order statistics, matching np.median on an even-length
            # array bit for bit.
            centers = (
                merged_kth(seg_lefts, sorted_rights, off, m, m)
                + merged_kth(seg_lefts, sorted_rights, off, m, m + 1)
            ) / 2.0

            cen = np.repeat(centers, m)
            left_m = seg_rights < cen
            right_m = seg_lefts > cen
            # Classify once per interval (each lives in exactly one node per
            # level) and scatter, so the by-right pool reuses the decision
            # instead of re-deriving it from endpoint comparisons.
            codes = np.ones(cur_l.shape[0], dtype=np.int8)
            codes[left_m] = 0
            codes[right_m] = 2
            cls_buf[cur_l] = codes
            cls_r = cls_buf[cur_r]

            node_of = np.repeat(np.arange(k, dtype=pos_dtype), m)
            stab_m = codes == 1
            stab_counts = np.bincount(node_of[stab_m], minlength=k).astype(_ID, copy=False)
            lv_centers.append(centers)
            lv_seg_len.append(m)
            lv_stab_counts.append(stab_counts)
            lv_stab_l.append(cur_l[stab_m])
            lv_stab_r.append(cur_r[cls_r == 1])
            lv_sub_l.append(cur_l)
            lv_sub_r.append(cur_r)

            left_counts = np.bincount(node_of[left_m], minlength=k).astype(_ID, copy=False)
            right_counts = np.bincount(node_of[right_m], minlength=k).astype(
                _ID, copy=False
            )
            has_left = left_counts > 0
            has_right = right_counts > 0
            n_left = int(has_left.sum())
            n_right = int(has_right.sum())
            lchild = np.full(k, -1, dtype=_ID)
            rchild = np.full(k, -1, dtype=_ID)
            # Children get BFS ids on the next level: all left children of
            # the level first, then all right children — matching the
            # concatenation order of the next level's segments below.  (The
            # final preorder renumbering erases this choice.)
            base = node_total + k
            lchild[has_left] = base + np.arange(n_left, dtype=_ID)
            rchild[has_right] = base + n_left + np.arange(n_right, dtype=_ID)
            lv_left_child.append(lchild)
            lv_right_child.append(rchild)
            node_total += k

            if n_left + n_right:
                cur_l = np.concatenate((cur_l[left_m], cur_l[right_m]))
                cur_r = np.concatenate((cur_r[cls_r == 0], cur_r[cls_r == 2]))
                seg_len = np.concatenate(
                    (left_counts[has_left], right_counts[has_right])
                )
            else:
                seg_len = np.empty(0, dtype=_ID)

        # ---- BFS -> preorder renumbering --------------------------------- #
        total_nodes = node_total
        bfs_center = np.concatenate(lv_centers)
        bfs_sub_len = np.concatenate(lv_seg_len).astype(_ID, copy=False)
        bfs_stab_len = np.concatenate(lv_stab_counts).astype(_ID, copy=False)
        bfs_left = np.concatenate(lv_left_child)
        bfs_right = np.concatenate(lv_right_child)

        level_count = len(lv_centers)
        # Subtree node counts, bottom-up (children live one level deeper).
        subtree_nodes = np.ones(total_nodes, dtype=_ID)
        for li in range(level_count - 1, -1, -1):
            start = lv_first_node[li]
            stop = start + lv_centers[li].shape[0]
            lc = bfs_left[start:stop]
            rc = bfs_right[start:stop]
            extra = np.zeros(stop - start, dtype=_ID)
            has = lc >= 0
            extra[has] = subtree_nodes[lc[has]]
            has = rc >= 0
            extra[has] += subtree_nodes[rc[has]]
            subtree_nodes[start:stop] = 1 + extra
        # Preorder ranks, top-down: left child follows its parent directly,
        # the right child follows the whole left subtree.
        pos = np.empty(total_nodes, dtype=_ID)
        pos[0] = 0
        for li in range(level_count):
            start = lv_first_node[li]
            stop = start + lv_centers[li].shape[0]
            lc = bfs_left[start:stop]
            rc = bfs_right[start:stop]
            parent_pos = pos[start:stop]
            has_l = lc >= 0
            pos[lc[has_l]] = parent_pos[has_l] + 1
            right_base = parent_pos + 1
            right_base = right_base.copy()
            right_base[has_l] += subtree_nodes[lc[has_l]]
            has_r = rc >= 0
            pos[rc[has_r]] = right_base[has_r]

        centers = np.empty(total_nodes, dtype=_F8)
        centers[pos] = bfs_center
        stab_len = np.empty(total_nodes, dtype=_ID)
        stab_len[pos] = bfs_stab_len
        sub_len = np.empty(total_nodes, dtype=_ID)
        sub_len[pos] = bfs_sub_len
        left_child = np.full(total_nodes, -1, dtype=_ID)
        has = bfs_left >= 0
        left_child[pos[has]] = pos[bfs_left[has]]
        right_child = np.full(total_nodes, -1, dtype=_ID)
        has = bfs_right >= 0
        right_child[pos[has]] = pos[bfs_right[has]]
        stab_off = np.concatenate(([0], np.cumsum(stab_len)[:-1])).astype(_ID, copy=False)
        sub_off = np.concatenate(([0], np.cumsum(sub_len)[:-1])).astype(_ID, copy=False)

        # ---- pool assembly in preorder ----------------------------------- #
        # Per-node start offsets into the level-concatenated stab / sub
        # arrays, then one index expansion per pool family gathers every
        # node's segment in preorder.
        all_stab_l = np.concatenate(lv_stab_l)
        all_stab_r = np.concatenate(lv_stab_r)
        all_sub_l = np.concatenate(lv_sub_l)
        all_sub_r = np.concatenate(lv_sub_r)
        bfs_stab_start = np.empty(total_nodes, dtype=_ID)
        bfs_sub_start = np.empty(total_nodes, dtype=_ID)
        stab_base = 0
        sub_base = 0
        for li in range(level_count):
            start = lv_first_node[li]
            k = lv_centers[li].shape[0]
            counts = lv_stab_counts[li]
            bfs_stab_start[start : start + k] = stab_base + np.concatenate(
                ([0], np.cumsum(counts)[:-1])
            )
            stab_base += int(counts.sum())
            counts = lv_seg_len[li]
            bfs_sub_start[start : start + k] = sub_base + np.concatenate(
                ([0], np.cumsum(counts)[:-1])
            )
            sub_base += int(counts.sum())
        stab_start = np.empty(total_nodes, dtype=_ID)
        stab_start[pos] = bfs_stab_start
        sub_start = np.empty(total_nodes, dtype=_ID)
        sub_start[pos] = bfs_sub_start

        nz = stab_len > 0
        stab_idx = _ranges_to_indices(stab_start[nz], stab_len[nz])
        nz = sub_len > 0
        sub_idx = _ranges_to_indices(sub_start[nz], sub_len[nz])
        stab_pos_l = all_stab_l[stab_idx]
        stab_pos_r = all_stab_r[stab_idx]
        sub_pos_l = all_sub_l[sub_idx]
        sub_pos_r = all_sub_r[sub_idx]

        if n == int(ids.shape[0]) and ids[0] == 0 and ids[-1] == n - 1 and np.array_equal(
            ids, np.arange(n, dtype=_ID)
        ):
            # Identity id map (the common full-build case): positions ARE the
            # ids, so skip four pool-sized random gathers.
            id_pools = (stab_pos_l, stab_pos_r, sub_pos_r, sub_pos_l)
            all_ids = np.concatenate(id_pools).astype(_ID, copy=False)
        else:
            all_ids = np.concatenate(
                (ids[stab_pos_l], ids[stab_pos_r], ids[sub_pos_r], ids[sub_pos_l])
            )
        all_weight_prefix = None
        if weighted:
            cumsum = resolve_backend(kernel_backend).segmented_cumsum
            all_weight_prefix = np.concatenate(
                (
                    cumsum(weights[stab_pos_l], stab_len),
                    cumsum(weights[stab_pos_r], stab_len),
                    cumsum(weights[sub_pos_r], sub_len),
                    cumsum(weights[sub_pos_l], sub_len),
                )
            )
        return cls(
            centers,
            left_child,
            right_child,
            stab_off,
            stab_len,
            sub_off,
            sub_len,
            lefts[stab_pos_l],
            rights[stab_pos_r],
            lefts[sub_pos_l],
            rights[sub_pos_r],
            all_ids,
            all_weight_prefix,
            weighted,
            kernel_backend=kernel_backend,
        )

    def to_buffers(self) -> dict[str, np.ndarray]:
        """Every array of this snapshot as a flat ``{name: array}`` mapping.

        The inverse of :meth:`from_buffers`: core arrays plus the derived
        rank-key pools, keyed by the :attr:`CORE_FIELDS` /
        :attr:`RANK_KEY_FIELDS` names.  ``None`` entries (the weight prefix
        of an unweighted snapshot) are omitted.  The arrays are the live
        ones, not copies — callers serialising them must copy.
        """
        out: dict[str, np.ndarray] = {}
        for name, attr in self.CORE_FIELDS + self.RANK_KEY_FIELDS:
            array = getattr(self, attr)
            if array is not None:
                out[name] = array
        return out

    @classmethod
    def from_buffers(cls, arrays: dict, weighted: bool, kernel_backend=None) -> "FlatAIT":
        """Reassemble a snapshot around existing buffers without copying.

        ``arrays`` maps :attr:`CORE_FIELDS` names (plus, optionally,
        :attr:`RANK_KEY_FIELDS` names) to arrays — typically views into a
        memory-mapped snapshot file or a ``multiprocessing.shared_memory``
        segment.  Bypasses ``__init__`` so saved rank-key pools are adopted
        instead of recomputed: recomputation would touch every page of the
        backing store, defeating lazy attach.  Derived scalars and views
        (``_kind_base``, the root-sorted endpoint views, ``_rank_m``) are
        cheap and rebuilt in place.  The returned snapshot aliases the given
        buffers: they must outlive it and stay unmodified.
        """
        flat = cls.__new__(cls)
        flat._kernels = resolve_backend(kernel_backend)
        for name, attr in cls.CORE_FIELDS:
            setattr(flat, attr, arrays.get(name))
        if flat._all_weight_prefix is None and weighted:
            raise InvalidWeightError(
                "weighted snapshot buffers are missing the all_weight_prefix array"
            )
        flat._weighted = bool(weighted)
        stab_total = int(flat._stab_lefts.shape[0])
        sub_total = int(flat._sub_lefts.shape[0])
        flat._kind_base = np.array(
            [0, stab_total, 2 * stab_total, 2 * stab_total + sub_total], dtype=_ID
        )
        flat._nodes = None
        flat._node_index = None
        flat.built_incrementally = False
        have_keys = all(
            arrays.get(name) is not None for name, _ in cls.RANK_KEY_FIELDS
        )
        if have_keys:
            for name, attr in cls.RANK_KEY_FIELDS:
                setattr(flat, attr, arrays[name])
            n_active = int(flat._sub_len[0]) if flat._centers.shape[0] else 0
            flat._sorted_lefts = flat._sub_lefts[:n_active]
            flat._sorted_rights = flat._sub_rights[:n_active]
            flat._rank_m = n_active + 1
        else:
            flat._build_rank_keys()
        return flat

    @staticmethod
    def _walk_preorder(tree: "AIT") -> list:
        """The tree's nodes in preorder (node index = discovery order)."""
        nodes: list = []
        if tree.root is not None:
            stack = [tree.root]
            while stack:
                node = stack.pop()
                nodes.append(node)
                if node.right is not None:
                    stack.append(node.right)
                if node.left is not None:
                    stack.append(node.left)
        return nodes

    @classmethod
    def _full_from_tree(cls, tree: "AIT", kernel_backend=None) -> "FlatAIT":
        """Classic full serialisation: walk every node, gather every list."""
        weighted = tree.is_weighted
        nodes = cls._walk_preorder(tree)
        m = len(nodes)
        index_of = {id(node): i for i, node in enumerate(nodes)}

        centers = np.empty(m, dtype=_F8)
        left_child = np.full(m, -1, dtype=_ID)
        right_child = np.full(m, -1, dtype=_ID)
        stab_len = np.empty(m, dtype=_ID)
        sub_len = np.empty(m, dtype=_ID)
        for i, node in enumerate(nodes):
            centers[i] = node.center
            if node.left is not None:
                left_child[i] = index_of[id(node.left)]
            if node.right is not None:
                right_child[i] = index_of[id(node.right)]
            stab_len[i] = node.stab_ids_by_left.shape[0]
            sub_len[i] = node.subtree_ids_by_left.shape[0]
        stab_off = np.concatenate(([0], np.cumsum(stab_len)[:-1])) if m else np.empty(0, dtype=_ID)
        sub_off = np.concatenate(([0], np.cumsum(sub_len)[:-1])) if m else np.empty(0, dtype=_ID)

        def _cat(arrays, dtype):
            if not arrays:
                return np.empty(0, dtype=dtype)
            return np.concatenate(arrays).astype(dtype, copy=False)

        stab_lefts = _cat([n.stab_lefts for n in nodes], _F8)
        stab_rights = _cat([n.stab_rights for n in nodes], _F8)
        sub_lefts = _cat([n.subtree_lefts for n in nodes], _F8)
        sub_rights = _cat([n.subtree_rights for n in nodes], _F8)
        all_ids = _cat(
            [n.stab_ids_by_left for n in nodes]
            + [n.stab_ids_by_right for n in nodes]
            + [n.subtree_ids_by_right for n in nodes]
            + [n.subtree_ids_by_left for n in nodes],
            _ID,
        )
        all_weight_prefix = None
        if weighted:
            all_weight_prefix = _cat(
                [n.stab_weight_by_left for n in nodes]
                + [n.stab_weight_by_right for n in nodes]
                + [n.subtree_weight_by_right for n in nodes]
                + [n.subtree_weight_by_left for n in nodes],
                _F8,
            )
        engine = cls(
            centers,
            left_child,
            right_child,
            stab_off.astype(_ID, copy=False),
            stab_len,
            sub_off.astype(_ID, copy=False),
            sub_len,
            stab_lefts,
            stab_rights,
            sub_lefts,
            sub_rights,
            all_ids,
            all_weight_prefix,
            weighted,
            kernel_backend=kernel_backend,
        )
        engine._nodes = nodes
        engine._node_index = index_of
        return engine

    @classmethod
    def _incremental_from_tree(
        cls,
        tree: "AIT",
        previous: "FlatAIT",
        dirty: dict,
        max_dirty_fraction: float,
        kernel_backend=None,
    ) -> Optional["FlatAIT"]:
        """Delta-aware serialisation; returns None when it cannot apply.

        Splices the pool segments of *clean* nodes (present in ``previous``
        and absent from ``dirty``) out of the previous snapshot's arrays in
        maximal contiguous runs, and gathers only dirty / new nodes from
        their node objects.  Handles created leaves and pruned nodes — the
        current preorder decides segment placement; clean runs just avoid
        re-reading unchanged lists.
        """
        weighted = tree.is_weighted
        if (
            previous._nodes is None
            or previous._node_index is None
            or previous._weighted != weighted
            or previous.node_count == 0
        ):
            return None
        nodes = cls._walk_preorder(tree)
        m = len(nodes)
        if m == 0:
            return None

        old_index = previous._node_index
        clean_old = np.empty(m, dtype=_ID)
        dirty_count = 0
        for i, node in enumerate(nodes):
            nid = id(node)
            if nid in dirty or nid not in old_index:
                clean_old[i] = -1
                dirty_count += 1
            else:
                clean_old[i] = old_index[nid]
        if dirty_count > max_dirty_fraction * m:
            return None

        # Maximal runs: ("old", first_old_index, last_old_index) for clean
        # stretches whose previous positions are contiguous too, or
        # ("new", first_pos, last_pos) for stretches gathered from nodes.
        runs: list[tuple[str, int, int]] = []
        i = 0
        while i < m:
            j = i
            if clean_old[i] >= 0:
                while j + 1 < m and clean_old[j + 1] == clean_old[j] + 1:
                    j += 1
                runs.append(("old", int(clean_old[i]), int(clean_old[j])))
            else:
                while j + 1 < m and clean_old[j + 1] < 0:
                    j += 1
                runs.append(("new", i, j))
            i = j + 1

        centers = np.empty(m, dtype=_F8)
        left_child = np.full(m, -1, dtype=_ID)
        right_child = np.full(m, -1, dtype=_ID)
        stab_len = np.empty(m, dtype=_ID)
        sub_len = np.empty(m, dtype=_ID)
        index_of = {id(node): i for i, node in enumerate(nodes)}
        for i, node in enumerate(nodes):
            centers[i] = node.center
            if node.left is not None:
                left_child[i] = index_of[id(node.left)]
            if node.right is not None:
                right_child[i] = index_of[id(node.right)]
            stab_len[i] = node.stab_ids_by_left.shape[0]
            sub_len[i] = node.subtree_ids_by_left.shape[0]
        stab_off = np.concatenate(([0], np.cumsum(stab_len)[:-1])).astype(_ID, copy=False)
        sub_off = np.concatenate(([0], np.cumsum(sub_len)[:-1])).astype(_ID, copy=False)

        p_stab_off, p_stab_len = previous._stab_off, previous._stab_len
        p_sub_off, p_sub_len = previous._sub_off, previous._sub_len
        p_kind_base = previous._kind_base

        def splice(old_pool, old_off, old_len, attr, base=0):
            """Assemble one pool: old-run slices + per-node arrays for new runs."""
            chunks = []
            for kind, a, b in runs:
                if kind == "old":
                    start = base + int(old_off[a])
                    stop = base + int(old_off[b]) + int(old_len[b])
                    chunks.append(old_pool[start:stop])
                else:
                    chunks.extend(getattr(nodes[p], attr) for p in range(a, b + 1))
            return chunks

        def _cat(arrays, dtype):
            if not arrays:
                return np.empty(0, dtype=dtype)
            return np.concatenate(arrays).astype(dtype, copy=False)

        stab_lefts = _cat(splice(previous._stab_lefts, p_stab_off, p_stab_len, "stab_lefts"), _F8)
        stab_rights = _cat(
            splice(previous._stab_rights, p_stab_off, p_stab_len, "stab_rights"), _F8
        )
        sub_lefts = _cat(splice(previous._sub_lefts, p_sub_off, p_sub_len, "subtree_lefts"), _F8)
        sub_rights = _cat(
            splice(previous._sub_rights, p_sub_off, p_sub_len, "subtree_rights"), _F8
        )
        all_ids = _cat(
            splice(previous._all_ids, p_stab_off, p_stab_len, "stab_ids_by_left", int(p_kind_base[0]))
            + splice(previous._all_ids, p_stab_off, p_stab_len, "stab_ids_by_right", int(p_kind_base[1]))
            + splice(previous._all_ids, p_sub_off, p_sub_len, "subtree_ids_by_right", int(p_kind_base[2]))
            + splice(previous._all_ids, p_sub_off, p_sub_len, "subtree_ids_by_left", int(p_kind_base[3])),
            _ID,
        )
        all_weight_prefix = None
        if weighted:
            prefix = previous._all_weight_prefix
            all_weight_prefix = _cat(
                splice(prefix, p_stab_off, p_stab_len, "stab_weight_by_left", int(p_kind_base[0]))
                + splice(prefix, p_stab_off, p_stab_len, "stab_weight_by_right", int(p_kind_base[1]))
                + splice(prefix, p_sub_off, p_sub_len, "subtree_weight_by_right", int(p_kind_base[2]))
                + splice(prefix, p_sub_off, p_sub_len, "subtree_weight_by_left", int(p_kind_base[3])),
                _F8,
            )
        engine = cls(
            centers,
            left_child,
            right_child,
            stab_off,
            stab_len,
            sub_off,
            sub_len,
            stab_lefts,
            stab_rights,
            sub_lefts,
            sub_rights,
            all_ids,
            all_weight_prefix,
            weighted,
            kernel_backend=kernel_backend,
        )
        engine._nodes = nodes
        engine._node_index = index_of
        engine.built_incrementally = True
        return engine

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def node_count(self) -> int:
        """Number of serialised tree nodes."""
        return int(self._centers.shape[0])

    def arrays_equal(self, other: "FlatAIT", include_rank_keys: bool = True) -> bool:
        """True when every array of both snapshots is bit-identical.

        The shared equality oracle for the two build routes
        (:meth:`from_tree` / :meth:`from_arrays`): structure arrays, all
        list pools, weight prefixes, and (by default) the derived rank-key
        pools.  Used by the equivalence tests, the ``build_throughput``
        experiment and ``scripts/bench_build.py`` so "equal" means one
        thing everywhere.
        """
        names = [
            "_centers",
            "_left_child",
            "_right_child",
            "_stab_off",
            "_stab_len",
            "_sub_off",
            "_sub_len",
            "_stab_lefts",
            "_stab_rights",
            "_sub_lefts",
            "_sub_rights",
            "_all_ids",
            "_all_weight_prefix",
        ]
        if include_rank_keys:
            names += [
                "_stab_lefts_key",
                "_stab_rights_key",
                "_sub_lefts_key",
                "_sub_rights_key",
            ]
        if self._weighted != other._weighted:
            return False
        for name in names:
            mine = getattr(self, name)
            theirs = getattr(other, name)
            if (mine is None) != (theirs is None):
                return False
            if mine is None:
                continue
            if mine.dtype != theirs.dtype or not np.array_equal(mine, theirs):
                return False
        return True

    @property
    def is_weighted(self) -> bool:
        """True when the snapshot carries weight prefix pools (AWIT)."""
        return self._weighted

    @property
    def kernel_backend(self) -> str:
        """Registry name of the kernel backend running the hot loops."""
        return self._kernels.name

    @property
    def kernels(self):
        """The active :class:`~repro.kernels.KernelBackend` instance."""
        return self._kernels

    def nbytes(self, include_rank_keys: bool = True) -> int:
        """Memory footprint of the flat arrays in bytes.

        ``include_rank_keys=False`` excludes the four precomputed rank-key
        pools (:meth:`_build_rank_keys`) — derived acceleration structures
        that could be recomputed from the list pools — leaving only the
        serialised index itself.  The default counts everything the snapshot
        actually holds in memory, which is what capacity planning needs.
        """
        arrays = [
            self._centers,
            self._left_child,
            self._right_child,
            self._stab_off,
            self._stab_len,
            self._sub_off,
            self._sub_len,
            self._stab_lefts,
            self._stab_rights,
            self._sub_lefts,
            self._sub_rights,
            self._all_ids,
            self._all_weight_prefix,
        ]
        if include_rank_keys:
            arrays += [
                self._stab_lefts_key,
                self._stab_rights_key,
                self._sub_lefts_key,
                self._sub_rights_key,
            ]
        return sum(int(arr.nbytes) for arr in arrays if arr is not None)

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save(self, path, fsync: bool = True) -> None:
        """Write this snapshot to a checksummed, page-aligned container file.

        The file stores every array (including the derived rank-key pools,
        so :meth:`load` never has to recompute them) behind a
        self-describing header: magic, format version, dtype/shape table
        and one checksum per array.  The write is atomic — assembled in a
        ``.tmp`` sibling and renamed over ``path``.  See
        :mod:`repro.persist.snapshot` for the format.
        """
        from ..persist.snapshot import save_flat

        save_flat(self, path, fsync=fsync)

    @classmethod
    def load(
        cls, path, mmap: bool = True, verify: bool = True, kernel_backend=None
    ) -> "FlatAIT":
        """Load a snapshot written by :meth:`save`.

        With ``mmap=True`` (default) the arrays are read-only memory maps:
        the load itself is O(header) and pages fault in lazily as queries
        touch them — cold-starting a million-interval index costs
        milliseconds instead of a columnar rebuild.  ``verify=True`` checks
        every array checksum (reads the file once; pages stay cached).
        Raises :class:`~repro.core.errors.SnapshotCorruptError` on any
        validation failure.
        """
        from ..persist.snapshot import load_flat

        return load_flat(path, mmap=mmap, verify=verify, kernel_backend=kernel_backend)

    # ------------------------------------------------------------------ #
    # query coercion
    # ------------------------------------------------------------------ #
    @staticmethod
    def coerce_queries(queries) -> tuple[np.ndarray, np.ndarray]:
        """Normalise a batch of queries to validated ``(lefts, rights)`` arrays.

        Thin alias of :func:`repro.core.query.coerce_query_batch` — accepts
        an ``(n, 2)`` float array (validated vectorised, the fastest input
        path) or any sequence of :class:`Interval` / pair objects.
        """
        return coerce_query_batch(queries)

    # ------------------------------------------------------------------ #
    # batched record collection (Algorithm 1, level-synchronous)
    # ------------------------------------------------------------------ #
    def collect_records_batch(self, ql: np.ndarray, qr: np.ndarray) -> _RecordBatch:
        """Collect node records for every query at once (Algorithm 1, batched).

        Delegates the traversal to the active kernel backend
        (:meth:`repro.kernels.KernelBackend.descend_many`).  The NumPy
        backend advances all still-live queries level-synchronously —
        classify against the current centers (case 1 / 2 / 3), resolve every
        binary search of the round via the precomputed rank keys, emit, and
        descend; loop backends walk each query's path directly.  Either way
        the records come back grouped by query in scalar traversal order —
        part of the backend interface's bit-identity contract.
        """
        return _RecordBatch(*self._kernels.descend_many(self, ql, qr))

    # ------------------------------------------------------------------ #
    # batch queries
    # ------------------------------------------------------------------ #
    def count_many(self, queries) -> np.ndarray:
        """``|q ∩ X|`` for every query, excluding pooled inserts.

        Counting (unlike reporting/sampling) has an exact closed form over
        the flat layout: an interval overlaps ``q`` unless it lies entirely
        left (``right < q.l``) or entirely right (``left > q.r``) of it, and
        those two exclusions are disjoint, so
        ``|q ∩ X| = #(lefts <= q.r) - #(rights < q.l)``.  The root node's
        subtree lists are the globally sorted endpoint columns, so the whole
        batch reduces to two ``np.searchsorted`` calls — no traversal at all.
        The record-based count (what the scalar AIT does) is still available
        via :meth:`collect_records_batch` and produces identical totals.
        """
        return self._count_many(*self.coerce_queries(queries))

    def _count_many(self, ql: np.ndarray, qr: np.ndarray) -> np.ndarray:
        """:meth:`count_many` over pre-coerced endpoint arrays."""
        if self.node_count == 0:
            return np.zeros(ql.shape[0], dtype=_ID)
        return self._kernels.count_node(self._sorted_lefts, self._sorted_rights, ql, qr)

    def total_weight_many(self, queries) -> np.ndarray:
        """Total weight of ``q ∩ X`` for every query (weighted counting).

        Same inclusion-exclusion as :meth:`count_many`, read off the root
        node's weight prefix pools: ``W(q ∩ X) = W(lefts <= q.r) -
        W(rights < q.l)``.
        """
        return self._total_weight_many(*self.coerce_queries(queries))

    def _total_weight_many(self, ql: np.ndarray, qr: np.ndarray) -> np.ndarray:
        """:meth:`total_weight_many` over pre-coerced endpoint arrays."""
        nq = int(ql.shape[0])
        if self.node_count == 0:
            return np.zeros(nq, dtype=_F8)
        if not self._weighted:
            return self._count_many(ql, qr).astype(_F8)
        prefix = self._all_weight_prefix
        n_active = self._sorted_lefts.shape[0]
        # Root segments of the subtree weight pools: by-right at kind 2,
        # by-left at kind 3 (both start at the root's offset 0).
        prefix_by_right = prefix[self._kind_base[2] : self._kind_base[2] + n_active]
        prefix_by_left = prefix[self._kind_base[3] : self._kind_base[3] + n_active]
        not_right, left_of = self._kernels.endpoint_ranks(
            self._sorted_lefts, self._sorted_rights, ql, qr
        )
        weight_not_right = np.where(not_right > 0, prefix_by_left[np.maximum(not_right - 1, 0)], 0.0)
        weight_left_of = np.where(left_of > 0, prefix_by_right[np.maximum(left_of - 1, 0)], 0.0)
        return weight_not_right - weight_left_of

    def report_many(self, queries) -> list[np.ndarray]:
        """Overlapping interval ids per query, in scalar-``report`` order."""
        return self._report_many(*self.coerce_queries(queries))

    def _report_many(self, ql: np.ndarray, qr: np.ndarray) -> list[np.ndarray]:
        """:meth:`report_many` over pre-coerced endpoint arrays."""
        if ql.shape[0] == 0:
            return []
        records = self.collect_records_batch(ql, qr)
        per_query = np.zeros(ql.shape[0], dtype=_ID)
        counts = records.counts
        np.add.at(per_query, records.query, counts)
        total = int(counts.sum())
        if len(records) and total >= 64 * len(records):
            # Few large records: one contiguous memcpy per record beats an
            # element-wise fancy-index gather by a wide margin.
            flat = np.empty(total, dtype=_ID)
            ends = np.cumsum(counts)
            glo, ghi = records.glo, records.ghi
            pos = 0
            for i in range(len(records)):
                end = int(ends[i])
                flat[pos:end] = self._all_ids[glo[i] : ghi[i] + 1]
                pos = end
        else:
            flat = self._all_ids[_ranges_to_indices(records.glo, counts)]
        bounds = np.cumsum(per_query)[:-1]
        return [chunk for chunk in np.split(flat, bounds)]

    def sample_many(
        self,
        queries,
        sample_size: int,
        random_state: RandomState = None,
        on_empty: str = "empty",
    ) -> list[np.ndarray]:
        """Draw ``sample_size`` ids independently from each query's result set.

        Record selection runs as one *batched multinomial* over the per-query
        record weights (records are ``O(log n)`` few, so the dense
        query x record matrix is tiny), then every draw picks its position
        inside the chosen record vectorised across the whole batch, and each
        query's row is shuffled.  The shuffle matters: the multinomial
        produces draws grouped by record, and without it position ``i`` of
        the output would carry information about which record it came from
        (a consumer slicing ``ids[:k]`` would see a biased subsample).  After
        the per-row permutation every position is marginally the exact scalar
        per-draw law (``1/|q ∩ X|``, or ``w(x)/W``) and the sequence is
        exchangeable, matching :meth:`sample`.
        """
        ql, qr = self.coerce_queries(queries)
        return self._sample_many(ql, qr, sample_size, random_state, on_empty)

    def _sample_many(
        self,
        ql: np.ndarray,
        qr: np.ndarray,
        sample_size: int,
        random_state: RandomState = None,
        on_empty: str = "empty",
    ) -> list[np.ndarray]:
        """:meth:`sample_many` over pre-coerced endpoint arrays."""
        sample_size = validate_sample_size(sample_size)
        rng = resolve_rng(random_state)
        nq = int(ql.shape[0])
        records = self.collect_records_batch(ql, qr)

        rec_per_query = np.bincount(records.query, minlength=nq) if len(records) else np.zeros(
            nq, dtype=_ID
        )
        rec_end = np.cumsum(rec_per_query)
        rec_start = rec_end - rec_per_query
        total_weight = np.zeros(nq, dtype=_F8)
        np.add.at(total_weight, records.query, records.weight)
        answerable = (rec_per_query > 0) & (total_weight > 0)

        if on_empty == "raise":
            if not answerable.all():
                bad = int(np.flatnonzero(~answerable)[0])
                raise EmptyResultError(
                    f"query [{ql[bad]}, {qr[bad]}] matched no intervals"
                )
        elif on_empty != "empty":
            raise ValueError(f"on_empty must be 'empty' or 'raise', got {on_empty!r}")

        empty = np.empty(0, dtype=_ID)
        if sample_size == 0 or not answerable.any():
            return [empty.copy() for _ in range(nq)]

        draw_queries = np.flatnonzero(answerable)
        n_live = draw_queries.shape[0]

        # Pass 1: how many of each query's draws land in each of its records.
        # Dense (live queries x max records) weight matrix -> one batched
        # multinomial; the matrix is tiny because records are O(log n) few.
        # Width must cover every query that owns records — unanswerable
        # queries (zero total weight) still scatter their records below.
        width = int(rec_per_query.max())
        ordinal = np.arange(len(records), dtype=_ID) - rec_start[records.query]
        dense = np.zeros((nq, width), dtype=_F8)
        dense[records.query, ordinal] = records.weight
        pvals = dense[draw_queries] / total_weight[draw_queries, None]
        hits = self._kernels.multinomial_draw(rng, sample_size, pvals)  # (n_live, width)

        # Map every (query, ordinal) cell back to its flat record index and
        # expand to one entry per draw; draws come out grouped by query (each
        # query contributes exactly sample_size of them, contiguously).
        # Per-draw intermediates use 32-bit indices when the pools allow it —
        # they are the hot multi-million-element arrays, and halving their
        # width measurably cuts the wall-clock of the whole pass.
        idx_dtype = np.int32 if self._all_ids.shape[0] < 2**31 - 1 else _ID
        cell_record = rec_start[draw_queries][:, None] + np.arange(width, dtype=_ID)[None, :]
        cell_record = np.minimum(cell_record, len(records) - 1)  # padding cells get 0 hits
        chosen = np.repeat(cell_record.astype(idx_dtype).ravel(), hits.ravel())

        # Pass 2: pick a position inside the chosen record.
        n_draws = chosen.shape[0]
        if self._weighted:
            positions = self._kernels.weighted_pick(
                self._all_weight_prefix,
                records.glo[chosen],
                records.ghi[chosen],
                rng.random(n_draws),
                base=records.gbase[chosen],
            )
        else:
            lengths = records.counts.astype(idx_dtype)[chosen]
            # floor(u * len) can round up to len for very long records; clamp.
            offsets = (rng.random(n_draws) * lengths).astype(idx_dtype)
            np.minimum(offsets, lengths - 1, out=offsets)
            positions = records.glo.astype(idx_dtype)[chosen]
            positions += offsets
        # Restore per-position i.i.d. order: the draws arrive grouped by
        # record; a uniform permutation of each row makes the sequence
        # exchangeable again (see docstring).  Shuffling the (narrower)
        # position array is cheaper than shuffling the gathered ids.
        positions_2d = positions.reshape(n_live, sample_size)
        rng.permuted(positions_2d, axis=1, out=positions_2d)
        ids = self._all_ids[positions].reshape(n_live, sample_size)

        out: list[np.ndarray] = [empty] * nq
        for row, q in enumerate(draw_queries):
            out[int(q)] = ids[row]
        return out

    # ------------------------------------------------------------------ #
    # scalar fast paths
    # ------------------------------------------------------------------ #
    def collect_ranges(self, query: QueryLike) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Scalar record collection over the flat arrays.

        Returns ``(glo, ghi, gbase, weight)`` arrays — one entry per record,
        indices into the id super-pool — without touching any node objects.
        """
        ql, qr = coerce_query(query)
        glo: list[int] = []
        ghi: list[int] = []
        gbase: list[int] = []
        if self.node_count == 0:
            z = np.empty(0, dtype=_ID)
            return z, z, z, np.empty(0, dtype=_F8)
        kb = self._kind_base
        node = 0
        while node >= 0:
            center = self._centers[node]
            off = int(self._stab_off[node])
            ln = int(self._stab_len[node])
            if qr < center:
                hi = int(np.searchsorted(self._stab_lefts[off : off + ln], qr, side="right")) - 1
                if hi >= 0:
                    glo.append(kb[0] + off)
                    ghi.append(kb[0] + off + hi)
                    gbase.append(kb[0] + off)
                node = int(self._left_child[node])
            elif center < ql:
                lo = int(np.searchsorted(self._stab_rights[off : off + ln], ql, side="left"))
                if lo < ln:
                    glo.append(kb[1] + off + lo)
                    ghi.append(kb[1] + off + ln - 1)
                    gbase.append(kb[1] + off)
                node = int(self._right_child[node])
            else:
                if ln:
                    glo.append(kb[0] + off)
                    ghi.append(kb[0] + off + ln - 1)
                    gbase.append(kb[0] + off)
                child = int(self._left_child[node])
                if child >= 0:
                    soff = int(self._sub_off[child])
                    sln = int(self._sub_len[child])
                    lo = int(
                        np.searchsorted(self._sub_rights[soff : soff + sln], ql, side="left")
                    )
                    if lo < sln:
                        glo.append(kb[2] + soff + lo)
                        ghi.append(kb[2] + soff + sln - 1)
                        gbase.append(kb[2] + soff)
                child = int(self._right_child[node])
                if child >= 0:
                    soff = int(self._sub_off[child])
                    sln = int(self._sub_len[child])
                    hi = (
                        int(np.searchsorted(self._sub_lefts[soff : soff + sln], qr, side="right"))
                        - 1
                    )
                    if hi >= 0:
                        glo.append(kb[3] + soff)
                        ghi.append(kb[3] + soff + hi)
                        gbase.append(kb[3] + soff)
                break
        glo_arr = np.asarray(glo, dtype=_ID)
        ghi_arr = np.asarray(ghi, dtype=_ID)
        gbase_arr = np.asarray(gbase, dtype=_ID)
        if self._weighted and glo_arr.shape[0]:
            prefix = self._all_weight_prefix
            before = np.where(glo_arr > gbase_arr, prefix[np.maximum(glo_arr - 1, 0)], 0.0)
            weight = prefix[ghi_arr] - before
        else:
            weight = (ghi_arr - glo_arr + 1).astype(_F8)
        return glo_arr, ghi_arr, gbase_arr, weight

    def count(self, query: QueryLike) -> int:
        """Scalar count over the flat arrays (pooled inserts excluded).

        Uses the same two-binary-search identity as :meth:`count_many`.
        """
        ql, qr = coerce_query(query)
        if self.node_count == 0:
            return 0
        not_right = int(np.searchsorted(self._sorted_lefts, qr, side="right"))
        left_of = int(np.searchsorted(self._sorted_rights, ql, side="left"))
        return not_right - left_of

    def report(self, query: QueryLike) -> np.ndarray:
        """Scalar reporting over the flat arrays (pooled inserts excluded)."""
        glo, ghi, _, _ = self.collect_ranges(query)
        if glo.shape[0] == 0:
            return np.empty(0, dtype=_ID)
        return self._all_ids[_ranges_to_indices(glo, ghi - glo + 1)]

    def sample(
        self,
        query: QueryLike,
        sample_size: int,
        random_state: RandomState = None,
        on_empty: str = "empty",
    ) -> np.ndarray:
        """Scalar sampling over the flat arrays, without alias-table builds.

        Records are ``O(log n)`` few, so record selection uses a direct draw
        when <= 2 records survive (the common case for small queries) and one
        cumulative inverse-CDF search otherwise — both cheaper than building
        a Walker table per query.
        """
        ql, qr = coerce_query(query)
        sample_size = validate_sample_size(sample_size)
        rng = resolve_rng(random_state)
        glo, ghi, gbase, weight = self.collect_ranges((ql, qr))
        total = float(weight.sum())
        if glo.shape[0] == 0 or total <= 0:
            if on_empty == "raise":
                raise EmptyResultError(f"query [{ql}, {qr}] matched no intervals")
            if on_empty != "empty":
                raise ValueError(f"on_empty must be 'empty' or 'raise', got {on_empty!r}")
            return np.empty(0, dtype=_ID)
        if sample_size == 0:
            return np.empty(0, dtype=_ID)

        n_records = glo.shape[0]
        if n_records == 1:
            chosen = np.zeros(sample_size, dtype=_ID)
        elif n_records == 2:
            chosen = (rng.random(sample_size) * total >= weight[0]).astype(_ID)
        else:
            prefix = np.cumsum(weight)
            chosen = np.searchsorted(prefix, rng.random(sample_size) * total, side="right")
            chosen = np.minimum(chosen, n_records - 1)

        rec_glo = glo[chosen]
        if self._weighted:
            positions = self._kernels.weighted_pick(
                self._all_weight_prefix,
                rec_glo,
                ghi[chosen],
                rng.random(sample_size),
                base=gbase[chosen],
            )
        else:
            lengths = (ghi - glo + 1)[chosen]
            positions = rec_glo + rng.integers(0, lengths)
        return self._all_ids[positions]
