"""Node records: the compact representation of ``q ∩ X`` produced by Algorithm 1.

A *node record* identifies a contiguous run of a node's sorted interval list
whose members all overlap the query.  The set ``R`` of node records collected
by the AIT traversal covers ``q ∩ X`` exactly (no false positives, no false
negatives) and the runs are pairwise disjoint, which is what makes
alias-based sampling over records equivalent to uniform sampling over
``q ∩ X``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from .node import AITNode

__all__ = ["ListKind", "NodeRecord"]


class ListKind(enum.IntEnum):
    """Which sorted list of the owning node a record's index range refers to.

    The numbering follows the paper's encoding in Algorithm 1:
    ``0: L^l``, ``1: L^r``, ``2: AL^r``, ``3: AL^l`` — i.e. stab lists sorted
    by left/right endpoint and augmented (subtree) lists sorted by right/left
    endpoint respectively.
    """

    STAB_BY_LEFT = 0
    STAB_BY_RIGHT = 1
    SUBTREE_BY_RIGHT = 2
    SUBTREE_BY_LEFT = 3


@dataclass(frozen=True, slots=True)
class NodeRecord:
    """A contiguous run ``[lo, hi]`` (inclusive, 0-based) of one node list.

    Attributes
    ----------
    node:
        The AIT/AWIT node owning the list.
    kind:
        Which of the node's four sorted lists the indices refer to.
    lo, hi:
        Inclusive 0-based index range; ``lo <= hi`` always holds (empty
        records are never emitted by the traversal).
    weight:
        Total sampling weight of the run.  For the unweighted AIT this equals
        ``hi - lo + 1``; for the AWIT it is the weighted run total computed
        from the node's prefix-sum arrays.
    """

    node: "AITNode"
    kind: ListKind
    lo: int
    hi: int
    weight: float

    @property
    def count(self) -> int:
        """Number of intervals covered by this record."""
        return self.hi - self.lo + 1

    def interval_ids(self) -> np.ndarray:
        """Dataset ids of the intervals covered by this record (in list order)."""
        return self.node.list_ids(self.kind)[self.lo : self.hi + 1]

    def __post_init__(self) -> None:
        if self.lo < 0 or self.hi < self.lo:
            raise ValueError(f"invalid node record range [{self.lo}, {self.hi}]")
