"""Query-argument coercion and validation.

Every public query method in the library accepts the query interval either as
an :class:`~repro.core.interval.Interval` or as a plain ``(left, right)``
pair, and a sample size ``s``.  These helpers normalise and validate those
arguments in one place so all indexes behave identically on malformed input.
"""

from __future__ import annotations

import math
from typing import Sequence, Union

import numpy as np

from .errors import InvalidQueryError
from .interval import Interval

__all__ = ["QueryLike", "coerce_query", "coerce_query_batch", "validate_sample_size"]

#: Anything accepted as a query interval by the public API.
QueryLike = Union[Interval, Sequence[float], tuple[float, float]]


def coerce_query(query: QueryLike) -> tuple[float, float]:
    """Normalise ``query`` to a validated ``(left, right)`` float pair.

    Raises :class:`InvalidQueryError` when the query is not a 2-element
    interval, has non-finite endpoints, or has ``left > right``.
    """
    if isinstance(query, Interval):
        return (query.left, query.right)
    try:
        left, right = query  # type: ignore[misc]
    except (TypeError, ValueError) as exc:
        raise InvalidQueryError(
            f"query must be an Interval or a (left, right) pair, got {query!r}"
        ) from exc
    try:
        left_f = float(left)
        right_f = float(right)
    except (TypeError, ValueError) as exc:
        raise InvalidQueryError(f"query endpoints must be numbers, got {query!r}") from exc
    if not (math.isfinite(left_f) and math.isfinite(right_f)):
        raise InvalidQueryError(f"query endpoints must be finite, got [{left_f}, {right_f}]")
    if left_f > right_f:
        raise InvalidQueryError(
            f"query left endpoint must not exceed right endpoint, got [{left_f}, {right_f}]"
        )
    return (left_f, right_f)


def coerce_query_batch(queries) -> tuple[np.ndarray, np.ndarray]:
    """Normalise a batch of queries to validated ``(lefts, rights)`` arrays.

    Accepts an ``(n, 2)`` float array (validated vectorised — the fastest
    input path) or any sequence of :class:`Interval` / pair objects.  Every
    batch API in the library funnels through this one helper so malformed
    input fails identically regardless of index or input shape.
    """
    if isinstance(queries, np.ndarray) and queries.ndim == 2 and queries.shape[1] == 2:
        try:
            lefts = np.ascontiguousarray(queries[:, 0], dtype=np.float64)
            rights = np.ascontiguousarray(queries[:, 1], dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise InvalidQueryError(
                f"query batch must contain numeric endpoints, got dtype {queries.dtype}"
            ) from exc
        bad = ~(np.isfinite(lefts) & np.isfinite(rights) & (lefts <= rights))
        if bad.any():
            first = int(np.flatnonzero(bad)[0])
            coerce_query((queries[first, 0], queries[first, 1]))  # raises with detail
        return lefts, rights
    pairs = [coerce_query(q) for q in queries]
    if not pairs:
        return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.float64)
    arr = np.asarray(pairs, dtype=np.float64)
    return np.ascontiguousarray(arr[:, 0]), np.ascontiguousarray(arr[:, 1])


def validate_sample_size(sample_size: int) -> int:
    """Validate and return the requested number of samples ``s`` (must be >= 0)."""
    if isinstance(sample_size, bool) or not isinstance(sample_size, (int,)):
        try:
            as_int = int(sample_size)
        except (TypeError, ValueError) as exc:
            raise InvalidQueryError(f"sample size must be an integer, got {sample_size!r}") from exc
        if as_int != sample_size:
            raise InvalidQueryError(f"sample size must be an integer, got {sample_size!r}")
        sample_size = as_int
    if sample_size < 0:
        raise InvalidQueryError(f"sample size must be non-negative, got {sample_size}")
    return int(sample_size)
