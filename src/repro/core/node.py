"""Node structure shared by the AIT and AWIT indexes.

Each node of an (augmented, weighted) interval tree stores, per the paper:

* ``center`` — the node's central point ``c_i``;
* the *stab lists* ``L^l`` / ``L^r`` — ids of intervals containing ``center``,
  sorted by left / right endpoint;
* the *subtree lists* ``AL^l`` / ``AL^r`` — ids of **all** intervals stored in
  the subtree rooted at the node, sorted by left / right endpoint (this is the
  augmentation that distinguishes the AIT from a plain interval tree);
* (AWIT only) inclusive prefix sums of weights aligned with each list.

Endpoint arrays are stored alongside every id list so that the binary searches
in Algorithm 1 can run directly via ``numpy.searchsorted`` without touching
the dataset.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .records import ListKind

__all__ = ["AITNode", "ID_DTYPE"]

#: Integer dtype used for interval ids inside node lists.
ID_DTYPE = np.int64


class AITNode:
    """One node of an AIT / AWIT.

    The node is a plain data holder; all query logic lives in
    :class:`~repro.core.ait.AIT`.  ``weighted`` nodes additionally carry
    inclusive prefix-sum arrays of interval weights for each of the four
    lists.
    """

    __slots__ = (
        "center",
        "stab_ids_by_left",
        "stab_lefts",
        "stab_ids_by_right",
        "stab_rights",
        "subtree_ids_by_left",
        "subtree_lefts",
        "subtree_ids_by_right",
        "subtree_rights",
        "stab_weight_by_left",
        "stab_weight_by_right",
        "subtree_weight_by_left",
        "subtree_weight_by_right",
        "left",
        "right",
    )

    def __init__(self, center: float) -> None:
        self.center = float(center)
        empty_ids = np.empty(0, dtype=ID_DTYPE)
        empty_vals = np.empty(0, dtype=np.float64)
        self.stab_ids_by_left = empty_ids
        self.stab_lefts = empty_vals
        self.stab_ids_by_right = empty_ids
        self.stab_rights = empty_vals
        self.subtree_ids_by_left = empty_ids
        self.subtree_lefts = empty_vals
        self.subtree_ids_by_right = empty_ids
        self.subtree_rights = empty_vals
        self.stab_weight_by_left: Optional[np.ndarray] = None
        self.stab_weight_by_right: Optional[np.ndarray] = None
        self.subtree_weight_by_left: Optional[np.ndarray] = None
        self.subtree_weight_by_right: Optional[np.ndarray] = None
        self.left: Optional["AITNode"] = None
        self.right: Optional["AITNode"] = None

    # ------------------------------------------------------------------ #
    # list accessors keyed by ListKind
    # ------------------------------------------------------------------ #
    def list_ids(self, kind: ListKind) -> np.ndarray:
        """Interval ids of the list identified by ``kind`` (in list order)."""
        if kind == ListKind.STAB_BY_LEFT:
            return self.stab_ids_by_left
        if kind == ListKind.STAB_BY_RIGHT:
            return self.stab_ids_by_right
        if kind == ListKind.SUBTREE_BY_RIGHT:
            return self.subtree_ids_by_right
        if kind == ListKind.SUBTREE_BY_LEFT:
            return self.subtree_ids_by_left
        raise ValueError(f"unknown list kind {kind!r}")

    def list_weight_prefix(self, kind: ListKind) -> np.ndarray:
        """Inclusive weight prefix sums of the list identified by ``kind`` (AWIT only)."""
        prefix = {
            ListKind.STAB_BY_LEFT: self.stab_weight_by_left,
            ListKind.STAB_BY_RIGHT: self.stab_weight_by_right,
            ListKind.SUBTREE_BY_RIGHT: self.subtree_weight_by_right,
            ListKind.SUBTREE_BY_LEFT: self.subtree_weight_by_left,
        }[kind]
        if prefix is None:
            raise ValueError("this node carries no weight prefix arrays (unweighted AIT)")
        return prefix

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def stab_count(self) -> int:
        """Number of intervals whose span contains this node's center."""
        return int(self.stab_ids_by_left.shape[0])

    @property
    def subtree_count(self) -> int:
        """Number of intervals stored in the subtree rooted at this node."""
        return int(self.subtree_ids_by_left.shape[0])

    @property
    def is_leaf(self) -> bool:
        """True when the node has no children."""
        return self.left is None and self.right is None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AITNode(center={self.center}, stab={self.stab_count}, "
            f"subtree={self.subtree_count}, leaf={self.is_leaf})"
        )

    # ------------------------------------------------------------------ #
    # mutation helpers used by the update path (Section III-D)
    # ------------------------------------------------------------------ #
    def insert_into_stab(self, interval_id: int, left: float, right: float) -> None:
        """Insert an interval into the stab lists, preserving both sort orders."""
        pos_l = int(np.searchsorted(self.stab_lefts, left, side="right"))
        self.stab_ids_by_left = np.insert(self.stab_ids_by_left, pos_l, interval_id)
        self.stab_lefts = np.insert(self.stab_lefts, pos_l, left)
        pos_r = int(np.searchsorted(self.stab_rights, right, side="right"))
        self.stab_ids_by_right = np.insert(self.stab_ids_by_right, pos_r, interval_id)
        self.stab_rights = np.insert(self.stab_rights, pos_r, right)

    def insert_into_subtree(self, interval_id: int, left: float, right: float) -> None:
        """Insert an interval into the subtree (AL) lists, preserving both sort orders."""
        pos_l = int(np.searchsorted(self.subtree_lefts, left, side="right"))
        self.subtree_ids_by_left = np.insert(self.subtree_ids_by_left, pos_l, interval_id)
        self.subtree_lefts = np.insert(self.subtree_lefts, pos_l, left)
        pos_r = int(np.searchsorted(self.subtree_rights, right, side="right"))
        self.subtree_ids_by_right = np.insert(self.subtree_ids_by_right, pos_r, interval_id)
        self.subtree_rights = np.insert(self.subtree_rights, pos_r, right)

    def remove_from_stab(self, interval_id: int) -> bool:
        """Remove an interval id from the stab lists; return True when found."""
        found = False
        mask = self.stab_ids_by_left != interval_id
        if not mask.all():
            found = True
            self.stab_ids_by_left = self.stab_ids_by_left[mask]
            self.stab_lefts = self.stab_lefts[mask]
        mask = self.stab_ids_by_right != interval_id
        if not mask.all():
            self.stab_ids_by_right = self.stab_ids_by_right[mask]
            self.stab_rights = self.stab_rights[mask]
        return found

    def remove_many_from_stab(self, interval_ids: np.ndarray) -> None:
        """Remove a batch of interval ids from the stab lists in one pass."""
        mask = ~np.isin(self.stab_ids_by_left, interval_ids)
        if not mask.all():
            self.stab_ids_by_left = self.stab_ids_by_left[mask]
            self.stab_lefts = self.stab_lefts[mask]
        mask = ~np.isin(self.stab_ids_by_right, interval_ids)
        if not mask.all():
            self.stab_ids_by_right = self.stab_ids_by_right[mask]
            self.stab_rights = self.stab_rights[mask]

    def remove_many_from_subtree(self, interval_ids: np.ndarray) -> None:
        """Remove a batch of interval ids from the subtree (AL) lists in one pass."""
        mask = ~np.isin(self.subtree_ids_by_left, interval_ids)
        if not mask.all():
            self.subtree_ids_by_left = self.subtree_ids_by_left[mask]
            self.subtree_lefts = self.subtree_lefts[mask]
        mask = ~np.isin(self.subtree_ids_by_right, interval_ids)
        if not mask.all():
            self.subtree_ids_by_right = self.subtree_ids_by_right[mask]
            self.subtree_rights = self.subtree_rights[mask]

    def recompute_weight_prefixes(self, weights: np.ndarray) -> None:
        """Recompute all four inclusive weight prefix arrays from the weight column.

        The bulk update paths maintain AWIT nodes by wholesale recomputation
        (one ``cumsum`` per touched list) instead of positional patching —
        the prefix arrays are positional, so splicing them per-element is
        exactly the hard case the paper's static-AWIT restriction avoids.
        """
        self.stab_weight_by_left = np.cumsum(weights[self.stab_ids_by_left])
        self.stab_weight_by_right = np.cumsum(weights[self.stab_ids_by_right])
        self.subtree_weight_by_left = np.cumsum(weights[self.subtree_ids_by_left])
        self.subtree_weight_by_right = np.cumsum(weights[self.subtree_ids_by_right])

    def remove_from_subtree(self, interval_id: int) -> bool:
        """Remove an interval id from the subtree lists; return True when found."""
        found = False
        mask = self.subtree_ids_by_left != interval_id
        if not mask.all():
            found = True
            self.subtree_ids_by_left = self.subtree_ids_by_left[mask]
            self.subtree_lefts = self.subtree_lefts[mask]
        mask = self.subtree_ids_by_right != interval_id
        if not mask.all():
            self.subtree_ids_by_right = self.subtree_ids_by_right[mask]
            self.subtree_rights = self.subtree_rights[mask]
        return found

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def nbytes(self) -> int:
        """Approximate memory footprint of this node's arrays in bytes."""
        total = 0
        for name in (
            "stab_ids_by_left",
            "stab_lefts",
            "stab_ids_by_right",
            "stab_rights",
            "subtree_ids_by_left",
            "subtree_lefts",
            "subtree_ids_by_right",
            "subtree_rights",
            "stab_weight_by_left",
            "stab_weight_by_right",
            "subtree_weight_by_left",
            "subtree_weight_by_right",
        ):
            arr = getattr(self, name)
            if arr is not None:
                total += int(arr.nbytes)
        return total + 64  # object / pointer overhead estimate
