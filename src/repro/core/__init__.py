"""Core data structures: intervals, datasets, and the AIT / AIT-V / AWIT indexes."""

from .ait import AIT
from .ait_v import AITV
from .awit import AWIT
from .base import IntervalIndex, SamplingIndex
from .dataset import IntervalDataset
from .flat import FlatAIT
from .errors import (
    EmptyDatasetError,
    EmptyResultError,
    GatewayClosedError,
    GatewayOverloadError,
    InvalidIntervalError,
    InvalidQueryError,
    InvalidWeightError,
    PersistenceError,
    ReproError,
    SnapshotCorruptError,
    StructureStateError,
    UnsupportedOperationError,
    WALCorruptError,
    WorkerTimeoutError,
)
from .interval import Interval
from .node import AITNode
from .query import coerce_query, coerce_query_batch, validate_sample_size
from .records import ListKind, NodeRecord

__all__ = [
    "AIT",
    "AITV",
    "AWIT",
    "AITNode",
    "FlatAIT",
    "Interval",
    "IntervalDataset",
    "IntervalIndex",
    "SamplingIndex",
    "ListKind",
    "NodeRecord",
    "coerce_query",
    "coerce_query_batch",
    "validate_sample_size",
    "ReproError",
    "InvalidIntervalError",
    "InvalidQueryError",
    "InvalidWeightError",
    "EmptyDatasetError",
    "EmptyResultError",
    "StructureStateError",
    "UnsupportedOperationError",
    "GatewayClosedError",
    "GatewayOverloadError",
    "WorkerTimeoutError",
    "PersistenceError",
    "SnapshotCorruptError",
    "WALCorruptError",
]
