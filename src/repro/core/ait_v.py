"""AIT-V — the AIT over virtual intervals (Section III-C of the paper).

The plain AIT needs ``O(n log n)`` space.  AIT-V restores ``O(n)`` space by
bucketing: the intervals are *pair-sorted* (ascending left endpoint, ties
broken by right endpoint — the rough z-order curve of Fig. 4), split into
``Θ(n / log n)`` buckets of ``Θ(log n)`` intervals each, and every bucket is
replaced by a single *virtual interval* spanning from its minimum left
endpoint to its maximum right endpoint.  An ordinary AIT is then built over
the virtual intervals only, which costs ``O(n)`` space (Corollary 2).

A query first collects node records on the virtual AIT exactly as in
Algorithm 1.  To draw a sample it picks a record (alias table on bucket
counts), a virtual interval inside the record, and a *slot* of the bucket
uniformly at random; the member interval in that slot is accepted only when
it really overlaps the query (buckets are conceptually padded to equal size,
so empty slots simply reject).  Because every member of ``q ∩ X`` sits in
exactly one slot of exactly one overlapping bucket, accepted draws are
uniform over ``q ∩ X``, and the expected number of rejections per accepted
draw is constant for locality-preserving bucketings (Corollary 3).

For robustness this implementation falls back to an exact scan of the
candidate buckets when the rejection loop makes no progress (e.g. the query
overlaps virtual intervals but no real interval), so termination is always
guaranteed.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..sampling.alias import AliasTable
from ..sampling.rng import RandomState, resolve_rng
from .ait import AIT
from .base import OnEmpty, SamplingIndex
from .dataset import IntervalDataset
from .query import QueryLike
from .records import NodeRecord

__all__ = ["AITV"]


class AITV(SamplingIndex):
    """Space-optimised AIT over bucketed (virtual) intervals.

    Parameters
    ----------
    dataset:
        The intervals to index.
    bucket_size:
        Number of intervals per bucket.  Defaults to ``ceil(log2 n)`` as in
        the paper; the last bucket may be smaller (it behaves as if padded
        with always-rejecting pseudo-intervals, preserving uniformity).
    partition:
        Bucketing strategy.  ``"pair_sort"`` (default) is the paper's
        locality-preserving strategy — sort by left endpoint, ties broken by
        right endpoint — which keeps the rejection overhead near zero.
        ``"random"`` assigns intervals to buckets arbitrarily; it is provided
        for the ablation study of Section III-C (any disjoint partitioning is
        correct, but loose virtual intervals cause many rejections).
    partition_random_state:
        Seed for the ``"random"`` partition strategy (ignored otherwise).
    max_rejection_rounds:
        Safety valve for the rejection loop; when exceeded the query falls
        back to an exact scan of the candidate buckets.
    build_backend:
        Forwarded to the internal virtual-interval :class:`AIT` (see its
        documentation); ``"columnar"`` (default) defers node materialisation
        until the first scalar query.

    Examples
    --------
    >>> from repro import AITV, IntervalDataset
    >>> data = IntervalDataset.from_pairs([(i, i + 5) for i in range(100)])
    >>> index = AITV(data)
    >>> samples = index.sample((10, 20), 8, random_state=0)
    >>> len(samples)
    8
    """

    def __init__(
        self,
        dataset: IntervalDataset,
        bucket_size: Optional[int] = None,
        partition: str = "pair_sort",
        partition_random_state=None,
        max_rejection_rounds: int = 64,
        build_backend: str = "columnar",
    ) -> None:
        super().__init__(dataset)
        n = len(dataset)
        if bucket_size is None:
            bucket_size = max(1, int(math.ceil(math.log2(max(2, n)))))
        if bucket_size < 1:
            raise ValueError("bucket_size must be at least 1")
        self._bucket_size = int(bucket_size)
        self._max_rejection_rounds = int(max_rejection_rounds)
        self._last_candidate_draws = 0
        self._partition = partition

        lefts = dataset.lefts
        rights = dataset.rights

        if partition == "pair_sort":
            # Pair sort: ascending left endpoint, ties broken by right endpoint.
            order = np.lexsort((rights, lefts))
        elif partition == "random":
            from ..sampling.rng import resolve_rng

            order = resolve_rng(partition_random_state).permutation(n)
        else:
            raise ValueError(f"unknown partition strategy {partition!r}; expected 'pair_sort' or 'random'")
        bucket_count = int(math.ceil(n / self._bucket_size))
        padded = np.full(bucket_count * self._bucket_size, -1, dtype=np.int64)
        padded[:n] = order
        self._bucket_members = padded.reshape(bucket_count, self._bucket_size)
        self._bucket_sizes = np.minimum(
            np.full(bucket_count, self._bucket_size, dtype=np.int64),
            n - np.arange(bucket_count, dtype=np.int64) * self._bucket_size,
        )

        member_lefts = np.where(
            self._bucket_members >= 0, lefts[np.maximum(self._bucket_members, 0)], np.inf
        )
        member_rights = np.where(
            self._bucket_members >= 0, rights[np.maximum(self._bucket_members, 0)], -np.inf
        )
        virtual_lefts = member_lefts.min(axis=1)
        virtual_rights = member_rights.max(axis=1)
        self._virtual_dataset = IntervalDataset(virtual_lefts, virtual_rights)
        self._virtual_tree = AIT(self._virtual_dataset, build_backend=build_backend)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def bucket_size(self) -> int:
        """Configured bucket capacity (Θ(log n))."""
        return self._bucket_size

    @property
    def partition_strategy(self) -> str:
        """Bucketing strategy used to build the virtual intervals."""
        return self._partition

    @property
    def bucket_count(self) -> int:
        """Number of buckets / virtual intervals."""
        return int(self._bucket_members.shape[0])

    @property
    def virtual_tree(self) -> AIT:
        """The underlying AIT built over the virtual intervals."""
        return self._virtual_tree

    @property
    def last_candidate_draws(self) -> int:
        """Candidate draws performed by the most recent :meth:`sample` call.

        The paper reports that this stays close to ``s`` in practice
        (e.g. ~1087 candidate draws for s = 1000 on Book).
        """
        return self._last_candidate_draws

    def memory_bytes(self) -> int:
        """Approximate memory footprint: bucket table plus the virtual AIT."""
        return int(self._bucket_members.nbytes + self._bucket_sizes.nbytes) + (
            self._virtual_tree.memory_bytes()
        )

    def bucket_of(self, interval_id: int) -> int:
        """Bucket index that contains the given interval id."""
        rows, cols = np.nonzero(self._bucket_members == int(interval_id))
        if rows.shape[0] == 0:
            raise KeyError(f"interval id {interval_id} is not part of this index")
        return int(rows[0])

    # ------------------------------------------------------------------ #
    # reporting / counting (exact, by scanning candidate buckets)
    # ------------------------------------------------------------------ #
    def _candidate_bucket_ids(self, query_left: float, query_right: float) -> np.ndarray:
        """Ids of buckets whose virtual interval overlaps the query."""
        return self._virtual_tree.report((query_left, query_right))

    def report(self, query: QueryLike) -> np.ndarray:
        """Exact ids of intervals overlapping ``query``.

        Unlike the AIT this requires scanning the members of the candidate
        buckets (O(log^2 n + candidate members)); the AIT-V trades exactness
        of the candidate set for O(n) space.
        """
        query_left, query_right = self._coerce(query)
        buckets = self._candidate_bucket_ids(query_left, query_right)
        if buckets.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        members = self._bucket_members[buckets].reshape(-1)
        members = members[members >= 0]
        lefts = self._dataset.lefts[members]
        rights = self._dataset.rights[members]
        mask = (lefts <= query_right) & (query_left <= rights)
        return members[mask]

    def count(self, query: QueryLike) -> int:
        """Exact ``|q ∩ X|`` (scans candidate buckets; see :meth:`report`)."""
        return int(self.report(query).shape[0])

    def _batch_candidate_scan(
        self, ql: np.ndarray, qr: np.ndarray
    ) -> Optional[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Shared candidate phase of the batch queries.

        One level-synchronous traversal of the virtual tree's flat engine
        yields candidate buckets per query; a single vectorised overlap test
        over every (query, candidate member) pair then marks the true hits.
        Returns ``(members, query_of_member, overlap_mask)`` — or None when
        no bucket matched anything.
        """
        nq = int(ql.shape[0])
        bucket_lists = self._virtual_tree.flat()._report_many(ql, qr)
        bucket_counts = np.asarray([b.shape[0] for b in bucket_lists], dtype=np.int64)
        if nq == 0 or int(bucket_counts.sum()) == 0:
            return None
        all_buckets = np.concatenate(bucket_lists)
        query_of_bucket = np.repeat(np.arange(nq, dtype=np.int64), bucket_counts)
        members = self._bucket_members[all_buckets].reshape(-1)
        query_of_member = np.repeat(query_of_bucket, self._bucket_size)
        valid = members >= 0
        safe = np.maximum(members, 0)
        overlap = valid & (
            (self._dataset.lefts[safe] <= qr[query_of_member])
            & (ql[query_of_member] <= self._dataset.rights[safe])
        )
        return members, query_of_member, overlap

    def report_many(self, queries) -> list[np.ndarray]:
        """Vectorised :meth:`report` for a batch of queries."""
        from .query import coerce_query_batch

        ql, qr = coerce_query_batch(queries)
        nq = int(ql.shape[0])
        scan = self._batch_candidate_scan(ql, qr)
        if scan is None:
            return [np.empty(0, dtype=np.int64) for _ in range(nq)]
        members, query_of_member, overlap = scan
        hits = members[overlap]
        per_query = np.bincount(query_of_member[overlap], minlength=nq)
        return [chunk for chunk in np.split(hits, np.cumsum(per_query)[:-1])]

    def count_many(self, queries) -> np.ndarray:
        """Vectorised :meth:`count` for a batch of queries.

        Reuses the candidate scan but skips materialising the hit ids — a
        bincount over the overlap mask is the whole answer.
        """
        from .query import coerce_query_batch

        ql, qr = coerce_query_batch(queries)
        scan = self._batch_candidate_scan(ql, qr)
        if scan is None:
            return np.zeros(ql.shape[0], dtype=np.int64)
        _, query_of_member, overlap = scan
        return np.bincount(query_of_member[overlap], minlength=ql.shape[0]).astype(np.int64)

    def count_virtual(self, query: QueryLike) -> int:
        """Number of *virtual* intervals overlapping the query (O(log^2 n))."""
        return self._virtual_tree.count(query)

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #
    def sample(
        self,
        query: QueryLike,
        sample_size: int,
        random_state: RandomState = None,
        on_empty: OnEmpty = "empty",
    ) -> np.ndarray:
        """Draw ``sample_size`` interval ids uniformly from ``q ∩ X`` (expected O(log^2 n + s))."""
        query_pair = self._coerce(query)
        sample_size = self._validate_sample_size(sample_size)
        rng = resolve_rng(random_state)
        self._last_candidate_draws = 0

        records = self._virtual_tree.collect_records(query_pair)
        if not records:
            return self._handle_empty(sample_size, on_empty, query_pair)
        if sample_size == 0:
            return np.empty(0, dtype=np.int64)

        alias = AliasTable([rec.count for rec in records])
        accepted = np.empty(sample_size, dtype=np.int64)
        accepted_count = 0
        rounds = 0
        while accepted_count < sample_size and rounds < self._max_rejection_rounds:
            rounds += 1
            remaining = sample_size - accepted_count
            # Draw a modest over-allocation to amortise the acceptance loop.
            batch = max(remaining, min(4 * remaining, remaining + 256))
            candidates = self._draw_candidates(records, alias, batch, rng, query_pair)
            self._last_candidate_draws += batch
            if candidates.shape[0] == 0:
                continue
            take = min(remaining, candidates.shape[0])
            accepted[accepted_count : accepted_count + take] = candidates[:take]
            accepted_count += take

        if accepted_count < sample_size:
            # Rejection made no (or too little) progress: fall back to the
            # exact candidate-bucket scan so the call always terminates.
            exact_ids = self.report(query_pair)
            if exact_ids.shape[0] == 0:
                return self._handle_empty(sample_size, on_empty, query_pair)
            fill = rng.integers(0, exact_ids.shape[0], size=sample_size - accepted_count)
            accepted[accepted_count:] = exact_ids[fill]
        return accepted

    def _draw_candidates(
        self,
        records: list[NodeRecord],
        alias: AliasTable,
        batch: int,
        rng: np.random.Generator,
        query_pair: tuple[float, float],
    ) -> np.ndarray:
        """One vectorised rejection round: returns the accepted interval ids."""
        query_left, query_right = query_pair
        record_choice = alias.sample_many(batch, rng)
        virtual_ids = np.empty(batch, dtype=np.int64)
        for index, record in enumerate(records):
            mask = record_choice == index
            hits = int(mask.sum())
            if hits == 0:
                continue
            offsets = rng.integers(record.lo, record.hi + 1, size=hits)
            virtual_ids[mask] = record.node.list_ids(record.kind)[offsets]

        slots = rng.integers(0, self._bucket_size, size=batch)
        members = self._bucket_members[virtual_ids, slots]
        valid = members >= 0
        if not valid.any():
            return np.empty(0, dtype=np.int64)
        member_ids = members[valid]
        lefts = self._dataset.lefts[member_ids]
        rights = self._dataset.rights[member_ids]
        overlap = (lefts <= query_right) & (query_left <= rights)
        return member_ids[overlap]
