"""Exception hierarchy for the repro library.

All exceptions raised by the public API derive from :class:`ReproError`, so
callers can catch a single type when they do not care about the specific
failure mode.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidIntervalError",
    "InvalidQueryError",
    "InvalidWeightError",
    "EmptyDatasetError",
    "EmptyResultError",
    "StructureStateError",
    "UnsupportedOperationError",
    "GatewayClosedError",
    "GatewayOverloadError",
    "WorkerTimeoutError",
    "PersistenceError",
    "SnapshotCorruptError",
    "WALCorruptError",
]


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class InvalidIntervalError(ReproError, ValueError):
    """An interval is malformed (e.g. left endpoint greater than right)."""


class InvalidQueryError(ReproError, ValueError):
    """A query interval or sample size is malformed."""


class InvalidWeightError(ReproError, ValueError):
    """A weight is malformed (non-finite, negative, or missing)."""


class EmptyDatasetError(ReproError, ValueError):
    """An index was asked to be built over an empty interval collection."""


class EmptyResultError(ReproError, LookupError):
    """A sampling query matched no intervals and ``on_empty='raise'``."""


class StructureStateError(ReproError, RuntimeError):
    """An index is in a state that does not support the requested operation."""


class UnsupportedOperationError(ReproError, NotImplementedError):
    """The requested operation is not supported by this structure."""


class GatewayClosedError(StructureStateError):
    """A request was submitted to a :class:`RequestGateway` after ``close()``.

    Subclasses :class:`StructureStateError` (and therefore ``RuntimeError``),
    so pre-existing ``except RuntimeError`` handlers keep working.
    """


class GatewayOverloadError(StructureStateError):
    """A request was shed at submit time because the gateway queue is full.

    Raised by :meth:`RequestGateway.submit` when the intake queue already
    holds ``max_queue_depth`` requests — the bounded-intake contract that
    keeps a traffic spike from growing memory without bound.  Shedding is
    deliberate and *fast*: the request never enters the queue, so the
    caller can retry with backoff (the HTTP front end translates this into
    a 429 with ``Retry-After``).  Subclasses :class:`StructureStateError`
    (and therefore ``RuntimeError``).
    """


class WorkerTimeoutError(ReproError, TimeoutError):
    """A process-executor worker failed to answer within ``op_timeout`` seconds.

    Raised by :class:`~repro.service.executor.ProcessExecutor` when a
    dispatched shard op times out; the executor declares the worker dead,
    respawns it, and replays in-flight work before raising.  Subclasses the
    builtin :class:`TimeoutError`, so pre-existing ``except TimeoutError``
    handlers keep working.
    """


class PersistenceError(ReproError, OSError):
    """Base class for durability-layer failures (snapshots, write-ahead logs)."""


class SnapshotCorruptError(PersistenceError):
    """A snapshot file failed validation (bad magic, header, or array checksum)."""


class WALCorruptError(PersistenceError):
    """A write-ahead log's *header* is unreadable.

    Torn or truncated record *tails* are expected after a crash and are never
    reported as errors — recovery stops at the first bad record checksum and
    keeps everything before it (see :meth:`repro.persist.DeltaLog.scan`).
    """
