"""Interval value type and interval algebra helpers.

An interval ``x`` is a pair ``[x.left, x.right]`` with ``x.left <= x.right``.
Two intervals *overlap* when ``x.left <= y.right and y.left <= x.right``
(closed-interval semantics, exactly as in the paper).  The module also exposes
free functions mirroring the predicates so callers working with plain floats
do not need to allocate :class:`Interval` objects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from .errors import InvalidIntervalError, InvalidWeightError

__all__ = [
    "Interval",
    "overlaps",
    "contains_point",
    "covers",
    "intersection_length",
    "union_span",
    "validate_endpoints",
]


def validate_endpoints(left: float, right: float) -> None:
    """Raise :class:`InvalidIntervalError` unless ``left <= right`` and both are finite."""
    if not (math.isfinite(left) and math.isfinite(right)):
        raise InvalidIntervalError(
            f"interval endpoints must be finite, got [{left!r}, {right!r}]"
        )
    if left > right:
        raise InvalidIntervalError(
            f"interval left endpoint must not exceed right endpoint, got [{left!r}, {right!r}]"
        )


def overlaps(a_left: float, a_right: float, b_left: float, b_right: float) -> bool:
    """Return True when ``[a_left, a_right]`` and ``[b_left, b_right]`` intersect."""
    return a_left <= b_right and b_left <= a_right


def contains_point(left: float, right: float, point: float) -> bool:
    """Return True when ``point`` lies inside ``[left, right]`` (a stabbing hit)."""
    return left <= point <= right


def covers(outer_left: float, outer_right: float, inner_left: float, inner_right: float) -> bool:
    """Return True when the outer interval fully contains the inner interval."""
    return outer_left <= inner_left and inner_right <= outer_right


def intersection_length(a_left: float, a_right: float, b_left: float, b_right: float) -> float:
    """Length of the intersection of the two intervals, or 0.0 when disjoint."""
    lo = max(a_left, b_left)
    hi = min(a_right, b_right)
    return hi - lo if hi > lo else 0.0


def union_span(intervals: Iterable["Interval"]) -> "Interval":
    """Smallest interval covering every interval in ``intervals``.

    Raises :class:`InvalidIntervalError` when the iterable is empty.
    """
    lo = math.inf
    hi = -math.inf
    seen = False
    for x in intervals:
        seen = True
        if x.left < lo:
            lo = x.left
        if x.right > hi:
            hi = x.right
    if not seen:
        raise InvalidIntervalError("union_span() of an empty collection is undefined")
    return Interval(lo, hi)


@dataclass(frozen=True, slots=True)
class Interval:
    """A closed interval ``[left, right]`` with an optional weight and payload.

    Parameters
    ----------
    left, right:
        Endpoints, ``left <= right``.  Degenerate (point) intervals with
        ``left == right`` are allowed; they behave as stabbing points.
    weight:
        Non-negative sampling weight used by the weighted IRS problem
        (Problem 2 in the paper).  Defaults to ``1.0``.
    data:
        Arbitrary user payload carried along with the interval (e.g. a taxi
        trip id).  It does not participate in equality or hashing beyond the
        default dataclass semantics.

    Examples
    --------
    >>> a = Interval(0.0, 10.0)
    >>> b = Interval(8.0, 12.0, weight=2.5)
    >>> a.overlaps(b)
    True
    >>> a.length
    10.0
    >>> b.weight
    2.5
    """

    left: float
    right: float
    weight: float = 1.0
    data: Any = field(default=None, compare=False)

    def __post_init__(self) -> None:
        validate_endpoints(self.left, self.right)
        if not math.isfinite(self.weight) or self.weight < 0:
            raise InvalidWeightError(
                f"interval weight must be finite and non-negative, got {self.weight!r}"
            )

    # ------------------------------------------------------------------ #
    # geometry
    # ------------------------------------------------------------------ #
    @property
    def length(self) -> float:
        """Length of the interval (0 for point intervals)."""
        return self.right - self.left

    @property
    def midpoint(self) -> float:
        """Midpoint of the interval."""
        return (self.left + self.right) / 2.0

    def overlaps(self, other: "Interval") -> bool:
        """True when this interval intersects ``other``."""
        return overlaps(self.left, self.right, other.left, other.right)

    def contains_point(self, point: float) -> bool:
        """True when ``point`` falls inside this interval."""
        return contains_point(self.left, self.right, point)

    def covers(self, other: "Interval") -> bool:
        """True when this interval fully contains ``other``."""
        return covers(self.left, self.right, other.left, other.right)

    def intersection_length(self, other: "Interval") -> float:
        """Length of the overlap with ``other`` (0.0 when disjoint)."""
        return intersection_length(self.left, self.right, other.left, other.right)

    def shifted(self, delta: float) -> "Interval":
        """A copy of this interval translated by ``delta``."""
        return Interval(self.left + delta, self.right + delta, self.weight, self.data)

    def scaled(self, factor: float, origin: float = 0.0) -> "Interval":
        """A copy scaled about ``origin`` by a non-negative ``factor``."""
        if factor < 0:
            raise InvalidIntervalError("scale factor must be non-negative")
        lo = origin + (self.left - origin) * factor
        hi = origin + (self.right - origin) * factor
        return Interval(lo, hi, self.weight, self.data)

    def with_weight(self, weight: float) -> "Interval":
        """A copy of this interval carrying ``weight``."""
        return Interval(self.left, self.right, weight, self.data)

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #
    def as_tuple(self) -> tuple[float, float]:
        """The ``(left, right)`` endpoint pair."""
        return (self.left, self.right)

    def as_point(self) -> tuple[float, float]:
        """The 2-D mapping ``(left, right)`` used by the KDS baseline."""
        return (self.left, self.right)

    def __iter__(self) -> Iterator[float]:
        yield self.left
        yield self.right

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.weight != 1.0:
            return f"[{self.left}, {self.right}] (w={self.weight})"
        return f"[{self.left}, {self.right}]"
