"""Legacy setup shim.

The project metadata lives in ``pyproject.toml``; this file only exists so
that ``pip install -e .`` works on environments whose setuptools predates
PEP 660 editable-wheel support (or that lack the ``wheel`` package).
"""

from setuptools import setup

setup()
