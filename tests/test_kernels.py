"""Kernel backend registry contracts and cross-backend bit-identity.

The backend interface (:mod:`repro.kernels`) promises that every backend is
*bit-identical* to the numpy reference — same counts, same report chunks,
same weighted totals, and, because randomness is always consumed from the
caller's generator in a fixed order, the same sample draws under the same
seed.  This suite pins that promise at three granularities:

* registry contracts — singleton instances, the ``REPRO_KERNEL_BACKEND``
  environment default, instance passthrough, and the numba-missing fallback
  (warn once, return numpy, stay truthful about ``name``);
* unit equivalence — ``segmented_cumsum`` / ``rank_search`` /
  ``weighted_pick`` / ``endpoint_ranks`` compared element-for-element
  (``tobytes`` equality, so ``-0.0`` vs ``0.0`` drift would fail);
* end-to-end equivalence — whole :class:`~repro.core.flat.FlatAIT` snapshots
  and :class:`~repro.service.ShardedEngine` instances built per backend over
  the same data answer every batch operation identically, across sizes
  n ∈ {0, 1, 2, 63, 1000} (0 = empty guards, 1-2 = degenerate trees,
  63 = one full level-synchronous descent, 1000 = realistic fan-out),
  weighted and unweighted, and shard counts K ∈ {1, 4}.

The ``numba`` backend joins the sweep automatically when numba is
importable; without it the ``python`` backend (the same loop kernels,
interpreted) keeps the loop-kernel code path under test.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.kernels as kernels_module
from repro import AIT, AWIT, IntervalDataset, ShardedEngine
from repro.core.flat import FlatAIT
from repro.kernels import (
    KERNEL_BACKEND_ENV,
    KERNEL_BACKEND_NAMES,
    KernelBackend,
    NumpyBackend,
    get_backend,
    numba_available,
    resolve_backend,
)

#: Backends compared against the numpy oracle (numba only when importable).
ALT_BACKENDS = ("python",) + (("numba",) if numba_available() else ())

SIZES = (0, 1, 2, 63, 1000)


def make_endpoints(n: int, weighted: bool, seed: int = 7):
    rng = np.random.default_rng(seed + n)
    lefts = rng.uniform(0.0, 1000.0, n)
    rights = lefts + rng.uniform(0.1, 60.0, n)
    weights = rng.uniform(0.1, 5.0, n) if weighted else None
    return lefts, rights, weights


def make_queries(count: int = 48, seed: int = 11) -> np.ndarray:
    rng = np.random.default_rng(seed)
    ql = rng.uniform(-50.0, 1050.0, count)
    qr = ql + rng.uniform(0.0, 200.0, count)
    return np.column_stack([ql, qr])


def chunks_equal(a: list[np.ndarray], b: list[np.ndarray]) -> bool:
    return len(a) == len(b) and all(np.array_equal(x, y) for x, y in zip(a, b))


# --------------------------------------------------------------------------- #
# registry contracts
# --------------------------------------------------------------------------- #
class TestRegistry:
    @pytest.mark.parametrize("name", ["numpy", "python"])
    def test_singleton_per_name(self, name):
        assert get_backend(name) is get_backend(name)
        assert get_backend(name).name == name
        assert name in KERNEL_BACKEND_NAMES

    def test_describe_shape(self):
        info = get_backend("numpy").describe()
        assert info == {"name": "numpy", "jit": False}

    def test_unknown_name_pinned_message(self):
        with pytest.raises(
            ValueError,
            match=r"unknown kernel backend 'avx': "
            r"expected one of 'numpy', 'numba', 'python'",
        ):
            get_backend("avx")

    def test_resolve_none_defaults_to_numpy(self, monkeypatch):
        monkeypatch.delenv(KERNEL_BACKEND_ENV, raising=False)
        assert resolve_backend(None).name == "numpy"

    def test_resolve_honours_environment_variable(self, monkeypatch):
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "python")
        assert resolve_backend(None).name == "python"
        # An explicit argument always beats the environment.
        assert resolve_backend("numpy").name == "numpy"

    def test_resolve_instance_passthrough(self):
        backend = NumpyBackend()
        assert resolve_backend(backend) is backend

    def test_resolve_rejects_non_backend_pinned_message(self):
        with pytest.raises(
            TypeError,
            match=r"kernel_backend must be None, a backend name, or a "
            r"KernelBackend instance, got int",
        ):
            resolve_backend(7)

    @pytest.mark.skipif(numba_available(), reason="numba is installed here")
    def test_numba_fallback_warns_once_and_stays_truthful(self, monkeypatch):
        monkeypatch.setattr(kernels_module, "_warned_numba_missing", False)
        with pytest.warns(RuntimeWarning, match="numba is not installed"):
            backend = get_backend("numba")
        # The fallback never lies about what is running.
        assert backend.name == "numpy"
        assert backend is get_backend("numpy")
        # Once per process: the second request is silent.
        with warnings_none():
            assert get_backend("numba") is backend

    @pytest.mark.skipif(not numba_available(), reason="numba not installed")
    def test_numba_backend_is_jit_when_available(self):
        backend = get_backend("numba")
        assert backend.name == "numba"
        assert backend.jit is True

    def test_env_var_resolves_at_construction(self, monkeypatch):
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "python")
        lefts, rights, _ = make_endpoints(16, weighted=False)
        flat = FlatAIT.from_arrays(lefts, rights)
        assert flat.kernel_backend == "python"

    def test_abstract_base_is_exported(self):
        assert issubclass(NumpyBackend, KernelBackend)


class warnings_none:
    """Context manager asserting no warnings are emitted inside the block."""

    def __enter__(self):
        import warnings

        self._catcher = warnings.catch_warnings(record=True)
        self._records = self._catcher.__enter__()
        import warnings as _w

        _w.simplefilter("always")
        return self._records

    def __exit__(self, *exc):
        self._catcher.__exit__(*exc)
        assert not self._records, f"unexpected warnings: {self._records}"
        return False


# --------------------------------------------------------------------------- #
# unit kernel equivalence
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", ALT_BACKENDS)
class TestUnitKernels:
    def test_segmented_cumsum(self, backend):
        rng = np.random.default_rng(3)
        lengths = np.asarray([0, 1, 5, 0, 17, 2, 64, 3], dtype=np.int64)
        values = rng.uniform(-2.0, 2.0, int(lengths.sum()))
        values[0] = -0.0  # first element of a segment must keep its sign bit
        ref = get_backend("numpy").segmented_cumsum(values, lengths)
        alt = get_backend(backend).segmented_cumsum(values, lengths)
        assert ref.tobytes() == alt.tobytes()

    def test_segmented_cumsum_empty(self, backend):
        empty = np.empty(0, dtype=np.float64)
        lengths = np.zeros(3, dtype=np.int64)
        ref = get_backend("numpy").segmented_cumsum(empty, lengths)
        alt = get_backend(backend).segmented_cumsum(empty, lengths)
        assert ref.tobytes() == alt.tobytes()

    @pytest.mark.parametrize("side", ["left", "right"])
    def test_rank_search(self, backend, side):
        rng = np.random.default_rng(5)
        sorted_values = np.unique(rng.uniform(0.0, 100.0, 60))
        rank_m = np.int64(sorted_values.shape[0] + 1)
        nodes = rng.integers(0, 6, 40).astype(np.int64)
        needles = rng.uniform(-5.0, 105.0, 40)
        needles[:3] = sorted_values[:3]  # exact hits exercise the side logic
        key_pool = np.sort(rng.integers(0, 6 * int(rank_m), 300).astype(np.int64))
        ref = get_backend("numpy").rank_search(
            key_pool, sorted_values, rank_m, nodes, needles, side
        )
        alt = get_backend(backend).rank_search(
            key_pool, sorted_values, rank_m, nodes, needles, side
        )
        assert ref.tobytes() == alt.tobytes()

    def test_weighted_pick(self, backend):
        rng = np.random.default_rng(9)
        prefix = np.cumsum(rng.uniform(0.05, 3.0, 200))
        lo = rng.integers(0, 150, 64).astype(np.int64)
        hi = lo + rng.integers(0, 49, 64).astype(np.int64)
        uniforms = rng.random(64)
        uniforms[0] = 0.0  # threshold lands exactly on the segment floor
        ref = get_backend("numpy").weighted_pick(prefix, lo, hi, uniforms)
        alt = get_backend(backend).weighted_pick(prefix, lo, hi, uniforms)
        assert ref.tobytes() == alt.tobytes()
        base = np.maximum(lo - 2, 0)
        ref_b = get_backend("numpy").weighted_pick(prefix, lo, hi, uniforms, base=base)
        alt_b = get_backend(backend).weighted_pick(prefix, lo, hi, uniforms, base=base)
        assert ref_b.tobytes() == alt_b.tobytes()

    def test_endpoint_ranks(self, backend):
        rng = np.random.default_rng(13)
        sorted_lefts = np.sort(rng.uniform(0.0, 100.0, 120))
        sorted_rights = np.sort(sorted_lefts + rng.uniform(0.1, 10.0, 120))
        ql = rng.uniform(-10.0, 110.0, 50)
        qr = ql + rng.uniform(0.0, 30.0, 50)
        ref = get_backend("numpy").endpoint_ranks(sorted_lefts, sorted_rights, ql, qr)
        alt = get_backend(backend).endpoint_ranks(sorted_lefts, sorted_rights, ql, qr)
        for a, b in zip(ref, alt):
            assert a.tobytes() == b.tobytes()


# --------------------------------------------------------------------------- #
# end-to-end FlatAIT equivalence
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", ALT_BACKENDS)
@pytest.mark.parametrize("weighted", [False, True], ids=["unweighted", "weighted"])
@pytest.mark.parametrize("n", SIZES)
class TestFlatEquivalence:
    def test_flat_batch_operations_bit_identical(self, n, weighted, backend):
        lefts, rights, weights = make_endpoints(n, weighted)
        ref = FlatAIT.from_arrays(lefts, rights, weights=weights, kernel_backend="numpy")
        alt = FlatAIT.from_arrays(lefts, rights, weights=weights, kernel_backend=backend)
        assert ref.kernel_backend == "numpy"
        assert alt.kernel_backend == backend
        queries = make_queries()

        assert np.array_equal(ref.count_many(queries), alt.count_many(queries))
        assert chunks_equal(ref.report_many(queries), alt.report_many(queries))
        ref_w = ref.total_weight_many(queries)
        alt_w = alt.total_weight_many(queries)
        assert ref_w.tobytes() == alt_w.tobytes()

        ref_records = ref.collect_records_batch(*ref.coerce_queries(queries))
        alt_records = alt.collect_records_batch(*alt.coerce_queries(queries))
        for field in ("query", "glo", "ghi", "gbase"):
            assert np.array_equal(getattr(ref_records, field), getattr(alt_records, field))
        assert ref_records.weight.tobytes() == alt_records.weight.tobytes()

        ref_draws = ref.sample_many(queries, 17, random_state=np.random.default_rng(99))
        alt_draws = alt.sample_many(queries, 17, random_state=np.random.default_rng(99))
        assert chunks_equal(ref_draws, alt_draws)


# --------------------------------------------------------------------------- #
# end-to-end engine equivalence
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", ALT_BACKENDS)
@pytest.mark.parametrize("weighted", [False, True], ids=["unweighted", "weighted"])
@pytest.mark.parametrize("shards", [1, 4])
class TestEngineEquivalence:
    def test_engine_backend_bit_identical(self, shards, weighted, backend):
        lefts, rights, weights = make_endpoints(1000, weighted)
        dataset = IntervalDataset(lefts, rights, weights)
        queries = make_queries(count=32)
        with ShardedEngine(dataset, num_shards=shards, kernel_backend="numpy") as ref:
            assert ref.kernel_backend == "numpy"
            ref_counts = ref.count_many(queries)
            ref_report = ref.report_many(queries)
            ref_weights = ref.total_weight_many(queries)
            ref_draws = ref.sample_many(queries, 9, random_state=np.random.default_rng(4))
        with ShardedEngine(dataset, num_shards=shards, kernel_backend=backend) as alt:
            assert alt.kernel_backend == backend
            assert np.array_equal(ref_counts, alt.count_many(queries))
            assert chunks_equal(ref_report, alt.report_many(queries))
            assert ref_weights.tobytes() == alt.total_weight_many(queries).tobytes()
            alt_draws = alt.sample_many(queries, 9, random_state=np.random.default_rng(4))
            assert chunks_equal(ref_draws, alt_draws)


# --------------------------------------------------------------------------- #
# layer threading
# --------------------------------------------------------------------------- #
class TestThreading:
    @pytest.mark.parametrize("backend", ALT_BACKENDS)
    def test_tree_flat_inherits_backend(self, backend):
        lefts, rights, weights = make_endpoints(64, weighted=True)
        tree = AWIT(IntervalDataset(lefts, rights, weights), kernel_backend=backend)
        assert tree.kernel_backend == backend
        assert tree.flat().kernel_backend == backend

    def test_bad_name_fails_at_tree_construction(self):
        lefts, rights, _ = make_endpoints(8, weighted=False)
        with pytest.raises(ValueError, match="unknown kernel backend"):
            AIT(IntervalDataset(lefts, rights), kernel_backend="fortran")

    def test_bad_name_fails_at_engine_construction(self):
        lefts, rights, _ = make_endpoints(8, weighted=False)
        with pytest.raises(ValueError, match="unknown kernel backend"):
            ShardedEngine(IntervalDataset(lefts, rights), kernel_backend="fortran")

    def test_snapshot_roundtrip_accepts_backend(self, tmp_path):
        lefts, rights, _ = make_endpoints(64, weighted=False)
        flat = FlatAIT.from_arrays(lefts, rights)
        path = tmp_path / "flat.snap"
        flat.save(path)
        loaded = FlatAIT.load(path, kernel_backend="python")
        assert loaded.kernel_backend == "python"
        queries = make_queries(count=16)
        assert np.array_equal(flat.count_many(queries), loaded.count_many(queries))

    def test_engine_open_threads_backend(self, tmp_path):
        lefts, rights, _ = make_endpoints(200, weighted=False)
        dataset = IntervalDataset(lefts, rights)
        queries = make_queries(count=16)
        with ShardedEngine(dataset, num_shards=2) as engine:
            engine.save_snapshot(tmp_path)
            expected = engine.count_many(queries)
        with ShardedEngine.open(tmp_path, kernel_backend="python") as restored:
            assert restored.kernel_backend == "python"
            for shard in restored.shards:
                assert shard.snapshot.kernel_backend == "python"
            assert np.array_equal(expected, restored.count_many(queries))

    def test_gateway_stats_report_backend(self):
        from repro import RequestGateway

        lefts, rights, _ = make_endpoints(64, weighted=False)
        with ShardedEngine(
            IntervalDataset(lefts, rights), num_shards=2, kernel_backend="python"
        ) as engine:
            with RequestGateway(engine) as gateway:
                assert gateway.stats()["engine"]["kernel_backend"] == "python"

    def test_process_executor_workers_inherit_backend(self):
        from repro.service import ProcessExecutor
        from repro.service.shm import attach_segment, publish_shard

        lefts, rights, _ = make_endpoints(300, weighted=False)
        dataset = IntervalDataset(lefts, rights)
        queries = make_queries(count=16)
        # The publish descriptor carries the backend name across the process
        # boundary: attach in-process and check the rebuilt view.
        with ShardedEngine(dataset, num_shards=1, kernel_backend="python") as engine:
            segment = publish_shard(engine.shards[0])
            try:
                assert segment.manifest["kernel"] == "python"
                view = attach_segment(segment.manifest)
                try:
                    assert view.snapshot.kernel_backend == "python"
                finally:
                    view.segment.close()
            finally:
                segment.unlink()
        # And end to end: a process-executor engine on an alt backend answers
        # bit-identically to the serial numpy engine.
        with ShardedEngine(dataset, num_shards=2, executor="serial") as ref:
            expected = ref.count_many(queries)
        executor = ProcessExecutor(max_workers=2)
        try:
            with ShardedEngine(
                dataset, num_shards=2, executor=executor, kernel_backend="python"
            ) as engine:
                assert np.array_equal(expected, engine.count_many(queries))
        finally:
            executor.shutdown()
