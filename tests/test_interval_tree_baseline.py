"""Tests for the classic (non-augmented) interval tree baseline."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import EmptyResultError, Interval
from repro.baselines import IntervalTree
from repro.stats import chi_square_uniformity, chi_square_weighted


class TestStructureAndSearch:
    def test_height_is_logarithmic(self, random_dataset):
        tree = IntervalTree(random_dataset)
        assert tree.height <= 2 * math.ceil(math.log2(len(random_dataset))) + 2

    def test_report_matches_oracle(self, random_dataset, make_queries, ground_truth):
        tree = IntervalTree(random_dataset)
        for query in make_queries(random_dataset, count=30):
            assert set(tree.report(query).tolist()) == ground_truth(random_dataset, query)

    def test_report_no_duplicates(self, random_dataset, make_queries):
        tree = IntervalTree(random_dataset)
        for query in make_queries(random_dataset, count=15, extent=0.4):
            ids = tree.report(query)
            assert len(ids) == len(set(ids.tolist()))

    def test_count_defaults_to_report_length(self, random_dataset, make_queries):
        tree = IntervalTree(random_dataset)
        for query in make_queries(random_dataset, count=10):
            assert tree.count(query) == random_dataset.overlap_count(*query)

    def test_stabbing_query(self, random_dataset):
        tree = IntervalTree(random_dataset)
        rng = np.random.default_rng(0)
        lo, hi = random_dataset.domain()
        for point in rng.uniform(lo, hi, 15):
            expected = set(random_dataset.overlap_indices(point, point).tolist())
            assert set(tree.stab(float(point)).tolist()) == expected

    def test_report_intervals(self, random_dataset):
        tree = IntervalTree(random_dataset)
        lo, hi = random_dataset.domain()
        intervals = tree.report_intervals((lo, (lo + hi) / 3))
        assert all(isinstance(x, Interval) for x in intervals)

    def test_memory_bytes_positive(self, random_dataset):
        assert IntervalTree(random_dataset).memory_bytes() > 0

    def test_from_intervals_constructor(self):
        tree = IntervalTree.from_intervals([Interval(0, 5), Interval(3, 8)])
        assert tree.count((4, 4)) == 2


class TestSearchThenSample:
    def test_samples_are_members(self, random_dataset, make_queries, ground_truth):
        tree = IntervalTree(random_dataset)
        for query in make_queries(random_dataset, count=10):
            truth = ground_truth(random_dataset, query)
            if not truth:
                continue
            samples = tree.sample(query, 100, random_state=0)
            assert set(samples.tolist()) <= truth

    def test_uniform_sampling_distribution(self, random_dataset, make_queries, ground_truth):
        tree = IntervalTree(random_dataset)
        query = make_queries(random_dataset, count=1, extent=0.12, seed=5)[0]
        truth = sorted(ground_truth(random_dataset, query))
        samples = tree.sample(query, 40 * len(truth), random_state=1)
        assert not chi_square_uniformity(samples.tolist(), truth).rejects_uniformity(alpha=1e-4)

    def test_weighted_sampling_distribution(self, weighted_dataset, make_queries, ground_truth):
        tree = IntervalTree(weighted_dataset, weighted=True)
        assert tree.is_weighted
        query = make_queries(weighted_dataset, count=1, extent=0.12, seed=6)[0]
        truth = sorted(ground_truth(weighted_dataset, query))
        weights = weighted_dataset.weights[truth]
        samples = tree.sample(query, 60 * len(truth), random_state=2)
        fit = chi_square_weighted(samples.tolist(), truth, weights.tolist())
        assert not fit.rejects_uniformity(alpha=1e-4)

    def test_empty_result_handling(self, random_dataset):
        tree = IntervalTree(random_dataset)
        _, hi = random_dataset.domain()
        assert tree.sample((hi + 1.0, hi + 2.0), 10).shape == (0,)
        with pytest.raises(EmptyResultError):
            tree.sample((hi + 1.0, hi + 2.0), 10, on_empty="raise")
