"""Tests for AIT updates: immediate insertion, pooled insertion, deletion, rebuilds."""

from __future__ import annotations

import numpy as np
import pytest

from repro import AIT, AWIT, Interval, IntervalDataset
from repro.core.updates import height_limit


def brute_count(lefts, rights, query):
    lefts = np.asarray(lefts)
    rights = np.asarray(rights)
    return int(((lefts <= query[1]) & (query[0] <= rights)).sum())


class TestImmediateInsertion:
    def test_insert_visible_in_queries(self, random_dataset):
        tree = AIT(random_dataset)
        lo, hi = random_dataset.domain()
        query = (lo, lo + (hi - lo) * 0.1)
        before = tree.count(query)
        new_id = tree.insert((query[0], query[0] + 1.0), immediate=True)
        assert tree.count(query) == before + 1
        assert new_id in set(tree.report(query).tolist())

    def test_insert_updates_size(self, random_dataset):
        tree = AIT(random_dataset)
        n = tree.size
        tree.insert((0.0, 1.0), immediate=True)
        assert tree.size == n + 1

    def test_insert_interval_object(self, random_dataset):
        from repro import Interval

        tree = AIT(random_dataset)
        new_id = tree.insert(Interval(5.0, 6.0), immediate=True)
        assert tree.interval(new_id) == Interval(5.0, 6.0)

    def test_invariants_hold_after_many_immediate_inserts(self, make_random_dataset):
        tree = AIT(make_random_dataset(n=200, seed=3))
        rng = np.random.default_rng(0)
        for _ in range(100):
            left = float(rng.uniform(0, 1000))
            tree.insert((left, left + float(rng.exponential(20))), immediate=True)
        tree.check_invariants()

    def test_inserted_intervals_match_bruteforce(self, make_random_dataset, make_queries):
        dataset = make_random_dataset(n=300, seed=4)
        tree = AIT(dataset)
        rng = np.random.default_rng(1)
        lefts = list(dataset.lefts)
        rights = list(dataset.rights)
        for _ in range(80):
            left = float(rng.uniform(0, 1000))
            right = left + float(rng.exponential(30))
            tree.insert((left, right), immediate=True)
            lefts.append(left)
            rights.append(right)
        for query in make_queries(dataset, count=15):
            assert tree.count(query) == brute_count(lefts, rights, query)

    def test_invalid_insert_payload_raises(self, random_dataset):
        from repro.core.errors import InvalidIntervalError

        tree = AIT(random_dataset)
        with pytest.raises(InvalidIntervalError):
            tree.insert("not-an-interval", immediate=True)
        with pytest.raises(InvalidIntervalError):
            tree.insert((5.0, 1.0), immediate=True)


class TestPooledInsertion:
    def test_pooled_insert_visible_before_flush(self, random_dataset):
        tree = AIT(random_dataset)
        lo, hi = random_dataset.domain()
        query = (lo, lo + (hi - lo) * 0.05)
        before = tree.count(query)
        tree.insert((query[0], query[0] + 0.5))
        assert tree.pending_pool_size >= 1 or tree.pending_pool_size == 0  # may have auto-flushed
        assert tree.count(query) == before + 1

    def test_pool_flushes_automatically_at_capacity(self, make_random_dataset):
        tree = AIT(make_random_dataset(n=300, seed=5))
        capacity = tree.batch_pool_capacity
        for i in range(capacity):
            tree.insert((float(i), float(i) + 0.5))
        assert tree.pending_pool_size == 0

    def test_explicit_flush(self, random_dataset):
        tree = AIT(random_dataset)
        tree.insert((1.0, 2.0))
        tree.insert((3.0, 4.0))
        flushed = tree.flush_pool()
        assert flushed >= 2
        assert tree.pending_pool_size == 0
        tree.check_invariants()

    def test_flush_empty_pool_is_noop(self, random_dataset):
        tree = AIT(random_dataset)
        assert tree.flush_pool() == 0

    def test_pooled_sampling_includes_pending_intervals(self, make_random_dataset):
        dataset = make_random_dataset(n=50, seed=6, domain=100.0)
        tree = AIT(dataset)
        # Insert pooled intervals into an otherwise empty region.
        lo, hi = dataset.domain()
        region = (hi + 10.0, hi + 20.0)
        new_ids = [tree.insert((region[0] + i * 0.1, region[0] + i * 0.1 + 0.05)) for i in range(5)]
        samples = tree.sample(region, 200, random_state=0)
        assert set(samples.tolist()) <= set(new_ids)
        assert len(samples) == 200

    def test_pooled_and_immediate_equivalent_to_rebuild(self, make_random_dataset, make_queries):
        dataset = make_random_dataset(n=250, seed=8)
        extra = make_random_dataset(n=60, seed=9)
        pooled = AIT(dataset, batch_pool_size=1000)
        immediate = AIT(dataset)
        for x in extra:
            pooled.insert((x.left, x.right))
            immediate.insert((x.left, x.right), immediate=True)
        combined = IntervalDataset(
            np.concatenate((dataset.lefts, extra.lefts)), np.concatenate((dataset.rights, extra.rights))
        )
        rebuilt = AIT(combined)
        for query in make_queries(dataset, count=15):
            assert pooled.count(query) == immediate.count(query) == rebuilt.count(query)
        pooled.flush_pool()
        pooled.check_invariants()
        immediate.check_invariants()


class TestDeletion:
    def test_delete_removes_from_queries(self, random_dataset, make_queries, ground_truth):
        tree = AIT(random_dataset)
        query = make_queries(random_dataset, count=1)[0]
        truth = ground_truth(random_dataset, query)
        victim = next(iter(truth))
        assert tree.delete(victim)
        assert victim not in set(tree.report(query).tolist())
        assert tree.count(query) == len(truth) - 1

    def test_delete_updates_size_and_accessor(self, random_dataset):
        tree = AIT(random_dataset)
        n = tree.size
        assert tree.delete(0)
        assert tree.size == n - 1
        with pytest.raises(KeyError):
            tree.interval(0)

    def test_delete_twice_returns_false(self, random_dataset):
        tree = AIT(random_dataset)
        assert tree.delete(1)
        assert not tree.delete(1)

    def test_delete_unknown_id_returns_false(self, random_dataset):
        tree = AIT(random_dataset)
        assert not tree.delete(10**9)
        assert not tree.delete(-3)
        assert not tree.delete("x")

    def test_delete_pooled_interval(self, random_dataset):
        tree = AIT(random_dataset)
        new_id = tree.insert((1.0, 2.0))
        assert tree.delete(new_id)
        assert new_id not in set(tree.report((0.0, 3.0)).tolist())

    def test_delete_everything_then_queries_are_empty(self, make_random_dataset):
        dataset = make_random_dataset(n=60, seed=12, domain=50.0)
        tree = AIT(dataset)
        for i in range(len(dataset)):
            assert tree.delete(i)
        assert tree.size == 0
        assert tree.count((0.0, 100.0)) == 0
        assert tree.root is None

    def test_delete_then_insert_again(self, make_random_dataset):
        tree = AIT(make_random_dataset(n=100, seed=13))
        tree.delete(5)
        new_id = tree.insert((10.0, 20.0), immediate=True)
        assert new_id in set(tree.report((12.0, 13.0)).tolist())
        tree.check_invariants()

    def test_deletions_match_bruteforce(self, make_random_dataset, make_queries):
        dataset = make_random_dataset(n=300, seed=14)
        tree = AIT(dataset)
        rng = np.random.default_rng(2)
        alive = set(range(len(dataset)))
        for victim in rng.choice(len(dataset), size=120, replace=False):
            tree.delete(int(victim))
            alive.discard(int(victim))
        lefts = dataset.lefts[sorted(alive)]
        rights = dataset.rights[sorted(alive)]
        for query in make_queries(dataset, count=10):
            assert tree.count(query) == brute_count(lefts, rights, query)
        tree.check_invariants()


class TestRebuildAndWeightedRestrictions:
    def test_height_limit_positive(self, random_dataset):
        tree = AIT(random_dataset)
        assert height_limit(tree) >= tree.height

    def test_rebuild_triggered_by_pathological_insertions(self):
        # Start tiny so the height limit is small, then insert a chain of nested
        # intervals that would otherwise grow a long path.
        dataset = IntervalDataset([0.0, 100.0], [1.0, 101.0])
        tree = AIT(dataset)
        for i in range(200):
            left = 200.0 + i
            tree.insert((left, left + 0.5), immediate=True)
        assert tree.height <= height_limit(tree)
        assert tree.rebuild_count >= 2
        tree.check_invariants()

    def test_awit_scalar_updates_route_through_bulk_path(self, weighted_dataset):
        """Scalar AWIT insert/delete work as one-element bulk batches."""
        tree = AWIT(weighted_dataset)
        before = tree.total_weight((0.0, 2000.0))
        new_id = tree.insert(Interval(0.0, 1.0, weight=7.0))
        assert tree.total_weight((0.0, 2000.0)) == pytest.approx(before + 7.0)
        assert new_id in set(tree.report((0.0, 1.0)).tolist())
        # Bare pairs insert with weight 1, mirroring insert_many's default.
        pair_id = tree.insert((0.0, 1.0))
        assert tree.total_weight((0.0, 2000.0)) == pytest.approx(before + 8.0)
        assert tree.delete(new_id) and tree.delete(pair_id)
        assert not tree.delete(new_id)  # double delete reports False
        assert tree.total_weight((0.0, 2000.0)) == pytest.approx(before)
        tree.check_invariants()

    def test_awit_scalar_updates_match_bulk_oracle(self, weighted_dataset, make_queries):
        scalar = AWIT(weighted_dataset)
        bulk = AWIT(weighted_dataset)
        lefts = [5.0, 100.0, 400.0]
        rights = [50.0, 160.0, 900.0]
        weights = [3.0, 11.0, 0.5]
        scalar_ids = [
            scalar.insert(Interval(left, right, weight=w))
            for left, right, w in zip(lefts, rights, weights)
        ]
        bulk_ids = bulk.insert_many(lefts, rights, weights=weights)
        assert scalar_ids == bulk_ids.tolist()
        for query in make_queries(weighted_dataset, count=10):
            assert scalar.total_weight(query) == pytest.approx(bulk.total_weight(query))
            assert set(scalar.report(query).tolist()) == set(bulk.report(query).tolist())

    def test_sampling_correct_after_mixed_update_sequence(self, make_random_dataset, make_queries):
        dataset = make_random_dataset(n=200, seed=20)
        tree = AIT(dataset)
        rng = np.random.default_rng(3)
        # Oracle keyed by id: vacated ids are recycled by later insertions,
        # so the id space is not append-only.
        alive = {
            i: (float(dataset.lefts[i]), float(dataset.rights[i]))
            for i in range(len(dataset))
        }
        for step in range(150):
            if rng.random() < 0.5 and alive:
                victim = int(rng.choice(sorted(alive)))
                tree.delete(victim)
                del alive[victim]
            else:
                left = float(rng.uniform(0, 1000))
                right = left + float(rng.exponential(25))
                new_id = tree.insert((left, right), immediate=(step % 2 == 0))
                alive[new_id] = (left, right)
        query = make_queries(dataset, count=1, extent=0.2)[0]
        expected = {
            i for i, (left, right) in alive.items()
            if left <= query[1] and query[0] <= right
        }
        assert set(tree.report(query).tolist()) == expected
        if expected:
            samples = tree.sample(query, 300, random_state=0)
            assert set(samples.tolist()) <= expected
