"""Unit tests for the IntervalDataset columnar container."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    EmptyDatasetError,
    Interval,
    IntervalDataset,
    InvalidIntervalError,
    InvalidWeightError,
)


class TestConstruction:
    def test_from_arrays(self):
        ds = IntervalDataset([0.0, 5.0], [2.0, 9.0])
        assert len(ds) == 2
        assert not ds.is_weighted
        assert list(ds.weights) == [1.0, 1.0]

    def test_from_pairs(self):
        ds = IntervalDataset.from_pairs([(0, 2), (5, 9)])
        assert len(ds) == 2
        assert ds[1].right == 9.0

    def test_from_intervals_preserves_weights_and_payloads(self):
        ds = IntervalDataset.from_intervals(
            [Interval(0, 1, weight=2.0, data="a"), Interval(2, 3, weight=5.0, data="b")]
        )
        assert ds.is_weighted
        assert ds[0].weight == 2.0
        assert ds[1].data == "b"

    def test_from_intervals_without_weights_is_unweighted(self):
        ds = IntervalDataset.from_intervals([Interval(0, 1), Interval(2, 3)])
        assert not ds.is_weighted

    def test_mismatched_lengths_raise(self):
        with pytest.raises(InvalidIntervalError):
            IntervalDataset([0.0, 1.0], [2.0])

    def test_inverted_interval_raises(self):
        with pytest.raises(InvalidIntervalError):
            IntervalDataset([5.0], [1.0])

    def test_non_finite_endpoint_raises(self):
        with pytest.raises(InvalidIntervalError):
            IntervalDataset([float("nan")], [1.0])

    def test_negative_weight_raises(self):
        with pytest.raises(InvalidWeightError):
            IntervalDataset([0.0], [1.0], weights=[-2.0])

    def test_wrong_weight_length_raises(self):
        with pytest.raises(InvalidWeightError):
            IntervalDataset([0.0, 1.0], [1.0, 2.0], weights=[1.0])

    def test_wrong_payload_length_raises(self):
        with pytest.raises(InvalidIntervalError):
            IntervalDataset([0.0], [1.0], payloads=["a", "b"])

    def test_two_dimensional_arrays_raise(self):
        with pytest.raises(InvalidIntervalError):
            IntervalDataset(np.zeros((2, 2)), np.ones((2, 2)))

    def test_arrays_are_copied(self):
        lefts = np.array([0.0, 1.0])
        ds = IntervalDataset(lefts, [2.0, 3.0])
        lefts[0] = 99.0
        assert ds.lefts[0] == 0.0

    def test_empty_dataset_is_constructible(self):
        ds = IntervalDataset([], [])
        assert len(ds) == 0
        with pytest.raises(EmptyDatasetError):
            ds.domain()
        with pytest.raises(EmptyDatasetError):
            ds.require_nonempty()


class TestAccess:
    def test_getitem_and_negative_index(self):
        ds = IntervalDataset([0.0, 5.0], [2.0, 9.0])
        assert ds[0] == Interval(0.0, 2.0)
        assert ds[-1] == Interval(5.0, 9.0)

    def test_getitem_out_of_range(self):
        ds = IntervalDataset([0.0], [1.0])
        with pytest.raises(IndexError):
            ds[5]

    def test_iteration_yields_intervals(self):
        ds = IntervalDataset([0.0, 5.0], [2.0, 9.0])
        items = list(ds)
        assert items == [Interval(0.0, 2.0), Interval(5.0, 9.0)]

    def test_domain_and_lengths(self):
        ds = IntervalDataset([0.0, 5.0], [2.0, 9.0])
        assert ds.domain() == (0.0, 9.0)
        assert ds.domain_size() == 9.0
        assert list(ds.lengths()) == [2.0, 4.0]

    def test_total_weight(self):
        ds = IntervalDataset([0.0, 1.0], [1.0, 2.0], weights=[2.0, 3.0])
        assert ds.total_weight() == 5.0


class TestQueriesAndSubset:
    def test_overlap_mask_and_indices(self):
        ds = IntervalDataset([0.0, 5.0, 10.0], [2.0, 9.0, 12.0])
        assert list(ds.overlap_mask(1.0, 6.0)) == [True, True, False]
        assert list(ds.overlap_indices(1.0, 6.0)) == [0, 1]
        assert ds.overlap_count(1.0, 6.0) == 2

    def test_overlap_touching_boundary_counts(self):
        ds = IntervalDataset([0.0], [5.0])
        assert ds.overlap_count(5.0, 9.0) == 1
        assert ds.overlap_count(5.000001, 9.0) == 0

    def test_subset_preserves_weights_and_payloads(self):
        ds = IntervalDataset([0.0, 5.0, 10.0], [2.0, 9.0, 12.0], weights=[1.0, 2.0, 3.0], payloads=["a", "b", "c"])
        sub = ds.subset([2, 0])
        assert len(sub) == 2
        assert sub[0].right == 12.0
        assert sub[0].weight == 3.0
        assert sub.payloads == ["c", "a"]

    def test_with_weights(self):
        ds = IntervalDataset([0.0, 5.0], [2.0, 9.0])
        weighted = ds.with_weights([10.0, 20.0])
        assert weighted.is_weighted
        assert weighted.total_weight() == 30.0
        assert not ds.is_weighted

    def test_repr_mentions_size(self):
        ds = IntervalDataset([0.0], [1.0])
        assert "1" in repr(ds)
